//! Offline stand-in for the subset of
//! [`proptest`](https://crates.io/crates/proptest) that the PACO workspace
//! uses: the [`proptest!`] macro with a `proptest_config` attribute,
//! range, tuple and [`any`] strategies, [`collection::vec`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Cases are generated from a fixed seed, so failures reproduce exactly
//! across runs.  There is **no shrinking**: a failing case panics with the
//! plain assertion message.  For the regression-style invariants tested in
//! this workspace that trade-off is acceptable; if a richer checker is ever
//! needed the shim can be swapped for the real crate without touching the
//! tests.

use std::ops::Range;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator for the given case of the given property.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D153_2FB5,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of values of one type, the shim's version of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide but well-behaved range.
        ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: every `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        0xC0FF_EE00u64
                            .wrapping_mul(1 + case as u64)
                            .wrapping_add(line!() as u64),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..50, x in -3i32..3) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-3..3).contains(&x));
        }

        #[test]
        fn vectors_respect_length(keys in crate::collection::vec(any::<i32>(), 0..100)) {
            prop_assert!(keys.len() < 100);
        }

        #[test]
        fn tuples_compose_strategies(pairs in crate::collection::vec((0usize..4, any::<bool>()), 1..10)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (lane, _flag) in pairs {
                prop_assert!(lane < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(a in 0u64..10) {
            prop_assert!(a < 10);
        }
    }
}
