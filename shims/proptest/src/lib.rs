//! Offline stand-in for the subset of
//! [`proptest`](https://crates.io/crates/proptest) that the PACO workspace
//! uses: the [`proptest!`] macro with a `proptest_config` attribute,
//! range, tuple and [`any`] strategies, [`collection::vec`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Cases are generated from a fixed seed, so failures reproduce exactly
//! across runs.  Failing cases are **shrunk**: every [`Strategy`] exposes a
//! [`Strategy::shrink`] candidate list (integers walk toward the range
//! start, vectors truncate toward their minimum length and shrink
//! element-wise, tuples shrink one component at a time), and the macro
//! greedily re-runs the property on candidates — bounded by
//! [`ProptestConfig::max_shrink_iters`] — before printing the minimal
//! failing input and resuming the original panic.  The shrinker is
//! deliberately simple (greedy, first-failing-candidate descent); if a
//! richer checker is ever needed the shim can be swapped for the real crate
//! without touching the tests.

use std::ops::Range;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Bound on property re-runs while shrinking a failing case
    /// (`0` means the shim default of 1024).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator for the given case of the given property.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D153_2FB5,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of values of one type, the shim's version of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Candidate simplifications of a failing `value`, simplest first.
    /// Every candidate must itself be a value this strategy could have
    /// produced.  The default is no candidates (no shrinking).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Walk toward the range start: the start itself, the
                // midpoint, and one step down.  (i128 holds every value of
                // every supported integer type.)
                let start = self.start as i128;
                let v = *value as i128;
                let mut out = Vec::new();
                for c in [start, start + (v - start) / 2, v - 1] {
                    if c >= start && c < v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out.into_iter().map(|c| c as $t).collect()
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut shrunk = value.clone();
                        shrunk.$idx = candidate;
                        out.push(shrunk);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Candidate simplifications of `self`, simplest first (used by
    /// [`any`]'s shrinker).  Defaults to none.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<Self> {
                // Toward zero: zero itself, then the halfway point.
                let mut out = Vec::new();
                for c in [0, self / 2] {
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide but well-behaved range.
        ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5) * 2e6
    }
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for c in [0.0, self / 2.0] {
            if c.abs() < self.abs() && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

/// A strategy over all values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Truncations first (the big wins), never below the strategy's
            // minimum length: shortest allowed, halfway there, one shorter.
            let min = self.len.start;
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 > min {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Then element-wise shrinks, one position at a time.
            for (i, item) in value.iter().enumerate() {
                for candidate in self.element.shrink(item) {
                    let mut shrunk = value.clone();
                    shrunk[i] = candidate;
                    out.push(shrunk);
                }
            }
            out
        }
    }
}

/// Greedily minimize a failing input: repeatedly take the first
/// [`Strategy::shrink`] candidate that still fails, until no candidate
/// fails or the re-run budget (`max_shrink_iters`, `0` = 1024) is spent.
/// Returns the smallest failing value found (possibly the original).
///
/// Exposed for the [`proptest!`] macro expansion; not part of the real
/// proptest API.
pub fn __shrink_failing<S, F>(
    strategy: &S,
    failing: S::Value,
    max_shrink_iters: u32,
    mut still_fails: F,
) -> S::Value
where
    S: Strategy,
    F: FnMut(&S::Value) -> bool,
{
    let budget = if max_shrink_iters == 0 {
        1024
    } else {
        max_shrink_iters
    };
    let mut current = failing;
    let mut spent = 0u32;
    'descend: while spent < budget {
        for candidate in strategy.shrink(&current) {
            spent += 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'descend;
            }
            if spent >= budget {
                break 'descend;
            }
        }
        // No candidate still fails: `current` is (locally) minimal.
        break;
    }
    current
}

/// Tie a property-body closure's argument type to its strategy's `Value`
/// (the [`proptest!`] expansion needs the anchor for inference).  Exposed
/// for the macro; not part of the real proptest API.
pub fn __typed_runner<S: Strategy, F: Fn(S::Value)>(_strategy: &S, body: F) -> F {
    body
}

/// Assert a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: every `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `cases` deterministic random cases,
/// shrinking any failure to a minimal input before re-panicking with the
/// original payload.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // One tuple strategy over all arguments: generation draws
                // in declaration order (the historical rng sequence), and
                // shrinking sees the whole input at once.
                let strategy = ($(($strat),)+);
                let run = $crate::__typed_runner(&strategy, |__input| {
                    let ($($arg,)+) = __input;
                    $body
                });
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        0xC0FF_EE00u64
                            .wrapping_mul(1 + case as u64)
                            .wrapping_add(line!() as u64),
                    );
                    let input = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(input.clone())),
                    );
                    if let Err(payload) = outcome {
                        // Silence the per-candidate panic spam while the
                        // shrinker re-runs the body, then restore the hook.
                        let hook = ::std::panic::take_hook();
                        ::std::panic::set_hook(Box::new(|_| {}));
                        let minimal = $crate::__shrink_failing(
                            &strategy,
                            input,
                            config.max_shrink_iters,
                            |candidate| {
                                ::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(|| run(candidate.clone())),
                                )
                                .is_err()
                            },
                        );
                        ::std::panic::set_hook(hook);
                        let ($($arg,)+) = &minimal;
                        eprintln!(
                            concat!(
                                "proptest shim: case ", "{}", " of `", stringify!($name),
                                "` failed; minimal failing input:",
                                $("\n  ", stringify!($arg), " = {:?}",)+
                            ),
                            case, $($arg,)+
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..50, x in -3i32..3) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-3..3).contains(&x));
        }

        #[test]
        fn vectors_respect_length(keys in crate::collection::vec(any::<i32>(), 0..100)) {
            prop_assert!(keys.len() < 100);
        }

        #[test]
        fn tuples_compose_strategies(pairs in crate::collection::vec((0usize..4, any::<bool>()), 1..10)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (lane, _flag) in pairs {
                prop_assert!(lane < 4);
            }
        }

        #[test]
        #[should_panic]
        fn failing_properties_shrink_then_resume_the_panic(n in 0usize..1000) {
            prop_assert!(n >= 1000); // always fails; exercises the shrink path
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(a in 0u64..10) {
            prop_assert!(a < 10);
        }
    }

    #[test]
    fn range_shrink_walks_toward_the_start() {
        let strategy = 3usize..100;
        let candidates = strategy.shrink(&63);
        assert_eq!(candidates, vec![3, 33, 62]);
        assert!(strategy.shrink(&3).is_empty(), "the start is minimal");
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let strategy = crate::collection::vec(0u32..10, 2..20);
        for shrunk in strategy.shrink(&vec![5, 6, 7, 8]) {
            assert!(
                shrunk.len() >= 2,
                "shrunk below the length floor: {shrunk:?}"
            );
        }
        // Element-wise shrinks survive at the floor length.
        assert!(strategy
            .shrink(&vec![5, 6])
            .iter()
            .all(|s| s.len() == 2 && s != &vec![5, 6]));
    }

    #[test]
    fn greedy_shrink_finds_the_boundary_counterexample() {
        // Property: "n < 7" — the minimal counterexample is exactly 7.
        let strategy = (0usize..1000, crate::collection::vec(0u32..5, 0..8));
        let failing = (803, vec![4, 1, 3]);
        let minimal = crate::__shrink_failing(&strategy, failing, 0, |(n, _)| *n >= 7);
        assert_eq!(minimal, (7, vec![]));
    }

    #[test]
    fn shrink_budget_is_respected() {
        let strategy = 0u64..u64::MAX;
        let mut runs = 0;
        let _ = crate::__shrink_failing(&strategy, u64::MAX - 1, 5, |_| {
            runs += 1;
            true
        });
        assert!(runs <= 5, "budget of 5 exceeded: {runs} re-runs");
    }
}
