//! Offline stand-in for the subset of
//! [`rayon`](https://crates.io/crates/rayon) that the PACO workspace uses.
//!
//! The PACO paper's *processor-oblivious* (PO) baselines are expressed as
//! rayon data-parallel loops and `join` calls.  The build environment has no
//! network access, so this shim re-implements that surface on top of
//! `std::thread::scope`:
//!
//! * [`join`] — run two closures concurrently when a thread is available,
//!   inline otherwise.
//! * [`prelude`] — `par_iter`, `par_chunks`, `par_chunks_mut`,
//!   `into_par_iter` with the `map` / `enumerate` / `for_each` / `collect`
//!   adapters the workspace calls.
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `install` scopes a thread
//!   budget for the closure it runs.
//!
//! Threads are drawn from a **global budget** equal to the machine's
//! available parallelism, so nested parallelism (e.g. recursive Strassen
//! splits) degrades gracefully to inline execution instead of spawning an
//! unbounded number of OS threads.  This is a faithful *semantic* stand-in —
//! parallel speedups are real — but it is not a work-stealing scheduler, so
//! fine-grained imbalance is handled worse than by real rayon.  For the PACO
//! experiments this only weakens the PO baseline, never the PACO numbers.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Extra worker threads currently live across the whole process.
static ACTIVE_EXTRA: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override of the thread budget, set by [`ThreadPool::install`].
    static LOCAL_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The maximum number of concurrent threads the shim will use.
fn max_threads() -> usize {
    LOCAL_CAP.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Try to reserve up to `want` extra threads from the global budget; returns
/// the number actually granted (possibly 0).
fn reserve_extra(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let cap = max_threads().saturating_sub(1);
    let mut cur = ACTIVE_EXTRA.load(Ordering::Relaxed);
    loop {
        let free = cap.saturating_sub(cur);
        let grant = want.min(free);
        if grant == 0 {
            return 0;
        }
        match ACTIVE_EXTRA.compare_exchange_weak(
            cur,
            cur + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return grant,
            Err(actual) => cur = actual,
        }
    }
}

/// Return `n` extra threads to the global budget.
fn release_extra(n: usize) {
    if n > 0 {
        ACTIVE_EXTRA.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// Mirrors `rayon::join`: `b` runs on another thread when the budget allows,
/// otherwise both run inline on the caller.  Panics propagate to the caller
/// after both branches finish.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if reserve_extra(1) == 1 {
        let result = std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
            let rb = hb.join();
            release_extra(1);
            match (ra, rb) {
                (Ok(ra), Ok(rb)) => Ok((ra, rb)),
                (Err(p), _) | (_, Err(p)) => Err(p),
            }
        });
        match result {
            Ok(pair) => pair,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    } else {
        (a(), b())
    }
}

/// Run every item of `items` through `f`, in parallel when the budget allows,
/// preserving order.
fn run_parallel<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let extra = reserve_extra((n - 1).min(max_threads().saturating_sub(1)));
    if extra == 0 {
        return items.into_iter().map(f).collect();
    }
    let nchunks = (extra + 1).min(n);
    let chunk_len = n.div_ceil(nchunks);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(nchunks);
    let mut items = items;
    while items.len() > chunk_len {
        let tail = items.split_off(items.len() - chunk_len);
        chunks.push(tail);
    }
    chunks.push(items);
    // `chunks` now holds the input back-to-front.
    chunks.reverse();

    let result = std::thread::scope(|s| {
        let f = &f;
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("at least one chunk");
        let handles: Vec<_> = iter
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        // The caller's thread works on the first chunk while the spawned
        // threads handle the rest.
        let head = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            first.into_iter().map(f).collect::<Vec<O>>()
        }));
        let mut out = Vec::with_capacity(n);
        let mut panic = None;
        match head {
            Ok(v) => out.extend(v),
            Err(p) => panic = Some(p),
        }
        for h in handles {
            match h.join() {
                Ok(v) => out.extend(v),
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        release_extra(extra);
        match panic {
            None => Ok(out),
            Some(p) => Err(p),
        }
    });
    match result {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// A materialized parallel iterator: the item list is collected eagerly
/// (items are cheap — references, slices or small tuples), while the mapped /
/// consumed work runs in parallel.
pub struct ParIter<I>(Vec<I>);

impl<I: Send> ParIter<I> {
    /// Pair every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter(self.0.into_iter().enumerate().collect())
    }

    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<O: Send, F>(self, f: F) -> ParIter<O>
    where
        F: Fn(I) -> O + Sync,
    {
        ParIter(run_parallel(self.0, f))
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_parallel(self.0, f);
    }

    /// Collect the items in order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.0.into_iter().collect()
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous chunks of length `size` (the last
    /// chunk may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter(self.iter().collect())
    }
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter(self.chunks(size).collect())
    }
}

/// `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of length `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter(self.chunks_mut(size).collect())
    }
}

/// Conversion into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// The element type produced.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter(self)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type returned by [`ThreadPoolBuilder::build`]; building the shim
/// pool cannot actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shim thread pool build error (unreachable)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of threads parallel work may use inside
    /// [`ThreadPool::install`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Finish building; never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(max_threads).max(1),
        })
    }
}

/// A scoped thread-budget handle mirroring `rayon::ThreadPool`.
///
/// The shim has no dedicated worker threads; `install` simply caps the global
/// thread budget *for work started on the calling thread* while the closure
/// runs.  Work spawned onto other threads inside the closure falls back to
/// the process-wide budget.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread budget.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = LOCAL_CAP.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                LOCAL_CAP.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The thread budget this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Glob-import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_runs_concurrently_when_budget_allows() {
        if super::max_threads() < 2 {
            return;
        }
        let barrier = std::sync::Barrier::new(2);
        super::join(|| barrier.wait(), || barrier.wait());
    }

    #[test]
    fn nested_joins_do_not_explode() {
        fn recurse(depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let (a, b) = super::join(|| recurse(depth - 1), || recurse(depth - 1));
            a + b
        }
        assert_eq!(recurse(10), 1024);
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_touch_every_element() {
        let mut v = vec![0u32; 997];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[996], 99);
    }

    #[test]
    fn into_par_iter_consumes_vec() {
        let counter = AtomicUsize::new(0);
        let v: Vec<usize> = (0..100).collect();
        v.into_par_iter().for_each(|x| {
            counter.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn install_caps_local_budget() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(super::max_threads(), 1);
        });
        assert_ne!(super::max_threads(), 0);
    }

    #[test]
    fn parallel_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<usize> = (0..100).collect();
            v.par_iter().for_each(|&x| {
                if x == 50 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
