//! Offline stand-in for the subset of
//! [`crossbeam`](https://crates.io/crates/crossbeam) that the PACO workspace
//! uses: [`channel::unbounded`] MPSC channels.
//!
//! `std::sync::mpsc` provides the same semantics for this use case (senders
//! are `Send + Sync + Clone` since Rust 1.72; each receiver is owned by a
//! single worker thread), so the shim simply re-exports it under crossbeam's
//! names.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        tx.send(1).unwrap();
        let sum: i32 = [rx.recv().unwrap(), rx.recv().unwrap()].iter().sum();
        assert_eq!(sum, 42);
    }
}
