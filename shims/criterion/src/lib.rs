//! Offline stand-in for the subset of
//! [`criterion`](https://crates.io/crates/criterion) that the PACO benchmark
//! suite uses: [`Criterion`], benchmark groups with `sample_size`,
//! [`BenchmarkId`], `bench.iter(..)` and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark is run `sample_size` times after one warm-up iteration and
//! the mean / minimum wall-clock times are printed.  There is no outlier
//! analysis, plotting or state persistence — the goal is that `cargo bench`
//! compiles and produces honest, readable timings in an offline container.
//!
//! # JSON report (shim extension)
//!
//! When the `PACO_BENCH_JSON` environment variable names a file, every result
//! is additionally **appended** to it as one JSON object per line
//! (JSON Lines), written by the `criterion_main!`-generated `main` when the
//! run finishes:
//!
//! ```json
//! {"bench":"floyd-warshall/minplus-paco/256","mean_ns":123456,"min_ns":120000,"samples":10}
//! {"metric":"fw/paco-plan-waves","value":110.0}
//! ```
//!
//! The `metric` lines come from [`record_metric`], a shim-only hook that lets
//! benchmarks attach counter gauges (e.g. the runtime's plan-wave/barrier
//! counters) next to the timings, so structural properties stay measurable on
//! machines where wall-clock says nothing (a 1-core container).

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One timed benchmark outcome collected for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

fn bench_records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn metric_records() -> &'static Mutex<Vec<(String, f64)>> {
    static METRICS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Attach a named gauge to the current benchmark run (shim extension; the
/// real criterion has no equivalent).  The value lands in the JSON report as
/// a `{"metric": .., "value": ..}` line.
pub fn record_metric(key: impl Into<String>, value: f64) {
    metric_records().lock().unwrap().push((key.into(), value));
}

/// Minimal JSON string escaping for benchmark labels.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Append every collected result to `$PACO_BENCH_JSON` (JSON Lines), if set.
/// Called by the `criterion_main!`-generated `main`; harmless to call twice
/// (records are drained).
pub fn write_json_report() {
    let Ok(path) = std::env::var("PACO_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let mut out = String::new();
    for r in bench_records().lock().unwrap().drain(..) {
        out.push_str(&format!(
            "{{\"bench\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
            json_escape(&r.label),
            r.mean_ns,
            r.min_ns,
            r.samples
        ));
    }
    for (key, value) in metric_records().lock().unwrap().drain(..) {
        out.push_str(&format!(
            "{{\"metric\":\"{}\",\"value\":{}}}\n",
            json_escape(&key),
            if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            }
        ));
    }
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Ok(mut f) => {
            let _ = f.write_all(out.as_bytes());
        }
        Err(e) => eprintln!("criterion shim: cannot write {path}: {e}"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up pass, untimed.
    let mut bencher = Bencher {
        samples: 1,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut bencher);

    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label}: no iterations run");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    println!(
        "{label}: mean {:>12?}   min {:>12?}   ({} samples)",
        mean, bencher.min, bencher.iters
    );
    bench_records().lock().unwrap().push(BenchRecord {
        label: label.to_string(),
        mean_ns: mean.as_nanos(),
        min_ns: bencher.min.as_nanos(),
        samples: bencher.iters,
    });
}

/// Passed to benchmark closures; `iter` times the supplied routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(black_box(out));
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
        }
    }
}

/// A two-part benchmark identifier (`name/parameter`), mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Build an id from a parameter value only.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.  The shim's `main` additionally flushes the
/// JSON report (see the module docs) before exiting.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function(BenchmarkId::new("counting", 1), |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        // one warm-up sample + three timed samples, for each of the two
        // invocations of the closure (warm-up pass and timed pass).
        assert_eq!(count, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
