//! Offline stand-in for the subset of
//! [`criterion`](https://crates.io/crates/criterion) that the PACO benchmark
//! suite uses: [`Criterion`], benchmark groups with `sample_size`,
//! [`BenchmarkId`], `bench.iter(..)` and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark is run `sample_size` times after one warm-up iteration and
//! the mean / minimum wall-clock times are printed.  There is no outlier
//! analysis, plotting or state persistence — the goal is that `cargo bench`
//! compiles and produces honest, readable timings in an offline container.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up pass, untimed.
    let mut bencher = Bencher {
        samples: 1,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut bencher);

    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label}: no iterations run");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    println!(
        "{label}: mean {:>12?}   min {:>12?}   ({} samples)",
        mean, bencher.min, bencher.iters
    );
}

/// Passed to benchmark closures; `iter` times the supplied routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(black_box(out));
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
        }
    }
}

/// A two-part benchmark identifier (`name/parameter`), mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Build an id from a parameter value only.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function(BenchmarkId::new("counting", 1), |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        // one warm-up sample + three timed samples, for each of the two
        // invocations of the closure (warm-up pass and timed pass).
        assert_eq!(count, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
