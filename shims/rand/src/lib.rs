//! Offline stand-in for the subset of [`rand`](https://crates.io/crates/rand)
//! (0.8 API) that the PACO workspace uses.
//!
//! The build environment has no network access, so the workspace vendors tiny
//! local shims for its external dependencies.  This one provides:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable generator (xoshiro256++).
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding, the only
//!   constructor the workspace uses.
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges, [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, and
//!   [`Rng::gen_bool`].
//!
//! The statistical quality matches the real crate for these purposes
//! (workload generation and randomized tests); the exact streams differ, so
//! seeds reproduce runs *within* this workspace but not against upstream
//! `rand`.  Integer range sampling uses simple rejection-free modulo
//! reduction, whose bias is negligible for the range sizes used here.

/// A source of random 64-bit words; the base trait every generator implements.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain (the shim's
/// equivalent of sampling from the real crate's `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draw one value from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for i32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl UniformSample for i64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl UniformSample for usize {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from; implemented for `Range` and
/// `RangeInclusive` of the integer types the workspace samples, plus
/// `Range<f64>`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_uniform(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the whole domain of `T`.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_uniform(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — the same construction the
    /// real `SmallRng` family uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
