//! Offline stand-in for the subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot) that the PACO
//! workspace uses: [`Mutex`] (whose `lock` does not return a poison
//! `Result`) and [`Condvar`] (whose `wait` takes the guard by `&mut`).
//!
//! Backed by `std::sync`; poisoning is swallowed, matching `parking_lot`'s
//! semantics of simply unlocking on panic.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread is parked.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` re-acquires through a [`MutexGuard`]
/// passed by `&mut`, like `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// (rather than a notification), like `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified; the guard is released while parked and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Block until `condition` returns `false`, re-checking on every wake
    /// (notification or spurious); the guard is released while parked and
    /// re-acquired before returning, like `parking_lot::Condvar::wait_while`.
    pub fn wait_while<T, F>(&self, guard: &mut MutexGuard<'_, T>, mut condition: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(guard.deref_mut()) {
            self.wait(guard);
        }
    }

    /// Block until notified or until `timeout` elapses; the guard is
    /// released while parked and re-acquired before returning.  Like every
    /// condvar wait, this may also wake spuriously — callers must re-check
    /// their predicate (and their deadline) in a loop.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (reacquired, result) = match self.0.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0usize);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        drop(done);
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_a_notification() {
        let pair = (Mutex::new(false), Condvar::new());
        let (lock, cvar) = &pair;
        let mut done = lock.lock();
        let result = cvar.wait_for(&mut done, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*done);
    }

    #[test]
    fn wait_for_wakes_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            // Generous timeout: the wait should end via notification.
            cvar.wait_for(&mut done, std::time::Duration::from_secs(10));
        }
        drop(done);
        handle.join().unwrap();
    }

    #[test]
    fn wait_while_returns_once_condition_clears() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            for _ in 0..3 {
                *lock.lock() += 1;
                cvar.notify_all();
            }
        });
        let (lock, cvar) = &*pair;
        let mut count = lock.lock();
        cvar.wait_while(&mut count, |c| *c < 3);
        assert_eq!(*count, 3);
        drop(count);
        handle.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
