//! Offline stand-in for the subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot) that the PACO
//! workspace uses: [`Mutex`] (whose `lock` does not return a poison
//! `Result`) and [`Condvar`] (whose `wait` takes the guard by `&mut`).
//!
//! Backed by `std::sync`; poisoning is swallowed, matching `parking_lot`'s
//! semantics of simply unlocking on panic.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread is parked.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` re-acquires through a [`MutexGuard`]
/// passed by `&mut`, like `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified; the guard is released while parked and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0usize);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        drop(done);
        handle.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
