//! The wave-based schedule IR every PACO front-end compiles to.
//!
//! The paper's central claim is that the pruned-BFS assignment is a
//! *workload-independent* schedule: partitioning decides, ahead of time, which
//! processor runs which piece and in which order.  Before this module each
//! workload crate re-implemented that discipline by hand against the raw pool
//! (`fork2` recursions, ad-hoc wavefront loops), so every scheduling
//! optimisation had to be repeated per workload.  This module separates the
//! two concerns the way real runtimes separate a schedule IR from kernels:
//!
//! * a **[`Plan`]** is an ordered list of **waves**; a wave is a list of
//!   **[`Step`]s**, each placing one workload-defined job on one processor;
//! * the executor ([`Plan::execute`]) opens **exactly one** [`WorkerPool`]
//!   scope (one spawn/join barrier) per wave;
//! * within a wave, steps on the *same* processor run in plan order (the
//!   pool's per-worker FIFO), steps on different processors run concurrently.
//!
//! Jobs are plain data (ranges, block descriptors, …), not boxed closures: the
//! workload's runner closure interprets them against its own tables with
//! *concrete* kernel/tracker types, so the hot paths stay fully monomorphized
//! (the `LeafCall` trick from `paco-graph`, now the default for every
//! front-end), and the identical plan can be replayed sequentially through the
//! cache simulator ([`Plan::for_each`]) with the exact leaf→processor
//! assignment of the native run.
//!
//! # Building plans
//!
//! Front-ends with an explicit dependency graph (the LCS anti-diagonal
//! partitioning) layer it themselves and call [`Plan::from_waves`]; pruned-BFS
//! assignments become single-wave plans via [`Assignment::into_plan`].
//! Recursive 1-PIECE front-ends (Floyd–Warshall, 1D DP, MM) use the
//! [`PlanBuilder`]/[`Front`] pair: the builder replays the recursion
//! *symbolically*, and the front — a per-processor wave clock — captures the
//! series-parallel ordering exactly:
//!
//! * a step sequenced after a front may share a wave with its latest
//!   same-processor predecessor (the FIFO carries the ordering for free), but
//!   must start a **later** wave than any cross-processor predecessor;
//! * parallel branches start from the same front and [`Front::join`] merges
//!   their completion fronts element-wise.
//!
//! This is what flattens the Floyd–Warshall A/B/C/D recursion: the old
//! executor paid one barrier per `fork2` *and* per off-processor leaf, linear
//! in the recursion depth per phase, while the front only advances the wave
//! clock on true cross-processor hand-offs — the B/C forks and the following D
//! phase collapse into a constant number of waves per phase.
//!
//! # Batching
//!
//! [`Plan::concat`] composes plans sequentially.  [`Plan::batch`] runs many
//! *independent* plans through one pool pass: wave `w` of the batch is the
//! union of every constituent's wave `w`, so the barrier count is the **max**
//! of the constituents' wave counts, not the sum — many small problem
//! instances amortise the spawn/join round-trips that dominate them
//! individually (a ROADMAP "scale" item).

use crate::bfs::{Assignment, DcNode};
use crate::pool::WorkerPool;
use paco_core::metrics::sched;
use paco_core::proc_list::ProcId;

/// One placed task: run `job` on processor `proc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step<J> {
    /// The processor the job is pinned to.
    pub proc: ProcId,
    /// The workload-defined job payload (plain data, interpreted by the
    /// runner closure handed to [`Plan::execute`]).
    pub job: J,
}

/// An ordered wave schedule over `p` processors.  See the module docs.
#[derive(Debug, Clone)]
pub struct Plan<J> {
    waves: Vec<Vec<Step<J>>>,
    p: usize,
}

impl<J> Plan<J> {
    /// An empty plan (no waves, no steps) for `p` processors.
    pub fn empty(p: usize) -> Self {
        assert!(p >= 1, "a plan needs at least one processor");
        Self {
            waves: Vec::new(),
            p,
        }
    }

    /// Build a plan from explicit waves.  Every step's processor must be
    /// `< p`; empty waves are dropped (a barrier with nothing behind it is
    /// pure overhead).
    pub fn from_waves(p: usize, waves: Vec<Vec<Step<J>>>) -> Self {
        assert!(p >= 1, "a plan needs at least one processor");
        let waves: Vec<Vec<Step<J>>> = waves.into_iter().filter(|w| !w.is_empty()).collect();
        for wave in &waves {
            for step in wave {
                assert!(
                    step.proc < p,
                    "step targets processor {} but the plan has p = {p}",
                    step.proc
                );
            }
        }
        Self { waves, p }
    }

    /// A single-wave plan: every step independent (up to same-processor FIFO
    /// ordering), one barrier total.
    pub fn single_wave(p: usize, steps: Vec<Step<J>>) -> Self {
        Self::from_waves(p, vec![steps])
    }

    /// Number of processors the plan targets.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of waves, i.e. the exact number of pool barriers
    /// [`Plan::execute`] will issue.
    pub fn barriers(&self) -> usize {
        self.waves.len()
    }

    /// Total number of placed steps.
    pub fn steps(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }

    /// The raw waves (read-only), for inspection by tests and reports.
    pub fn waves(&self) -> &[Vec<Step<J>>] {
        &self.waves
    }

    /// Iterate over every step in schedule order (wave by wave).
    pub fn iter(&self) -> impl Iterator<Item = &Step<J>> {
        self.waves.iter().flatten()
    }

    /// Number of steps placed on each processor.
    pub fn steps_per_proc(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.p];
        for step in self.iter() {
            out[step.proc] += 1;
        }
        out
    }

    /// Visit every step in schedule order with its wave index — the
    /// sequential twin of [`Plan::execute`], used by the traced (cache
    /// simulator) variants so they replay the *identical* leaf→processor
    /// assignment.
    pub fn for_each<F>(&self, mut f: F)
    where
        F: FnMut(usize, ProcId, &J),
    {
        for (w, wave) in self.waves.iter().enumerate() {
            for step in wave {
                f(w, step.proc, &step.job);
            }
        }
    }

    /// Sequential composition: every wave of `other` runs after every wave of
    /// `self`.  The result targets `max(p, other.p)` processors.
    pub fn concat(mut self, other: Plan<J>) -> Plan<J> {
        self.p = self.p.max(other.p);
        self.waves.extend(other.waves);
        self
    }

    /// Run many *independent* plans through one pool pass: wave `w` of the
    /// batch is the concatenation of wave `w` of every constituent, each job
    /// tagged with its plan's index.  The barrier count of the batch is the
    /// maximum of the constituents' barrier counts, not the sum.
    pub fn batch(plans: Vec<Plan<J>>) -> Plan<(usize, J)> {
        let p = plans.iter().map(|pl| pl.p).max().unwrap_or(1);
        let depth = plans.iter().map(|pl| pl.waves.len()).max().unwrap_or(0);
        let mut waves: Vec<Vec<Step<(usize, J)>>> = (0..depth).map(|_| Vec::new()).collect();
        for (idx, plan) in plans.into_iter().enumerate() {
            for (w, wave) in plan.waves.into_iter().enumerate() {
                waves[w].extend(wave.into_iter().map(|s| Step {
                    proc: s.proc,
                    job: (idx, s.job),
                }));
            }
        }
        Plan { waves, p }
    }

    /// [`Plan::batch`] over *borrowed* plans: merge without consuming (or
    /// deep-cloning) the constituents, cloning only the jobs actually placed.
    /// This is the executor path for cached plan skeletons — the same `Arc`ed
    /// skeleton can appear in any number of concurrent batches, so the merge
    /// must not take ownership.
    pub fn batch_refs(plans: &[&Plan<J>]) -> Plan<(usize, J)>
    where
        J: Clone,
    {
        let p = plans.iter().map(|pl| pl.p).max().unwrap_or(1);
        let depth = plans.iter().map(|pl| pl.waves.len()).max().unwrap_or(0);
        let mut waves: Vec<Vec<Step<(usize, J)>>> = (0..depth).map(|_| Vec::new()).collect();
        for (idx, plan) in plans.iter().enumerate() {
            for (w, wave) in plan.waves.iter().enumerate() {
                waves[w].extend(wave.iter().map(|s| Step {
                    proc: s.proc,
                    job: (idx, s.job.clone()),
                }));
            }
        }
        Plan { waves, p }
    }

    /// Transform every job, preserving the schedule.
    pub fn map<K>(self, mut f: impl FnMut(J) -> K) -> Plan<K> {
        Plan {
            waves: self
                .waves
                .into_iter()
                .map(|wave| {
                    wave.into_iter()
                        .map(|s| Step {
                            proc: s.proc,
                            job: f(s.job),
                        })
                        .collect()
                })
                .collect(),
            p: self.p,
        }
    }
}

impl<J: Send + Sync> Plan<J> {
    /// Execute the plan on `pool`: one `pool.scope` barrier per wave; within a
    /// wave, `run(proc, &job)` is spawned onto `proc` in plan order.
    ///
    /// Panics if the plan targets more processors than the pool has.
    pub fn execute<F>(&self, pool: &WorkerPool, run: F)
    where
        F: Fn(ProcId, &J) + Sync,
    {
        assert!(
            self.p <= pool.p(),
            "plan targets {} processors but the pool has {}",
            self.p,
            pool.p()
        );
        for wave in &self.waves {
            pool.scope(|s| {
                for step in wave {
                    let run = &run;
                    let job = &step.job;
                    let proc = step.proc;
                    s.spawn_on(proc, move || run(proc, job));
                }
            });
        }
        sched::record_plan_execution(self.waves.len() as u64, self.steps() as u64);
    }
}

impl<J: Send> Plan<J> {
    /// [`Plan::execute`], but consuming the plan and moving each job into its
    /// task — for jobs that carry owned resources (e.g. disjoint `MatMut`
    /// windows) rather than plain descriptors.
    pub fn execute_owned<F>(self, pool: &WorkerPool, run: F)
    where
        F: Fn(ProcId, J) + Sync,
    {
        assert!(
            self.p <= pool.p(),
            "plan targets {} processors but the pool has {}",
            self.p,
            pool.p()
        );
        let waves = self.waves.len() as u64;
        let mut steps = 0u64;
        for wave in self.waves {
            steps += wave.len() as u64;
            pool.scope(|s| {
                for step in wave {
                    let run = &run;
                    let proc = step.proc;
                    let job = step.job;
                    s.spawn_on(proc, move || run(proc, job));
                }
            });
        }
        sched::record_plan_execution(waves, steps);
    }
}

impl<N: DcNode> Assignment<N> {
    /// Lower a pruned-BFS assignment into a single-wave plan: every node is
    /// independent; per-processor node order (largest piece first) is
    /// preserved by the pool's per-worker FIFO.
    pub fn into_plan(self) -> Plan<N> {
        let p = self.per_proc.len().max(1);
        let mut steps = Vec::with_capacity(self.total_nodes());
        for (proc, nodes) in self.per_proc.into_iter().enumerate() {
            steps.extend(nodes.into_iter().map(|job| Step { proc, job }));
        }
        Plan::single_wave(p, steps)
    }
}

/// A per-processor wave clock describing the completion front of already
/// planned work; see the module docs for the sequencing rules it encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Front {
    /// `per_proc[q]` = first wave index a step on `q` sequenced after this
    /// front may occupy.
    per_proc: Vec<usize>,
}

impl Front {
    /// Merge the completion fronts of parallel branches (element-wise max).
    pub fn join(&self, other: &Front) -> Front {
        assert_eq!(self.per_proc.len(), other.per_proc.len());
        Front {
            per_proc: self
                .per_proc
                .iter()
                .zip(&other.per_proc)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Join an iterator of fronts (for k-way forks).
    pub fn join_all<'a>(fronts: impl IntoIterator<Item = &'a Front>) -> Front {
        let mut it = fronts.into_iter();
        let first = it
            .next()
            .expect("join_all needs at least one front")
            .clone();
        it.fold(first, |acc, f| acc.join(f))
    }
}

/// Builds a [`Plan`] from a symbolic replay of a series-parallel recursion.
#[derive(Debug)]
pub struct PlanBuilder<J> {
    waves: Vec<Vec<Step<J>>>,
    p: usize,
}

impl<J> PlanBuilder<J> {
    /// A builder for `p >= 1` processors.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "a plan needs at least one processor");
        Self {
            waves: Vec::new(),
            p,
        }
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The front before any work: every processor is free from wave 0.
    pub fn root(&self) -> Front {
        Front {
            per_proc: vec![0; self.p],
        }
    }

    /// Place `job` on `proc`, sequenced after `front`; returns the completion
    /// front of the step.
    ///
    /// The step lands in wave `front[proc]` — sharing a wave with its latest
    /// same-processor predecessor (the pool FIFO orders them) while starting
    /// strictly after every cross-processor predecessor.  Steps of parallel
    /// branches emitted into the same wave/processor are independent by
    /// construction, so their relative FIFO order is irrelevant.
    pub fn step(&mut self, front: &Front, proc: ProcId, job: J) -> Front {
        assert!(
            proc < self.p,
            "processor {proc} out of range (p = {})",
            self.p
        );
        let wave = front.per_proc[proc];
        if self.waves.len() <= wave {
            self.waves.resize_with(wave + 1, Vec::new);
        }
        self.waves[wave].push(Step { proc, job });
        let mut per_proc = front.per_proc.clone();
        for (q, slot) in per_proc.iter_mut().enumerate() {
            let earliest = if q == proc { wave } else { wave + 1 };
            *slot = (*slot).max(earliest);
        }
        Front { per_proc }
    }

    /// Finish: empty waves (possible when a front skipped a wave index on
    /// every processor) are dropped.
    pub fn finish(self) -> Plan<J> {
        Plan::from_waves(self.p, self.waves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_wave_executes_every_step_once() {
        let pool = WorkerPool::new(3);
        let plan = Plan::single_wave(
            3,
            (0..9)
                .map(|i| Step {
                    proc: i % 3,
                    job: i,
                })
                .collect(),
        );
        assert_eq!(plan.barriers(), 1);
        assert_eq!(plan.steps(), 9);
        assert_eq!(plan.steps_per_proc(), vec![3, 3, 3]);
        let hits = AtomicUsize::new(0);
        plan.execute(&pool, |proc, &job| {
            assert_eq!(proc, job % 3);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn waves_are_barriers_and_same_proc_steps_stay_ordered() {
        // Wave 1 must observe every wave-0 write; same-proc steps within a
        // wave run in plan order.
        let pool = WorkerPool::new(2);
        let plan = Plan::from_waves(
            2,
            vec![
                vec![
                    Step {
                        proc: 0,
                        job: 0usize,
                    },
                    Step { proc: 1, job: 1 },
                    Step { proc: 1, job: 2 },
                ],
                vec![Step { proc: 0, job: 3 }],
            ],
        );
        let log = Mutex::new(Vec::new());
        plan.execute(&pool, |_, &job| log.lock().push(job));
        let log = log.lock();
        assert_eq!(log.len(), 4);
        // Job 3 is in a later wave: it runs after everything else.
        assert_eq!(*log.last().unwrap(), 3);
        // Jobs 1 and 2 share worker 1: FIFO order.
        let pos = |j: usize| log.iter().position(|&x| x == j).unwrap();
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn empty_waves_are_dropped() {
        let plan: Plan<u32> = Plan::from_waves(2, vec![vec![], vec![Step { proc: 0, job: 1 }]]);
        assert_eq!(plan.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "targets processor")]
    fn from_waves_rejects_out_of_range_processors() {
        let _ = Plan::from_waves(2, vec![vec![Step { proc: 2, job: () }]]);
    }

    #[test]
    fn builder_front_sequencing_rules() {
        // seq(leaf on 0, leaf on 0) shares a wave; seq(leaf on 0, leaf on 1)
        // advances a wave; parallel branches overlap.
        let mut b = PlanBuilder::new(3);
        let f0 = b.root();
        let f1 = b.step(&f0, 0, "a");
        let f2 = b.step(&f1, 0, "b"); // same proc: same wave
        let f3 = b.step(&f2, 1, "c"); // cross proc: next wave
                                      // Parallel branches from f3:
        let left = b.step(&f3, 0, "d");
        let right = b.step(&f3, 2, "e");
        let joined = left.join(&right);
        let _ = b.step(&joined, 1, "f");
        let plan = b.finish();
        // a,b in wave 0; c in wave 1; d,e in wave 2; f in wave 3.
        assert_eq!(plan.barriers(), 4);
        let wave_of = |j: &str| {
            plan.waves()
                .iter()
                .position(|w| w.iter().any(|s| s.job == j))
                .unwrap()
        };
        assert_eq!(wave_of("a"), 0);
        assert_eq!(wave_of("b"), 0);
        assert_eq!(wave_of("c"), 1);
        assert_eq!(wave_of("d"), 2);
        assert_eq!(wave_of("e"), 2);
        assert_eq!(wave_of("f"), 3);
    }

    #[test]
    fn builder_execution_respects_dependencies() {
        // A diamond: s0 on p0 -> (s1 on p1 || s2 on p2) -> s3 on p0, with the
        // executed order verified through a shared cell.
        let mut b = PlanBuilder::new(3);
        let f = b.root();
        let f = b.step(&f, 0, 0usize);
        let l = b.step(&f, 1, 1);
        let r = b.step(&f, 2, 2);
        let _ = b.step(&l.join(&r), 0, 3);
        let plan = b.finish();
        let pool = WorkerPool::new(3);
        let order = Mutex::new(Vec::new());
        plan.execute(&pool, |_, &j| order.lock().push(j));
        let order = order.lock();
        let pos = |j: usize| order.iter().position(|&x| x == j).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
    }

    #[test]
    fn concat_appends_waves() {
        let a = Plan::single_wave(2, vec![Step { proc: 0, job: 1u32 }]);
        let b = Plan::single_wave(2, vec![Step { proc: 1, job: 2u32 }]);
        let c = a.concat(b);
        assert_eq!(c.barriers(), 2);
        assert_eq!(c.steps(), 2);
    }

    #[test]
    fn batch_zips_waves_and_tags_instances() {
        let mk = |n_waves: usize, proc: ProcId| {
            Plan::from_waves(
                2,
                (0..n_waves).map(|w| vec![Step { proc, job: w }]).collect(),
            )
        };
        let batched = Plan::batch(vec![mk(3, 0), mk(1, 1), mk(2, 1)]);
        // Barrier count is the max, not the sum.
        assert_eq!(batched.barriers(), 3);
        assert_eq!(batched.steps(), 6);
        // Wave 0 holds wave 0 of every instance.
        assert_eq!(batched.waves()[0].len(), 3);
        let tags: Vec<usize> = batched.waves()[0].iter().map(|s| s.job.0).collect();
        assert_eq!(tags, vec![0, 1, 2]);
        // Executing the batch runs all six steps.
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        batched.execute(&pool, |_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn batch_refs_agrees_with_batch_without_consuming() {
        let mk = |n_waves: usize, proc: ProcId| {
            Plan::from_waves(
                2,
                (0..n_waves).map(|w| vec![Step { proc, job: w }]).collect(),
            )
        };
        let (a, b, c) = (mk(3, 0), mk(1, 1), mk(2, 1));
        let merged = Plan::batch_refs(&[&a, &b, &c]);
        let owned = Plan::batch(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(merged.barriers(), owned.barriers());
        assert_eq!(merged.steps(), owned.steps());
        for (wa, wb) in merged.waves().iter().zip(owned.waves()) {
            assert_eq!(wa, wb);
        }
        // The constituents survive the merge untouched.
        assert_eq!(a.steps(), 3);
        assert_eq!(c.barriers(), 2);
        let empty = Plan::<usize>::batch_refs(&[]);
        assert_eq!(empty.steps(), 0);
    }

    #[test]
    fn assignment_lowers_to_single_wave_plan() {
        use crate::bfs::pruned_bfs;

        #[derive(Debug, Clone)]
        struct Node(f64);
        impl DcNode for Node {
            fn divide(&self) -> Vec<Self> {
                vec![Node(self.0 / 2.0), Node(self.0 / 2.0)]
            }
            fn is_base(&self) -> bool {
                self.0 <= 1.0
            }
            fn work(&self) -> f64 {
                self.0
            }
        }

        let assignment = pruned_bfs(Node(64.0), 3);
        let total = assignment.total_nodes();
        let plan = assignment.into_plan();
        assert_eq!(plan.barriers(), 1);
        assert_eq!(plan.steps(), total);
    }

    #[test]
    fn execute_records_sched_metrics() {
        let before = sched::snapshot();
        let pool = WorkerPool::new(2);
        let plan = Plan::from_waves(
            2,
            vec![
                vec![Step { proc: 0, job: () }, Step { proc: 1, job: () }],
                vec![Step { proc: 0, job: () }],
            ],
        );
        plan.execute(&pool, |_, _| {});
        let delta = sched::snapshot().since(&before);
        assert_eq!(delta.plan_executions, 1);
        assert_eq!(delta.plan_waves, 2);
        assert_eq!(delta.plan_steps, 3);
        // Each wave is exactly one pool barrier.
        assert!(delta.pool_barriers >= 2);
    }

    #[test]
    fn execute_owned_moves_jobs() {
        // Jobs owning data (a Vec) are moved into their tasks.
        let pool = WorkerPool::new(2);
        let plan = Plan::single_wave(
            2,
            vec![
                Step {
                    proc: 0,
                    job: vec![1u8, 2],
                },
                Step {
                    proc: 1,
                    job: vec![3u8],
                },
            ],
        );
        let total = AtomicUsize::new(0);
        plan.execute_owned(&pool, |_, job| {
            total.fetch_add(job.len(), Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn map_preserves_schedule() {
        let plan = Plan::from_waves(
            2,
            vec![
                vec![Step { proc: 1, job: 7u32 }],
                vec![Step { proc: 0, job: 9 }],
            ],
        );
        let mapped = plan.map(|j| j as u64 * 2);
        assert_eq!(mapped.barriers(), 2);
        assert_eq!(mapped.waves()[0][0].job, 14);
        assert_eq!(mapped.waves()[1][0].job, 18);
    }
}
