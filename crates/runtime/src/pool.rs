//! A processor-aware worker pool.
//!
//! The PACO algorithms are *processor-aware*: the partitioning decides, ahead
//! of time, which processor executes which sub-problem.  A randomized
//! work-stealing pool (Cilk, rayon) deliberately hides that mapping, so this
//! crate provides its own small executor:
//!
//! * [`WorkerPool::new(p)`](WorkerPool::new) starts `p` long-lived worker
//!   threads, one per logical processor id `0..p`.
//! * [`WorkerPool::scope`] opens a scope in which
//!   [`PoolScope::spawn_on`] submits a closure **to a specific processor**.
//!   Tasks submitted to the same processor run in submission order (each worker
//!   drains a FIFO channel); tasks on different processors run concurrently.
//!   The scope joins every spawned task before it returns, so closures may
//!   borrow from the enclosing stack frame — the same guarantee as
//!   `std::thread::scope`, but without spawning threads per call.
//! * Panics inside tasks are captured and re-thrown from the scope on the
//!   caller's thread after all tasks have finished.
//!
//! The pool makes no attempt at work stealing — that is the whole point: the
//! PACO partitioning (not a scheduler) is responsible for balance, and the
//! experiments measure how well it does.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use paco_core::proc_list::ProcId;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Job(StaticJob),
    Shutdown,
}

/// A pool of `p` pinned, long-lived workers addressed by processor id.
///
/// The pool is `Send`: the thread that builds it need not be the thread that
/// drives it.  The service layer's concurrent front door relies on this —
/// each executor shard builds (or receives) its own pool and owns it for the
/// engine's lifetime, while producer threads never touch the pool at all.
/// The pool is deliberately *not* `Sync`-driven from many threads at once:
/// one owning thread opens scopes; everyone else talks to that thread.
pub struct WorkerPool {
    senders: Vec<Sender<Message>>,
    handles: Vec<JoinHandle<()>>,
}

// The handoff contract above, checked at compile time: a pool built on one
// thread can be moved into the executor thread that will own it.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<WorkerPool>();
};

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool(p={})", self.p())
    }
}

impl WorkerPool {
    /// Start a pool with `p >= 1` workers.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "WorkerPool needs at least one worker");
        let mut senders = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for proc in 0..p {
            let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("paco-worker-{proc}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Message::Job(job) => job(),
                            Message::Shutdown => break,
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// A pool sized to the hardware parallelism available to this process.
    pub fn with_available_parallelism() -> Self {
        Self::new(paco_core::machine::available_processors())
    }

    /// Number of workers (processors) in the pool.
    pub fn p(&self) -> usize {
        self.senders.len()
    }

    /// Open a scope in which tasks can be spawned onto specific processors and
    /// may borrow from the caller's stack.  Returns the closure's result after
    /// every spawned task has completed.
    ///
    /// If any task panicked, the panic is re-thrown here (after all tasks have
    /// finished, so no task is left running with dangling borrows).
    ///
    /// The join is unconditional: even when the scope closure itself unwinds
    /// after queueing borrowed jobs, `scope` waits for every spawned task
    /// before propagating the panic — the same guarantee as
    /// `std::thread::scope`.  Without the wait, a worker could still be
    /// running a closure that borrows from the frame being unwound.  When both
    /// the scope closure and a task panic, the closure's payload wins and the
    /// task's is dropped.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        paco_core::metrics::sched::record_pool_barrier();
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _marker: std::marker::PhantomData,
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait();
        match result {
            Ok(r) => {
                scope.rethrow_if_panicked();
                r
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Run `f(proc)` on every worker concurrently and wait for completion.
    pub fn run_on_all<F>(&self, f: F)
    where
        F: Fn(ProcId) + Sync,
    {
        self.scope(|s| {
            for proc in 0..self.p() {
                let f = &f;
                s.spawn_on(proc, move || f(proc));
            }
        });
    }

    /// Gracefully shut the pool down: deliver a shutdown message behind any
    /// queued work, then join every worker.
    ///
    /// `Drop` does the same, but swallows worker-thread join failures (it
    /// must not double-panic); the explicit form is for owners that want the
    /// drain to be loud — an engine shard shutting down calls this so a
    /// worker that died outside a scope (which "cannot happen": every job is
    /// wrapped in `catch_unwind`) surfaces instead of vanishing.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked (as opposed to a *job*,
    /// whose panics are captured and re-thrown by the scope that spawned it).
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(Message::Shutdown);
        }
        let mut dead = Vec::new();
        for (proc, handle) in self.handles.drain(..).enumerate() {
            if handle.join().is_err() {
                dead.push(proc);
            }
        }
        assert!(
            dead.is_empty(),
            "worker thread(s) {dead:?} panicked outside any scope"
        );
    }

    /// Execute a pre-computed assignment: `tasks[i]` is the ordered list of
    /// closures processor `i` must run.  Returns once every processor finished
    /// its list.
    pub fn run_assignment<'env, F>(&self, tasks: Vec<Vec<F>>)
    where
        F: FnOnce() + Send + 'env,
    {
        assert!(
            tasks.len() <= self.p(),
            "assignment uses {} processors but the pool has {}",
            tasks.len(),
            self.p()
        );
        self.scope(|s| {
            for (proc, list) in tasks.into_iter().enumerate() {
                for job in list {
                    s.spawn_on(proc, job);
                }
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Run two branches of a processor-aware recursion concurrently and wait for
/// both.
///
/// The branch whose processor list is `p1` is considered the "own" branch: when
/// the caller is already executing on `p1`'s first processor (`cur ==
/// Some(p1.first())`), that branch runs inline on the current thread while the
/// other branch is spawned onto `p2.first()`; when the caller is outside the
/// pool (`cur == None`), both branches are spawned.  Each branch receives the
/// processor id it is (now) running on, to thread through recursive calls.
///
/// This is the execution discipline used by every "1-PIECE"-style PACO
/// recursion (PACO 1D's `COP-1D□`, PACO MM-1-PIECE, PACO HETERO-MM): it
/// realises the pseudo-code's `spawn`/`sync` on explicit processor lists while
/// guaranteeing that a worker never waits on work queued behind it on its own
/// queue (it only ever waits for *other* workers).
pub fn fork2<F1, F2>(
    pool: &WorkerPool,
    cur: Option<ProcId>,
    p1: paco_core::proc_list::ProcList,
    f1: F1,
    p2: paco_core::proc_list::ProcList,
    f2: F2,
) where
    F1: FnOnce(Option<ProcId>) + Send,
    F2: FnOnce(Option<ProcId>) + Send,
{
    assert!(
        !p1.is_empty() && !p2.is_empty(),
        "fork2 needs two non-empty lists"
    );
    match cur {
        None => {
            pool.scope(|s| {
                s.spawn_on(p1.first(), move || f1(Some(p1.first())));
                s.spawn_on(p2.first(), move || f2(Some(p2.first())));
            });
        }
        Some(c) => {
            assert_eq!(
                c,
                p1.first(),
                "fork2: the current processor must lead the first (own) list"
            );
            pool.scope(|s| {
                s.spawn_on(p2.first(), move || f2(Some(p2.first())));
                f1(Some(c));
            });
        }
    }
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Handle for spawning tasks inside a [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Number of processors of the underlying pool.
    pub fn p(&self) -> usize {
        self.pool.p()
    }

    /// Submit `job` to processor `proc`.  Jobs submitted to the same processor
    /// execute in submission order; jobs on different processors run
    /// concurrently.  The closure may borrow data living at least as long as
    /// the enclosing scope (`'env`).
    pub fn spawn_on<F>(&self, proc: ProcId, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        assert!(proc < self.pool.p(), "processor {proc} out of range");
        *self.state.pending.lock() += 1;

        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = outcome {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = state.pending.lock();
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        });

        // SAFETY: `scope()` joins every spawned task (wait()) before returning,
        // so the closure — and everything it borrows from 'env — outlives its
        // execution.  This is the standard scoped-pool lifetime erasure.
        let static_job: StaticJob =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, StaticJob>(wrapped) };
        self.pool.senders[proc]
            .send(Message::Job(static_job))
            .expect("worker thread terminated unexpectedly");
    }

    fn wait(&self) {
        let mut pending = self.state.pending.lock();
        while *pending > 0 {
            self.state.all_done.wait(&mut pending);
        }
    }

    fn rethrow_if_panicked(&self) {
        if let Some(payload) = self.state.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_tasks_on_requested_processors() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for proc in 0..4 {
                let hits = &hits;
                s.spawn_on(proc, move || {
                    // Each worker thread is named after its processor id.
                    let name = std::thread::current().name().unwrap().to_string();
                    assert_eq!(name, format!("paco-worker-{proc}"));
                    hits[proc].fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn tasks_on_same_processor_run_in_order() {
        let pool = WorkerPool::new(2);
        let log = parking_lot::Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..20 {
                let log = &log;
                s.spawn_on(1, move || log.lock().push(i));
            }
        });
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn scope_allows_borrowing_stack_data() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u64; 3];
        {
            let chunks: Vec<&mut u64> = data.iter_mut().collect();
            pool.scope(|s| {
                for (proc, slot) in chunks.into_iter().enumerate() {
                    s.spawn_on(proc, move || *slot = proc as u64 + 10);
                }
            });
        }
        assert_eq!(data, vec![10, 11, 12]);
    }

    #[test]
    fn run_on_all_visits_every_processor() {
        let pool = WorkerPool::new(5);
        let seen: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.run_on_all(|proc| {
            seen[proc].fetch_add(1, Ordering::SeqCst);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn run_assignment_executes_all_tasks() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Vec<_>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        let counter = &counter;
                        move || {
                            counter.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                    .collect()
            })
            .collect();
        pool.run_assignment(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn pool_can_be_handed_to_an_owning_thread_and_shut_down() {
        // The engine handoff pattern: build the pool here, move it into the
        // thread that will own and drive it, and shut it down explicitly when
        // that thread is done.
        let pool = WorkerPool::new(3);
        let handle = std::thread::spawn(move || {
            let total = AtomicUsize::new(0);
            pool.scope(|s| {
                let total = &total;
                for proc in 0..3 {
                    s.spawn_on(proc, move || {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            pool.shutdown();
            total.load(Ordering::SeqCst)
        });
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn shutdown_after_a_job_panic_is_clean() {
        // A *job* panic is captured by the scope; the worker thread survives,
        // so the explicit shutdown must see every worker exit cleanly.
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn_on(0, || panic!("job dies, worker survives")));
        }));
        assert!(result.is_err());
        pool.shutdown();
    }

    #[test]
    fn nested_scopes_work() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            let total = &total;
            outer.spawn_on(0, move || {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        pool.scope(|s| {
            let total = &total;
            s.spawn_on(1, move || {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn_on(0, || panic!("boom"));
                s.spawn_on(1, || {});
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn_on(0, move || {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "scope closure dies")]
    fn scope_closure_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.scope(|s| {
            s.spawn_on(0, || {});
            panic!("scope closure dies");
        });
    }

    #[test]
    fn scope_closure_panic_still_joins_borrowed_jobs() {
        // Regression test for the panic-unsafety fixed in `scope`: if the
        // scope closure unwinds after queueing jobs that borrow the enclosing
        // stack, the scope must still join them before propagating the panic —
        // otherwise a worker races with the unwinding frame (UB).  Observable
        // contract: by the time the panic escapes `scope`, every queued job
        // has finished writing through its borrow.
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let hits = &hits;
                for proc in 0..2 {
                    s.spawn_on(proc, move || {
                        // Give the closure time to unwind first.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("unwind with queued borrowed jobs");
            });
        }));
        assert!(result.is_err());
        assert_eq!(
            hits.load(Ordering::SeqCst),
            2,
            "all borrowed jobs must be joined before the scope unwinds"
        );
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn_on(1, move || {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_closure_panic_wins_over_task_panic() {
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn_on(0, || panic!("task payload"));
                panic!("closure payload");
            });
        }));
        let payload = result.expect_err("scope must panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "closure payload");
    }

    #[test]
    fn fork2_from_outside_the_pool_runs_both_branches() {
        use paco_core::proc_list::ProcList;
        let pool = WorkerPool::new(4);
        let procs = ProcList::all(4);
        let (p1, p2) = procs.split_even();
        let log = parking_lot::Mutex::new(Vec::new());
        fork2(
            &pool,
            None,
            p1,
            |cur| log.lock().push(("left", cur)),
            p2,
            |cur| log.lock().push(("right", cur)),
        );
        let log = log.lock();
        assert_eq!(log.len(), 2);
        assert!(log.contains(&("left", Some(p1.first()))));
        assert!(log.contains(&("right", Some(p2.first()))));
    }

    #[test]
    fn fork2_nested_recursion_descends_processor_lists() {
        use paco_core::proc_list::ProcList;
        // A miniature 1-PIECE-style recursion: split the list until singletons,
        // count one unit of work per leaf, and record which worker ran it.
        let pool = WorkerPool::new(5);
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();

        fn recurse(pool: &WorkerPool, cur: Option<usize>, procs: ProcList, hits: &[AtomicUsize]) {
            if procs.len() == 1 {
                let target = procs.only();
                if cur == Some(target) {
                    hits[target].fetch_add(1, Ordering::SeqCst);
                } else {
                    pool.scope(|s| {
                        s.spawn_on(target, || {
                            hits[target].fetch_add(1, Ordering::SeqCst);
                        })
                    });
                }
                return;
            }
            let (p1, p2) = procs.split_even();
            fork2(
                pool,
                cur,
                p1,
                |c| recurse(pool, c, p1, hits),
                p2,
                |c| recurse(pool, c, p2, hits),
            );
        }

        recurse(&pool, None, ProcList::all(5), &hits);
        for (proc, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::SeqCst),
                1,
                "processor {proc} ran its leaf exactly once"
            );
        }
    }

    #[test]
    #[should_panic]
    fn fork2_rejects_a_foreign_current_processor() {
        use paco_core::proc_list::ProcList;
        let pool = WorkerPool::new(4);
        let (p1, p2) = ProcList::all(4).split_even();
        // Claiming to run on p2's leader while passing it as the *second* list
        // violates the discipline and must be rejected loudly.
        fork2(&pool, Some(p2.first()), p1, |_| {}, p2, |_| {});
    }

    #[test]
    fn parallel_speed_sanity() {
        // Not a benchmark — just checks that independent processors genuinely
        // run concurrently (the scope would deadlock if a single worker had to
        // run a task that waits for a task queued behind it on the same worker).
        let pool = WorkerPool::new(2);
        let barrier = std::sync::Barrier::new(2);
        pool.scope(|s| {
            let b = &barrier;
            s.spawn_on(0, move || {
                b.wait();
            });
            s.spawn_on(1, move || {
                b.wait();
            });
        });
    }
}
