//! Heterogeneous execution support (Sect. III-E-2, Corollary 12).
//!
//! The paper extends PACO to machines whose processors have different (but
//! fixed) throughputs `t_1 : t_2 : … : t_p`:
//!
//! * the partitioning assigns work *proportional to throughput* — either by the
//!   fraction-tracking divide-and-assign of PACO-HETERO-MM
//!   ([`hetero_pruned_bfs`]) or by the binary throughput-tree splitting used in
//!   the paper's experiments (implemented in `paco-matmul::hetero`);
//! * the runtime must *be* heterogeneous to demonstrate anything.  We do not
//!   have a machine with a 3× faster socket, so [`ThrottleSpec`] emulates one:
//!   each worker repeats its leaf kernels `slowdown(proc)` times, making a
//!   worker with throughput ratio `t` behave like one `max_ratio / t` times
//!   slower than the fastest.  The substitution is recorded in `DESIGN.md`.

use crate::bfs::{Assignment, DcNode};
use paco_core::machine::HeteroSpec;
use paco_core::proc_list::ProcId;

/// Emulation of heterogeneous cores on homogeneous hardware by repeating leaf
/// work on the "slow" cores.
#[derive(Debug, Clone)]
pub struct ThrottleSpec {
    repeats: Vec<u32>,
    spec: HeteroSpec,
}

impl ThrottleSpec {
    /// Build the throttle from a throughput specification: the fastest core
    /// runs its leaf kernel once; a core with half its throughput runs it
    /// twice, etc. (rounded to the nearest integer, minimum 1).
    pub fn from_spec(spec: &HeteroSpec) -> Self {
        let max = spec.ratios().iter().cloned().fold(f64::MIN, f64::max);
        let repeats = spec
            .ratios()
            .iter()
            .map(|&t| ((max / t).round() as u32).max(1))
            .collect();
        Self {
            repeats,
            spec: spec.clone(),
        }
    }

    /// A homogeneous (no-op) throttle for `p` processors.
    pub fn homogeneous(p: usize) -> Self {
        Self::from_spec(&HeteroSpec::homogeneous(p))
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.repeats.len()
    }

    /// How many times processor `proc` must repeat its leaf kernel.
    pub fn slowdown(&self, proc: ProcId) -> u32 {
        self.repeats[proc]
    }

    /// The underlying throughput specification.
    pub fn spec(&self) -> &HeteroSpec {
        &self.spec
    }

    /// Run `f` the required number of times on behalf of `proc` (the extra
    /// repetitions model the slower core; only the first execution's results
    /// matter, the rest re-do the same work).
    pub fn throttled<F: FnMut()>(&self, proc: ProcId, mut f: F) {
        for _ in 0..self.slowdown(proc) {
            f();
        }
    }
}

/// Heterogeneous pruned BFS (the PACO HETERO-MM divide-and-assign of Sect.
/// III-E-2): each node carries its fraction of the total work; whenever a
/// node's fraction fits inside some processor's *remaining* fraction it is
/// assigned to that processor; remaining constant-size nodes are dealt
/// round-robin at the end.
pub fn hetero_pruned_bfs<N: DcNode>(root: N, spec: &HeteroSpec) -> Assignment<N> {
    let p = spec.p();
    let total_work = root.work();
    assert!(total_work > 0.0, "root must have positive work");
    let mut remaining: Vec<f64> = spec.fractions();
    let mut per_proc: Vec<Vec<N>> = (0..p).map(|_| Vec::new()).collect();
    let mut frontier = vec![root];
    let mut levels = 0usize;
    let mut super_rounds = 0usize;
    let mut rr = 0usize;

    // Small tolerance so a node whose fraction exceeds the remaining share by a
    // rounding hair still gets assigned.
    const EPS: f64 = 1e-12;

    while !frontier.is_empty() {
        let all_base = frontier.iter().all(|n| n.is_base());
        if all_base {
            // Terminal: deal the constant-size leftovers round-robin.
            for node in frontier {
                per_proc[rr % p].push(node);
                rr += 1;
            }
            super_rounds += 1;
            break;
        }

        // Try to place every frontier node whose fraction fits some processor's
        // remaining budget; prefer the processor with the largest remaining
        // budget so fast processors fill up first.
        let mut still_unassigned = Vec::with_capacity(frontier.len());
        let mut assigned_any = false;
        for node in frontier {
            let frac = node.work() / total_work;
            // Index of the processor with the largest remaining fraction.
            let (best_proc, best_remaining) =
                remaining
                    .iter()
                    .cloned()
                    .enumerate()
                    .fold(
                        (0usize, f64::MIN),
                        |acc, (i, r)| if r > acc.1 { (i, r) } else { acc },
                    );
            if frac <= best_remaining + EPS {
                remaining[best_proc] -= frac;
                per_proc[best_proc].push(node);
                assigned_any = true;
            } else {
                still_unassigned.push(node);
            }
        }
        if assigned_any {
            super_rounds += 1;
        }
        if still_unassigned.is_empty() {
            break;
        }

        // Divide what is left one more level.
        levels += 1;
        assert!(
            levels <= 64,
            "hetero pruned BFS expanded more than 64 levels"
        );
        let mut next = Vec::with_capacity(still_unassigned.len() * 2);
        for node in still_unassigned {
            if node.is_base() {
                next.push(node);
            } else {
                next.extend(node.divide());
            }
        }
        frontier = next;
    }

    Assignment {
        per_proc,
        levels_expanded: levels,
        super_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct FakeNode {
        size: f64,
    }

    impl DcNode for FakeNode {
        fn divide(&self) -> Vec<Self> {
            vec![
                FakeNode {
                    size: self.size / 2.0,
                },
                FakeNode {
                    size: self.size / 2.0,
                },
            ]
        }
        fn is_base(&self) -> bool {
            self.size <= 1.0
        }
        fn work(&self) -> f64 {
            self.size
        }
    }

    #[test]
    fn throttle_derives_integer_slowdowns() {
        let spec = HeteroSpec::new(vec![3.0, 1.0, 1.0]);
        let t = ThrottleSpec::from_spec(&spec);
        assert_eq!(t.slowdown(0), 1);
        assert_eq!(t.slowdown(1), 3);
        assert_eq!(t.slowdown(2), 3);
        assert_eq!(t.p(), 3);

        let mut count = 0;
        t.throttled(1, || count += 1);
        assert_eq!(count, 3);

        let homo = ThrottleSpec::homogeneous(4);
        assert!((0..4).all(|p| homo.slowdown(p) == 1));
    }

    #[test]
    fn hetero_assignment_tracks_throughput_fractions() {
        // Processor 0 is 3x faster: it must receive ~3x the work.
        let spec = HeteroSpec::new(vec![3.0, 1.0, 1.0, 1.0]);
        let a = hetero_pruned_bfs(FakeNode { size: 4096.0 }, &spec);
        let r = a.report();
        assert!((r.total_work - 4096.0).abs() < 1e-6);
        let works: Vec<f64> = a
            .per_proc
            .iter()
            .map(|nodes| nodes.iter().map(|n| n.work()).sum())
            .collect();
        let expect: Vec<f64> = spec.fractions().iter().map(|f| f * 4096.0).collect();
        for (got, want) in works.iter().zip(expect.iter()) {
            let rel = (got - want).abs() / want;
            assert!(rel < 0.15, "got {got}, want {want}");
        }
    }

    #[test]
    fn homogeneous_spec_reduces_to_balanced_assignment() {
        let spec = HeteroSpec::homogeneous(5);
        let a = hetero_pruned_bfs(FakeNode { size: 1024.0 }, &spec);
        let r = a.report();
        assert!((r.total_work - 1024.0).abs() < 1e-6);
        assert!(r.work_imbalance < 1.3, "imbalance {}", r.work_imbalance);
    }

    #[test]
    fn extreme_ratio_single_fast_processor() {
        let spec = HeteroSpec::new(vec![8.0, 1.0]);
        let a = hetero_pruned_bfs(FakeNode { size: 512.0 }, &spec);
        let works: Vec<f64> = a
            .per_proc
            .iter()
            .map(|nodes| nodes.iter().map(|n| n.work()).sum())
            .collect();
        assert!(works[0] > works[1] * 5.0, "works = {works:?}");
        assert!((works[0] + works[1] - 512.0).abs() < 1e-9);
    }
}
