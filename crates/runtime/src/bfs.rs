//! The pruned breadth-first partitioning engine (Sect. III, Fig. 2).
//!
//! The paper's general PACO algorithm traverses the `c`-way divide-and-conquer
//! tree of a cache-oblivious algorithm in a *pruned BFS* fashion: the tree is
//! unfolded level by level; as soon as a level contains at least `p` ready
//! nodes, exactly `p` of them are pruned and assigned to the `p` processors in
//! round-robin order; the remaining nodes continue to the next level; when only
//! base-case nodes are left, they are all assigned round-robin.
//!
//! [`pruned_bfs`] implements that traversal generically over [`DcNode`], and is
//! what `paco-matmul` uses to place MM cuboids and Strassen multiplication
//! cubes.  [`pruned_bfs_with_gamma`] implements the STRASSEN-CONST-PIECES
//! refinement (Corollary 14): stop after `γ` *super-rounds* (assignment events)
//! and hand out whatever is left round-robin, bounding the number of pieces per
//! processor by a constant at the cost of an arbitrarily small load imbalance.
//!
//! [`AssignmentReport`] checks the paper's key structural invariant: the pieces
//! assigned to any single processor form an (almost) geometrically decreasing
//! sequence in work, so the top piece dominates and both computation and
//! communication stay balanced.

use paco_core::metrics::Counters;
use paco_core::proc_list::ProcList;

/// A node of a divide-and-conquer tree that the pruned BFS can partition.
pub trait DcNode: Sized + Send {
    /// The node's children (the `c`-way division).  Called only when
    /// [`DcNode::is_base`] is false.
    fn divide(&self) -> Vec<Self>;

    /// True when the node is of base-case (constant) size and must not be
    /// divided further.
    fn is_base(&self) -> bool;

    /// The computational weight of the node (e.g. cuboid volume `n·m·k`).
    fn work(&self) -> f64;

    /// The communication weight of the node (e.g. cuboid surface area).
    /// Defaults to `work()^(2/3)` which is the right shape for 3D volumes.
    fn surface(&self) -> f64 {
        self.work().powf(2.0 / 3.0)
    }
}

/// The result of a pruned-BFS partitioning: for every processor, the ordered
/// list of nodes it must execute (largest first).
#[derive(Debug, Clone)]
pub struct Assignment<N> {
    /// `per_proc[i]` is the ordered list of nodes assigned to processor `i`.
    pub per_proc: Vec<Vec<N>>,
    /// Number of tree levels that were expanded.
    pub levels_expanded: usize,
    /// Number of assignment events ("super-rounds", the paper's `i_j`).
    pub super_rounds: usize,
}

impl<N: DcNode> Assignment<N> {
    /// Number of processors.
    pub fn p(&self) -> usize {
        self.per_proc.len()
    }

    /// Total number of assigned nodes.
    pub fn total_nodes(&self) -> usize {
        self.per_proc.iter().map(|v| v.len()).sum()
    }

    /// Per-processor total work as counters (scaled to integers for reporting).
    pub fn work_counters(&self) -> Counters {
        let mut c = Counters::new(self.p());
        for (proc, nodes) in self.per_proc.iter().enumerate() {
            let w: f64 = nodes.iter().map(|n| n.work()).sum();
            c.add(proc, w.round() as u64);
        }
        c
    }

    /// Build the structural report (balance + geometric decrease).
    pub fn report(&self) -> AssignmentReport {
        let p = self.p();
        let mut work_per_proc = vec![0.0f64; p];
        let mut surface_per_proc = vec![0.0f64; p];
        let mut max_nodes = 0usize;
        let mut geometric_ok = true;
        for (proc, nodes) in self.per_proc.iter().enumerate() {
            work_per_proc[proc] = nodes.iter().map(|n| n.work()).sum();
            surface_per_proc[proc] = nodes.iter().map(|n| n.surface()).sum();
            max_nodes = max_nodes.max(nodes.len());
            // The sequence of node works on one processor must never grow by
            // more than a small constant factor from one piece to the next, and
            // the first (largest) piece must dominate the tail within a
            // constant factor.  We allow factor 8 of slack to absorb base-case
            // rounding.
            for w in nodes.windows(2) {
                if w[1].work() > w[0].work() * 1.000_001 {
                    geometric_ok = false;
                }
            }
            if let Some(first) = nodes.first() {
                let tail: f64 = nodes.iter().skip(1).map(|n| n.work()).sum();
                if tail > 8.0 * first.work() {
                    geometric_ok = false;
                }
            }
        }
        let total_work: f64 = work_per_proc.iter().sum();
        let max_work = work_per_proc.iter().cloned().fold(0.0, f64::max);
        let mean_work = if p > 0 { total_work / p as f64 } else { 0.0 };
        let total_surface: f64 = surface_per_proc.iter().sum();
        let max_surface = surface_per_proc.iter().cloned().fold(0.0, f64::max);
        AssignmentReport {
            p,
            total_work,
            max_work,
            work_imbalance: if mean_work > 0.0 {
                max_work / mean_work
            } else {
                1.0
            },
            total_surface,
            max_surface,
            max_nodes_per_proc: max_nodes,
            geometric_decrease: geometric_ok,
        }
    }
}

/// Structural summary of an [`Assignment`], used by tests and the scaling
/// experiment to check the paper's balance claims.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentReport {
    /// Number of processors.
    pub p: usize,
    /// `T^Σ_p`-style total work over all processors.
    pub total_work: f64,
    /// `T^max_p`-style maximum work on any processor.
    pub max_work: f64,
    /// `max_work / mean_work`; 1.0 is perfect balance.
    pub work_imbalance: f64,
    /// Total communication weight (surface) over all processors.
    pub total_surface: f64,
    /// Maximum communication weight on any processor.
    pub max_surface: f64,
    /// Largest number of pieces any processor received.
    pub max_nodes_per_proc: usize,
    /// True if every processor's piece sequence is (almost) geometrically
    /// decreasing with a dominating head.
    pub geometric_decrease: bool,
}

/// Options controlling the pruned BFS traversal.
#[derive(Debug, Clone, Copy)]
pub struct BfsOptions {
    /// Stop pruning after this many super-rounds and assign every remaining
    /// node round-robin (the STRASSEN-CONST-PIECES `γ`).  `None` means run to
    /// completion as in the basic algorithm.
    pub gamma: Option<usize>,
    /// Safety valve: never expand more than this many levels (panics if
    /// exceeded, which would indicate a [`DcNode::is_base`] bug).
    pub max_levels: usize,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            gamma: None,
            max_levels: 64,
        }
    }
}

/// Partition the divide-and-conquer tree rooted at `root` over `p` processors
/// with the paper's pruned BFS traversal.
pub fn pruned_bfs<N: DcNode>(root: N, p: usize) -> Assignment<N> {
    pruned_bfs_with_options(root, p, BfsOptions::default())
}

/// [`pruned_bfs`] with a bounded number of super-rounds (`γ`), i.e. the
/// STRASSEN-CONST-PIECES strategy of Corollary 14.
pub fn pruned_bfs_with_gamma<N: DcNode>(root: N, p: usize, gamma: usize) -> Assignment<N> {
    pruned_bfs_with_options(
        root,
        p,
        BfsOptions {
            gamma: Some(gamma),
            ..BfsOptions::default()
        },
    )
}

/// The fully general pruned BFS.
pub fn pruned_bfs_with_options<N: DcNode>(root: N, p: usize, opts: BfsOptions) -> Assignment<N> {
    assert!(p >= 1, "need at least one processor");
    let procs = ProcList::all(p);
    let mut per_proc: Vec<Vec<N>> = (0..p).map(|_| Vec::new()).collect();
    let mut frontier = vec![root];
    let mut rr = 0usize; // rolling round-robin cursor across super-rounds
    let mut levels = 0usize;
    let mut super_rounds = 0usize;

    loop {
        if frontier.is_empty() {
            break;
        }

        let all_base = frontier.iter().all(|n| n.is_base());
        let gamma_reached = opts.gamma.is_some_and(|g| super_rounds >= g);

        if frontier.len() >= p || all_base || gamma_reached {
            // Assign: exactly p nodes when we have at least p and are not in a
            // terminal state, otherwise everything that is left.
            let assign_count = if !all_base && !gamma_reached && frontier.len() >= p {
                p
            } else {
                frontier.len()
            };
            let rest = frontier.split_off(assign_count);
            for node in frontier {
                per_proc[procs.round_robin(rr)].push(node);
                rr += 1;
            }
            super_rounds += 1;
            frontier = rest;
            if frontier.is_empty() {
                break;
            }
            if all_base || gamma_reached {
                // Terminal state: everything was assigned above.
                debug_assert!(frontier.is_empty());
                break;
            }
            continue;
        }

        // Not enough ready nodes: unfold one more level (base nodes carry over).
        levels += 1;
        assert!(
            levels <= opts.max_levels,
            "pruned BFS expanded more than {} levels; is_base() is likely wrong",
            opts.max_levels
        );
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for node in frontier {
            if node.is_base() {
                next.push(node);
            } else {
                next.extend(node.divide());
            }
        }
        frontier = next;
    }

    Assignment {
        per_proc,
        levels_expanded: levels,
        super_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic c-way node: splits its size into c equal parts.
    #[derive(Debug, Clone, PartialEq)]
    struct FakeNode {
        size: f64,
        arity: usize,
        base: f64,
    }

    impl DcNode for FakeNode {
        fn divide(&self) -> Vec<Self> {
            (0..self.arity)
                .map(|_| FakeNode {
                    size: self.size / self.arity as f64,
                    arity: self.arity,
                    base: self.base,
                })
                .collect()
        }
        fn is_base(&self) -> bool {
            self.size <= self.base
        }
        fn work(&self) -> f64 {
            self.size
        }
    }

    fn node(size: f64, arity: usize) -> FakeNode {
        FakeNode {
            size,
            arity,
            base: 1.0,
        }
    }

    #[test]
    fn binary_tree_p3_matches_paper_figure2() {
        // Fig. 2: binary tree, p = 3.  Depth 2 has 4 nodes; 3 are pruned
        // (label 1), the remaining one is divided further, its 2 children are
        // below p so they divide again into 4, 3 pruned (label 2), etc.
        let a = pruned_bfs(node(64.0, 2), 3);
        assert_eq!(a.p(), 3);
        // Every processor gets the same total work: 64/3 is not integral but the
        // imbalance must be tiny.
        let r = a.report();
        assert!((r.total_work - 64.0).abs() < 1e-9, "work is conserved");
        assert!(r.work_imbalance < 1.2, "imbalance {}", r.work_imbalance);
        assert!(r.geometric_decrease);
        // First super-round assigns exactly one depth-2 node (size 16) per proc.
        for proc in 0..3 {
            assert_eq!(a.per_proc[proc][0].size, 16.0);
        }
    }

    #[test]
    fn work_is_conserved_for_many_p_and_arities() {
        for &arity in &[2usize, 3, 7] {
            for p in 1..=24 {
                let total = 7.0f64.powi(4) * 16.0;
                let a = pruned_bfs(node(total, arity), p);
                let r = a.report();
                assert!(
                    (r.total_work - total).abs() / total < 1e-9,
                    "arity={arity} p={p}: lost work"
                );
            }
        }
    }

    #[test]
    fn balance_holds_for_prime_p() {
        // The whole point of the paper: p need not divide the tree arity.
        for &p in &[5usize, 7, 11, 13, 17, 23, 31, 37] {
            let a = pruned_bfs(node(2048.0 * 2048.0, 2), p);
            let r = a.report();
            assert!(
                r.work_imbalance < 1.25,
                "p={p}: imbalance {}",
                r.work_imbalance
            );
            assert!(r.geometric_decrease, "p={p}");
        }
    }

    #[test]
    fn seven_way_tree_balances_on_non_powers_of_seven() {
        for &p in &[3usize, 5, 10, 24, 72, 97] {
            let a = pruned_bfs(node(7f64.powi(6), 7), p);
            let r = a.report();
            assert!(
                r.work_imbalance < 1.6,
                "p={p}: imbalance {}",
                r.work_imbalance
            );
        }
    }

    #[test]
    fn single_processor_gets_the_root() {
        let a = pruned_bfs(node(100.0, 2), 1);
        assert_eq!(a.total_nodes(), 1);
        assert_eq!(a.per_proc[0][0].size, 100.0);
        assert_eq!(a.super_rounds, 1);
    }

    #[test]
    fn base_case_root_is_assigned_directly() {
        let a = pruned_bfs(node(0.5, 2), 8);
        assert_eq!(a.total_nodes(), 1);
        assert_eq!(a.levels_expanded, 0);
    }

    #[test]
    fn gamma_limits_pieces_per_processor() {
        let p = 5;
        let unlimited = pruned_bfs(node(2.0f64.powi(20), 2), p);
        let limited = pruned_bfs_with_gamma(node(2.0f64.powi(20), 2), p, 2);
        let unlimited_max = unlimited.report().max_nodes_per_proc;
        let limited_max = limited.report().max_nodes_per_proc;
        assert!(limited_max <= unlimited_max);
        // γ rounds + the final flush; work is still conserved.
        assert!(limited.super_rounds <= 3);
        assert!((limited.report().total_work - unlimited.report().total_work).abs() < 1e-6);
        // With γ = 8 the imbalance is below 1% as the paper notes.
        let g8 = pruned_bfs_with_gamma(node(2.0f64.powi(20), 2), p, 8);
        assert!(g8.report().work_imbalance < 1.01);
    }

    #[test]
    fn assignment_counters_match_report() {
        let a = pruned_bfs(node(1024.0, 2), 4);
        let c = a.work_counters();
        let r = a.report();
        assert_eq!(c.total(), r.total_work.round() as u64);
        assert_eq!(c.max(), r.max_work.round() as u64);
    }

    #[test]
    #[should_panic]
    fn runaway_division_is_detected() {
        #[derive(Debug)]
        struct NeverBase;
        impl DcNode for NeverBase {
            fn divide(&self) -> Vec<Self> {
                vec![NeverBase]
            }
            fn is_base(&self) -> bool {
                false
            }
            fn work(&self) -> f64 {
                1.0
            }
        }
        // A 1-ary "tree" never reaches p=2 ready nodes and never hits a base
        // case; the max_levels safety valve must fire.
        let _ = pruned_bfs(NeverBase, 2);
    }
}
