//! # paco-runtime
//!
//! The processor-aware execution substrate of the PACO reproduction.
//!
//! The paper's algorithms do **not** rely on a randomized work-stealing
//! scheduler; their whole contribution is that an explicit, processor-aware
//! partitioning (the *pruned BFS traversal* of the divide-and-conquer tree)
//! achieves perfect strong scaling while staying cache-oblivious.  To run such
//! algorithms we need three things a work-stealing runtime does not give us:
//!
//! 1. **Placement** — run *this* task on *that* processor.
//!    [`pool::WorkerPool`] provides `p` pinned workers and a scoped
//!    `spawn_on(proc, closure)` primitive; tasks on one processor run in
//!    submission order, tasks on different processors run concurrently.
//! 2. **Partitioning** — the generic pruned-BFS engine over any
//!    divide-and-conquer tree ([`bfs::pruned_bfs`], [`bfs::DcNode`]), including
//!    the `γ`-bounded variant used by STRASSEN-CONST-PIECES, plus the
//!    structural invariant checks (geometrically decreasing per-processor
//!    loads, bounded imbalance) the proofs rest on.
//! 3. **Scheduling** — the wave-based [`schedule::Plan`] IR every PACO
//!    front-end compiles its partitioning into: ordered waves of
//!    processor-placed steps, executed with exactly one pool barrier per wave,
//!    with [`schedule::Plan::concat`]/[`schedule::Plan::batch`] to run many
//!    problem instances through one pool pass.
//! 4. **Heterogeneity** — a throughput-proportional variant of the traversal
//!    and a way to *emulate* a machine with faster and slower cores on
//!    homogeneous hardware ([`hetero`]).
//!
//! The PO baselines the paper compares against are *not* implemented here —
//! they use rayon (a randomized work stealer, standing in for Cilk) directly in
//! the algorithm crates, exactly because that is what "processor-oblivious"
//! means.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod hetero;
pub mod pool;
pub mod schedule;

pub use bfs::{
    pruned_bfs, pruned_bfs_with_gamma, pruned_bfs_with_options, Assignment, AssignmentReport,
    BfsOptions, DcNode,
};
pub use hetero::{hetero_pruned_bfs, ThrottleSpec};
pub use pool::{fork2, PoolScope, WorkerPool};
pub use schedule::{Front, Plan, PlanBuilder, Step};
