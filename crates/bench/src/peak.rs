//! Peak-throughput calibration and `Rmax/Rpeak` accounting (Table IV, Fig. 10b).
//!
//! The paper computes `Rpeak` from the CPU's data sheet (cores × clock ×
//! FLOPs/cycle).  Inside a container we neither know nor control those
//! numbers, so the machine's "attainable peak" is *measured*: the single-core
//! throughput of the shared sequential leaf kernel on an in-cache problem,
//! multiplied by the worker count.  `Rmax/Rpeak` then reports the fraction of
//! that attainable peak each parallel strategy reaches — the same quantity the
//! paper's Table IV compares (its absolute level differs, the ordering is what
//! the reproduction checks).

use paco_core::metrics::{min_time_of, mm_flops};
use paco_core::workload::random_matrix_f64;
use paco_matmul::baseline::blocked_sequential_mm;

/// Measured single-core throughput (FLOP/s) of the shared sequential kernel.
pub fn per_core_peak_flops() -> f64 {
    // 256³ fits in L2/L3 and is large enough to amortise timing noise.
    let n = 256;
    let a = random_matrix_f64(n, n, 0xbeef);
    let b = random_matrix_f64(n, n, 0xcafe);
    let secs = min_time_of(3, || std::hint::black_box(blocked_sequential_mm(&a, &b)));
    mm_flops(n, n, n, secs)
}

/// Attainable machine peak: per-core measured peak × worker count.
pub fn machine_peak_flops(p: usize) -> f64 {
    per_core_peak_flops() * p as f64
}

/// `Rmax/Rpeak` as a percentage for a measured multiplication.
pub fn rmax_over_rpeak(n: usize, m: usize, k: usize, secs: f64, machine_peak: f64) -> f64 {
    100.0 * mm_flops(n, m, k, secs) / machine_peak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive_and_stable_in_order_of_magnitude() {
        let a = per_core_peak_flops();
        let b = per_core_peak_flops();
        assert!(a > 1e6, "implausibly low throughput {a}");
        assert!(b > 1e6);
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 5.0, "calibration unstable: {a} vs {b}");
    }

    #[test]
    fn rmax_accounting() {
        // 2·n·m·k flops in 1 second against a 1 GFLOP/s peak.
        let pct = rmax_over_rpeak(1000, 1000, 500, 1.0, 1e9);
        assert!((pct - 100.0).abs() < 1e-9);
    }
}
