//! # paco-bench
//!
//! The benchmark harness that regenerates every table and figure of the PACO
//! paper's evaluation (Sect. IV).  Each artifact has its own binary (see
//! DESIGN.md §3 for the index); this library holds the shared plumbing so the
//! binaries stay small:
//!
//! * [`peak`] — calibration of per-core throughput and the `Rmax/Rpeak`
//!   accounting of Table IV / Fig. 10b.
//! * [`sweep`] — problem-size sweeps comparing two matrix-multiplication
//!   strategies and reporting the paper's speedup percentage per size.
//! * [`report`] — series statistics, histogram buckets and table printing in
//!   the shape the paper's figures use.
//!
//! Scaling note: the paper sweeps `n, m, k` from 8000 to 44000 on 24–72 cores;
//! this container is far smaller, so the default sweeps use proportionally
//! smaller sizes.  Set `PACO_BENCH_SCALE=2` (or higher) to enlarge every sweep
//! when running on a bigger machine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod peak;
pub mod report;
pub mod sweep;

/// The size multiplier taken from `PACO_BENCH_SCALE` (default 1).
pub fn bench_scale() -> usize {
    std::env::var("PACO_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// Number of worker threads to use for the benches: `PACO_BENCH_THREADS` or the
/// available hardware parallelism.
pub fn bench_threads() -> usize {
    std::env::var("PACO_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(paco_core::machine::available_processors)
}

/// Number of repetitions per measurement (the paper takes the min of ≥ 3 runs).
pub fn bench_repeats() -> usize {
    std::env::var("PACO_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn knobs_have_sane_defaults() {
        assert!(super::bench_scale() >= 1);
        assert!(super::bench_threads() >= 1);
        assert!(super::bench_repeats() >= 1);
    }
}
