//! Problem-size sweeps for the matrix-multiplication figures.
//!
//! The paper iterates `n`, `m`, `k` independently over a grid and reports, for
//! every grid point, the speedup of the PACO algorithm over a peer, plotted
//! against the problem size `n·m·k`.  [`mm_grid`] builds a scaled-down version
//! of that grid; [`run_mm_sweep`] measures one comparison over it.

use crate::report::SpeedupSeries;
use paco_core::matrix::Matrix;
use paco_core::metrics::{min_time_of, speedup_percent};
use paco_core::workload::random_matrix_f64;

/// The `(n, m, k)` grid of a sweep.  The paper uses 8000..=44000 step 4000 in
/// every dimension; scaled to this container we default to a handful of sizes
/// whose product spans roughly two orders of magnitude.
pub fn mm_grid(scale: usize) -> Vec<(usize, usize, usize)> {
    let dims: Vec<usize> = [192usize, 320, 448].iter().map(|&d| d * scale).collect();
    let mut grid = Vec::new();
    for &n in &dims {
        for &m in &dims {
            for &k in &dims {
                grid.push((n, m, k));
            }
        }
    }
    grid
}

/// A smaller grid for smoke tests and CI.
pub fn mm_grid_small() -> Vec<(usize, usize, usize)> {
    vec![
        (128, 128, 128),
        (128, 256, 128),
        (256, 128, 192),
        (256, 256, 256),
    ]
}

/// Measure `ours` vs `peer` over the grid; both closures compute `C = A·B` and
/// return it (the result is black-boxed, only time matters).  `repeats` runs
/// are taken per point and the minimum is kept, as in the paper.
///
/// Closures that route through the service API own their inputs, so they pay
/// one `O(n·k + k·m)` operand copy per repetition next to the `O(n·m·k)`
/// multiply — a ≤1–2% systematic cost at the smallest grid points, accepted
/// so the sweeps measure the same front door users call (and the committed
/// baseline is regenerated with the identical code path).
pub fn run_mm_sweep<FO, FP>(
    grid: &[(usize, usize, usize)],
    repeats: usize,
    ours_name: &str,
    peer_name: &str,
    mut ours: FO,
    mut peer: FP,
) -> SpeedupSeries
where
    FO: FnMut(&Matrix<f64>, &Matrix<f64>) -> Matrix<f64>,
    FP: FnMut(&Matrix<f64>, &Matrix<f64>) -> Matrix<f64>,
{
    let mut series = SpeedupSeries::new(ours_name, peer_name);
    for &(n, m, k) in grid {
        let a = random_matrix_f64(n, k, (n * 31 + k) as u64);
        let b = random_matrix_f64(k, m, (k * 17 + m) as u64);
        let t_ours = min_time_of(repeats, || std::hint::black_box(ours(&a, &b)));
        let t_peer = min_time_of(repeats, || std::hint::black_box(peer(&a, &b)));
        let speedup = speedup_percent(t_peer, t_ours);
        series.push(
            format!("{n}x{k} * {k}x{m}"),
            (n as f64) * (m as f64) * (k as f64),
            speedup,
        );
    }
    series
}

/// Per-point timing record of a sweep of a single algorithm (used by the
/// `Rmax/Rpeak` figures).
#[derive(Debug, Clone)]
pub struct TimingPoint {
    /// Output rows.
    pub n: usize,
    /// Output columns.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Best-of-`repeats` running time in seconds.
    pub secs: f64,
}

/// Time a single algorithm over the grid.
pub fn run_mm_timing<F>(
    grid: &[(usize, usize, usize)],
    repeats: usize,
    mut algo: F,
) -> Vec<TimingPoint>
where
    F: FnMut(&Matrix<f64>, &Matrix<f64>) -> Matrix<f64>,
{
    grid.iter()
        .map(|&(n, m, k)| {
            let a = random_matrix_f64(n, k, (n + 7 * k) as u64);
            let b = random_matrix_f64(k, m, (m + 13 * k) as u64);
            let secs = min_time_of(repeats, || std::hint::black_box(algo(&a, &b)));
            TimingPoint { n, m, k, secs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_matmul::baseline::blocked_parallel_mm;

    #[test]
    fn grid_shapes() {
        assert_eq!(mm_grid(1).len(), 27);
        assert_eq!(mm_grid(2)[0].0, 384);
        assert!(!mm_grid_small().is_empty());
    }

    #[test]
    fn sweep_runs_on_a_tiny_grid() {
        let grid = [(64usize, 64usize, 64usize)];
        let series = run_mm_sweep(
            &grid,
            1,
            "baseline",
            "baseline",
            blocked_parallel_mm,
            blocked_parallel_mm,
        );
        assert_eq!(series.rows.len(), 1);
        // Comparing an algorithm against itself: speedup near zero.
        assert!(series.rows[0].2.abs() < 100.0);
        let timings = run_mm_timing(&grid, 1, blocked_parallel_mm);
        assert_eq!(timings.len(), 1);
        assert!(timings[0].secs > 0.0);
    }
}
