//! Table III reproduction: the experimental machine descriptions, plus the
//! machine this run actually executes on (the substitution DESIGN.md records).
//!
//! Run with `cargo run -p paco-bench --release --bin table3`.

use paco_core::machine::{available_processors, MachineConfig};
use paco_core::table::Table;

fn row_for(machine: &MachineConfig, table: &mut Table) {
    table.row(&[
        machine.name.clone(),
        machine.p.to_string(),
        format!("{:.1} GHz", machine.clock_ghz),
        format!("{:.0}", machine.flops_per_cycle),
        format!("{} KB", machine.cache.z_words * 8 / 1024),
        match &machine.l1 {
            Some(l1) => format!("{} KB", l1.z_words * 8 / 1024),
            None => "-".into(),
        },
        match &machine.hetero {
            Some(h) => format!("heterogeneous (Σt = {:.0})", h.total_throughput()),
            None => "homogeneous".into(),
        },
        format!("{:.1} GFLOP/s", machine.rpeak_flops() / 1e9),
    ]);
}

fn main() {
    let mut table = Table::new(
        "Table III — experimental machines (paper presets + this container)",
        &[
            "machine",
            "cores",
            "clock",
            "DP FLOPs/cycle",
            "L2 per core",
            "L1d per core",
            "uniformity",
            "Rpeak",
        ],
    );
    row_for(&MachineConfig::xeon_72core(), &mut table);
    row_for(&MachineConfig::xeon_24core(), &mut table);
    let local = MachineConfig::local(available_processors());
    row_for(&local, &mut table);
    table.print();
    println!(
        "This container exposes {} hardware threads; wall-clock experiments use them, \
         cache-model experiments use the paper presets above.",
        available_processors()
    );
}
