//! Table IV reproduction: mean and median `Rmax/Rpeak` of the PACO MM-1-PIECE
//! algorithm, the vendor-style blocked parallel baseline (MKL stand-in) and the
//! processor-oblivious CO2 algorithm over a problem-size sweep.
//!
//! Paper's numbers (72-core machine): PACO 82.6%/84.0%, MKL 75.1%/78.4%,
//! CO2 37.8%/39.3%.  The reproduction checks the *ordering* and the large gap
//! to CO2; absolute levels depend on the machine.
//!
//! Run with `cargo run -p paco-bench --release --bin table4`.

use paco_bench::peak::{machine_peak_flops, rmax_over_rpeak};
use paco_bench::sweep::{mm_grid, run_mm_timing};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_core::metrics::series_stats;
use paco_core::table::Table;
use paco_matmul::baseline::blocked_parallel_mm;
use paco_matmul::po::co2_mm;
use paco_service::{MatMul, Session};

fn main() {
    let p = bench_threads();
    let grid = mm_grid(bench_scale());
    let repeats = bench_repeats();
    let session = Session::new(p);
    let peak = machine_peak_flops(p);
    println!(
        "workers = {p}, measured attainable peak = {:.2} GFLOP/s\n",
        peak / 1e9
    );

    let mut table = Table::new(
        "Table IV — Rmax/Rpeak of MM algorithms",
        &["algorithm", "mean Rmax/Rpeak", "median Rmax/Rpeak"],
    );

    let mut add_row = |name: &str, timings: &[paco_bench::sweep::TimingPoint]| {
        let ratios: Vec<f64> = timings
            .iter()
            .map(|t| rmax_over_rpeak(t.n, t.m, t.k, t.secs, peak))
            .collect();
        let stats = series_stats(&ratios);
        table.row(&[
            name.to_string(),
            format!("{:.1}%", stats.mean),
            format!("{:.1}%", stats.median),
        ]);
    };

    let paco = run_mm_timing(&grid, repeats, |a, b| {
        session.run(MatMul {
            a: a.clone(),
            b: b.clone(),
        })
    });
    add_row("PACO MM-1-PIECE", &paco);
    let vendor = run_mm_timing(&grid, repeats, blocked_parallel_mm);
    add_row("blocked parallel (MKL stand-in)", &vendor);
    let co2 = run_mm_timing(&grid, repeats, co2_mm);
    add_row("CO2 (PO 2-way, base 64)", &co2);

    table.print();
    println!("Paper (72-core): PACO 82.6%/84.0%, MKL 75.1%/78.4%, CO2 37.8%/39.3%");
}
