//! Fig. 12a reproduction: speedup of PACO LCS over the processor-oblivious
//! 2-way divide-and-conquer LCS (base case 256) and over the processor-aware
//! p-way LCS of Chowdhury & Ramachandran, across a sequence-length sweep.
//!
//! Paper: over PO mean 71.2% / median 54.4%; over PA mean 86.3% / median 88.3%.
//!
//! Run with `cargo run -p paco-bench --release --bin fig12a`.

use paco_bench::report::SpeedupSeries;
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_core::metrics::{min_time_of, speedup_percent};
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_pa, lcs_po};
use paco_runtime::WorkerPool;
use paco_service::{Lcs, Session};

fn main() {
    let p = bench_threads();
    // The PA competitor takes the raw pool; PACO goes through the session.
    let pool = WorkerPool::new(p);
    let session = Session::new(p);
    let repeats = bench_repeats();
    let sizes: Vec<usize> = [2048usize, 4096, 6144, 8192]
        .iter()
        .map(|&n| n * bench_scale())
        .collect();

    let mut vs_po = SpeedupSeries::new("PACO LCS", "PO LCS (base 256)");
    let mut vs_pa = SpeedupSeries::new("PACO LCS", "PA LCS (Chowdhury-Ramachandran)");

    for &n in &sizes {
        let (a, b) = related_sequences(n, 4, 0.2, n as u64);
        let t_paco = min_time_of(repeats, || {
            std::hint::black_box(session.run(Lcs {
                a: a.clone(),
                b: b.clone(),
            }))
        });
        let t_po = min_time_of(repeats, || std::hint::black_box(lcs_po(&a, &b, 256)));
        let t_pa = min_time_of(repeats, || std::hint::black_box(lcs_pa(&a, &b, &pool)));
        vs_po.push(format!("n={n}"), n as f64, speedup_percent(t_po, t_paco));
        vs_pa.push(format!("n={n}"), n as f64, speedup_percent(t_pa, t_paco));
    }

    vs_po.print("Fig. 12a — PACO LCS speedup over the PO counterpart");
    vs_pa.print("Fig. 12a — PACO LCS speedup over the PA counterpart");
    println!("Paper: PACO/PO Mean = 71.2%, Median = 54.4%; PACO/PA Mean = 86.3%, Median = 88.3% (24 cores)");
}
