//! Fig. 10b reproduction: the fraction of attainable peak (`Rmax/Rpeak`) that
//! PACO MM-1-PIECE reaches at every point of the problem-size sweep.
//!
//! Paper: mean 82.6%, median 84.0% on the 24-core machine.
//!
//! Run with `cargo run -p paco-bench --release --bin fig10b`.

use paco_bench::peak::{machine_peak_flops, rmax_over_rpeak};
use paco_bench::sweep::{mm_grid, run_mm_timing};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_core::metrics::series_stats;
use paco_core::table::Table;
use paco_service::{MatMul, Session};

fn main() {
    let p = bench_threads();
    let session = Session::new(p);
    let peak = machine_peak_flops(p);
    let grid = mm_grid(bench_scale());
    println!(
        "workers = {p}, measured attainable peak = {:.2} GFLOP/s\n",
        peak / 1e9
    );

    let timings = run_mm_timing(&grid, bench_repeats(), |a, b| {
        session.run(MatMul {
            a: a.clone(),
            b: b.clone(),
        })
    });
    let mut table = Table::new(
        "Fig. 10b — Rmax/Rpeak of PACO MM-1-PIECE per problem size",
        &["problem", "size (n*m*k)", "time (s)", "Rmax/Rpeak (%)"],
    );
    let mut ratios = Vec::new();
    for t in &timings {
        let ratio = rmax_over_rpeak(t.n, t.m, t.k, t.secs, peak);
        ratios.push(ratio);
        table.row(&[
            format!("{}x{} * {}x{}", t.n, t.k, t.k, t.m),
            format!("{:.3e}", (t.n * t.m * t.k) as f64),
            format!("{:.4}", t.secs),
            format!("{ratio:.1}"),
        ]);
    }
    table.print();
    let stats = series_stats(&ratios);
    println!("Mean = {:.1}%   Median = {:.1}%", stats.mean, stats.median);
    println!("Paper: Mean = 82.6%, Median = 84.0% (24-core machine)");
}
