//! Fig. 9a reproduction: speedup of PACO MM-1-PIECE over the vendor-style
//! parallel baseline (MKL stand-in) across an (n, m, k) sweep, using every
//! available hardware thread — the "72-core machine" configuration of the
//! paper, scaled to this container.
//!
//! Paper: mean 3.4%, median 3.5% (before accounting for the machine's hidden
//! heterogeneity).  The reproduction checks that PACO is at least competitive
//! with the strongest conventional baseline across the sweep.
//!
//! Run with `cargo run -p paco-bench --release --bin fig9a`.

use paco_bench::sweep::{mm_grid, run_mm_sweep};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_matmul::baseline::blocked_parallel_mm;
use paco_service::{MatMul, Session};

fn main() {
    let p = bench_threads();
    let session = Session::new(p);
    let grid = mm_grid(bench_scale());
    println!("workers = {p}, grid points = {}\n", grid.len());
    let series = run_mm_sweep(
        &grid,
        bench_repeats(),
        "PACO MM-1-PIECE",
        "blocked parallel (MKL stand-in)",
        |a, b| {
            session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            })
        },
        blocked_parallel_mm,
    );
    series.print("Fig. 9a — speedup of PACO over the vendor baseline (full machine)");
    println!("Paper: Mean = 3.4%, Median = 3.5% (72 cores, MKL dgemm)");
}
