//! Fig. 10a reproduction: speedup of PACO MM-1-PIECE over the vendor baseline
//! on the smaller ("24-core style") configuration — here, half of the
//! available hardware threads, which mirrors the paper's second machine being
//! a third the size of the first.
//!
//! Paper: mean 11.1%, median 6.4%.
//!
//! Run with `cargo run -p paco-bench --release --bin fig10a`.

use paco_bench::sweep::{mm_grid, run_mm_sweep};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_matmul::baseline::blocked_parallel_mm;
use paco_service::{MatMul, Session};

fn main() {
    let p = (bench_threads() / 2).max(1);
    let session = Session::new(p);
    // The baseline also gets the reduced thread budget so the comparison is fair.
    let rayon_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(p)
        .build()
        .expect("failed to build rayon pool");
    let grid = mm_grid(bench_scale());
    println!("workers = {p}, grid points = {}\n", grid.len());
    let series = run_mm_sweep(
        &grid,
        bench_repeats(),
        "PACO MM-1-PIECE",
        "blocked parallel (MKL stand-in)",
        |a, b| {
            session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            })
        },
        |a, b| rayon_pool.install(|| blocked_parallel_mm(a, b)),
    );
    series.print(
        "Fig. 10a — speedup of PACO over the vendor baseline (half machine, '24-core style')",
    );
    println!("Paper: Mean = 11.1%, Median = 6.4% (24 cores, MKL dgemm)");
}
