//! Extension experiment X3: the open problem on parallelizing Strassen
//! (Ballard et al., Sect. 6.5), answered quantitatively with the
//! distributed-memory cost model of Sect. III-E-1 / III-F.
//!
//! For a range of processor counts — friendly (powers/multiples of 7), awkward
//! (24, 72, the paper's machines) and prime — the binary reports the
//! per-processor computation, bandwidth and latency of PACO
//! STRASSEN-CONST-PIECES next to the CAPS baseline and the lower bounds.
//!
//! Run with `cargo run -p paco-bench --release --bin open_problem`.

use paco_cache_sim::distributed::{
    caps_strassen_distributed, paco_strassen_distributed, strassen_bandwidth_lower_bound,
    strassen_flop_lower_bound,
};
use paco_core::table::Table;
use paco_core::util::is_prime;

fn main() {
    let n = 1 << 14;
    let gamma = 8;
    let mut table = Table::new(
        format!(
            "Parallel Strassen on arbitrary p (n = {n}, γ = {gamma}): PACO vs CAPS vs lower bounds"
        ),
        &[
            "p",
            "prime?",
            "PACO flops/proc ÷ LB",
            "CAPS flops/proc ÷ LB",
            "CAPS procs used",
            "PACO words/proc ÷ LB",
            "PACO messages",
        ],
    );
    for &p in &[7usize, 11, 13, 24, 49, 72, 97, 343] {
        let paco = paco_strassen_distributed(n, p, gamma);
        let caps = caps_strassen_distributed(n, p);
        let flop_lb = strassen_flop_lower_bound(n, p);
        let bw_lb = strassen_bandwidth_lower_bound(n, p);
        table.row(&[
            p.to_string(),
            if is_prime(p as u64) {
                "yes".into()
            } else {
                "-".to_string()
            },
            format!("{:.3}", paco.flops_per_proc / flop_lb),
            format!("{:.3}", caps.flops_per_proc / flop_lb),
            caps.processors_used.to_string(),
            format!("{:.3}", paco.words_per_proc / bw_lb),
            format!("{:.0}", paco.messages),
        ]);
    }
    table.print();
    println!(
        "PACO attains the computation lower bound within 1% and the bandwidth lower bound within a\n\
         constant factor on every p, with O(log p) latency; CAPS pays p/usable(p) extra computation\n\
         whenever p is not of the form m·7^k (e.g. 24 and 72, the paper's machines)."
    );
}
