//! Fig. 12b reproduction: speedup of PACO SORT over the PBBS-style low-depth
//! processor-oblivious sample sort, across an input-size sweep of random
//! doubles.
//!
//! Paper: mean 9.3%, median 9.1%.
//!
//! Run with `cargo run -p paco-bench --release --bin fig12b`.

use paco_bench::report::SpeedupSeries;
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_core::metrics::{min_time_of, speedup_percent};
use paco_core::workload::random_keys;
use paco_service::{Session, Sort};
use paco_sort::po_sample_sort;

fn main() {
    let p = bench_threads();
    let session = Session::new(p);
    let repeats = bench_repeats();
    let sizes: Vec<usize> = [1usize << 20, 1 << 21, 1 << 22]
        .iter()
        .map(|&n| n * bench_scale())
        .collect();

    let mut series = SpeedupSeries::new("PACO SORT", "PO sample sort (PBBS-style)");
    for &n in &sizes {
        let input = random_keys(n, n as u64);
        let t_paco = min_time_of(repeats, || {
            let v = session.run(Sort {
                keys: input.clone(),
            });
            std::hint::black_box(v.len())
        });
        let t_po = min_time_of(repeats, || {
            let mut v = input.clone();
            po_sample_sort(&mut v);
            std::hint::black_box(v.len())
        });
        series.push(format!("n={n}"), n as f64, speedup_percent(t_po, t_paco));
    }
    series.print("Fig. 12b — PACO SORT speedup over the PO sample sort");
    println!("Paper: Mean = 9.3%, Median = 9.1% (24 cores, PBBS)");
}
