//! Fig. 11b reproduction: frequency histogram of the speedup of PACO
//! MM-1-PIECE over the processor-oblivious "CO2" algorithm (2-way
//! divide-and-conquer, base case 64, randomized work stealing).
//!
//! Paper: mean 147.6%, median 108.4% — the PACO partitioning beats the PO
//! recursion by a wide margin.  The reproduction checks the same large gap.
//!
//! Run with `cargo run -p paco-bench --release --bin fig11b`.

use paco_bench::sweep::{mm_grid, run_mm_sweep};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_matmul::po::co2_mm;
use paco_service::{MatMul, Session};

fn main() {
    let p = bench_threads();
    let session = Session::new(p);
    let series = run_mm_sweep(
        &mm_grid(bench_scale()),
        bench_repeats(),
        "PACO MM-1-PIECE",
        "CO2 (PO 2-way, base 64)",
        |a, b| {
            session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            })
        },
        co2_mm,
    );
    series.print_histogram("Fig. 11b — frequency of PACO speedup over CO2", 20.0);
    println!("Paper: Mean = 147.6%, Median = 108.4% (24 cores)");
}
