//! Fig. 11a reproduction: frequency histogram of the speedup of PACO
//! MM-1-PIECE over the vendor baseline (MKL stand-in) across the problem-size
//! sweep, on the "24-core style" half-machine configuration.
//!
//! Paper: mean 11.1%, median 6.4%.
//!
//! Run with `cargo run -p paco-bench --release --bin fig11a`.

use paco_bench::sweep::{mm_grid, run_mm_sweep};
use paco_bench::{bench_repeats, bench_scale, bench_threads};
use paco_matmul::baseline::blocked_parallel_mm;
use paco_service::{MatMul, Session};

fn main() {
    let p = (bench_threads() / 2).max(1);
    let session = Session::new(p);
    let rayon_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(p)
        .build()
        .expect("failed to build rayon pool");
    let series = run_mm_sweep(
        &mm_grid(bench_scale()),
        bench_repeats(),
        "PACO MM-1-PIECE",
        "blocked parallel (MKL stand-in)",
        |a, b| {
            session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            })
        },
        |a, b| rayon_pool.install(|| blocked_parallel_mm(a, b)),
    );
    series.print_histogram(
        "Fig. 11a — frequency of PACO speedup over the vendor baseline",
        5.0,
    );
    println!("Paper: Mean = 11.1%, Median = 6.4% (24 cores)");
}
