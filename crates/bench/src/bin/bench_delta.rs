//! Compare a fresh `PACO_BENCH_JSON` run against the committed
//! `BENCH_baseline.json` and print per-gauge percentage deltas.
//!
//! ```text
//! cargo run -p paco_bench --release --bin bench_delta -- BENCH_baseline.json fresh.json
//! ```
//!
//! Both inputs are the criterion shim's JSON Lines format: `bench` lines
//! carry `mean_ns` (lower is better, reported as a signed % change) and
//! `metric` lines carry `value` (reported as baseline → current).  Gauges
//! present on only one side are listed as added/removed instead of silently
//! dropped.
//!
//! The tool is a **soft gate**: wall-clock timings in a shared 1-core
//! container are noise and never fail the build, but *counter* gauges —
//! structural counts like plan waves, pool barriers, messages, words
//! shipped, dispatch-fallback counts — are deterministic, so a counter that
//! regresses by more than [`COUNTER_GATE`]× against the committed baseline
//! (or a fallback counter that moves off zero) exits non-zero.  Everything
//! else stays advisory.  It also exits non-zero when an input file is
//! missing or unparseable.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed JSON-lines record: a timed bench (`mean_ns`) or a gauge
/// (`value`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Record {
    Bench { mean_ns: f64 },
    Metric { value: f64 },
}

/// A counter gauge may grow to at most this multiple of its baseline before
/// the gate fails the build.  3× leaves room for intentional plan-shape
/// changes (which should update `BENCH_baseline.json` anyway) while catching
/// the pathological ones: a barrier per leaf instead of per wave, a
/// full-matrix exchange instead of a block one.
const COUNTER_GATE: f64 = 3.0;

/// Label substrings that mark a gauge as a *counter*: a deterministic
/// structural count where more is strictly worse.  Ratios, latencies,
/// throughputs and queue depths are load- or clock-dependent and stay
/// advisory; specialization counters (`*-leaf-specialized`, `simd-avx2`)
/// are higher-is-better and are guarded instead by their `*-leaf-generic`
/// twins, which sit at 0 in the baseline and trip the off-zero rule on any
/// fallback.
const COUNTER_MARKERS: &[&str] = &[
    "waves",
    "barrier",
    "steps", // plan-steps and supersteps
    "messages",
    "words",
    "overhead",
    "critical-path",
    "leaf-generic",
    "fallbacks",    // incr/full-fallbacks
    "repropagated", // incr/blocks-repropagated-ratio
];

/// True for gauges the soft gate enforces (see [`COUNTER_MARKERS`]).
fn is_counter(label: &str) -> bool {
    COUNTER_MARKERS.iter().any(|m| label.contains(m))
}

/// Pull `"key":<string>` out of a JSON-lines object without a JSON crate
/// (labels never contain escaped quotes; the shim writes them).
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pull `"key":<number>` out of a JSON-lines object.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse(path: &str) -> Result<BTreeMap<String, Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("bench_delta: cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let (Some(label), Some(mean_ns)) =
            (string_field(line, "bench"), number_field(line, "mean_ns"))
        {
            out.insert(label, Record::Bench { mean_ns });
        } else if let (Some(label), Some(value)) =
            (string_field(line, "metric"), number_field(line, "value"))
        {
            out.insert(label, Record::Metric { value });
        }
    }
    if out.is_empty() {
        return Err(format!("bench_delta: no records parsed from {path}"));
    }
    Ok(out)
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let Some(current_path) = args.next() else {
        eprintln!("usage: bench_delta <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };

    let (baseline, current) = match (parse(&baseline_path), parse(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!("bench_delta: {current_path} vs {baseline_path}");
    println!("{:-<78}", "");
    let mut improved = 0usize;
    let mut regressed = 0usize;
    let mut gated: Vec<String> = Vec::new();
    for (label, cur) in &current {
        match (baseline.get(label), cur) {
            (Some(Record::Bench { mean_ns: base }), Record::Bench { mean_ns }) => {
                let pct = (mean_ns - base) / base * 100.0;
                let arrow = if pct <= -1.0 {
                    improved += 1;
                    "faster"
                } else if pct >= 1.0 {
                    regressed += 1;
                    "SLOWER"
                } else {
                    "~same"
                };
                println!(
                    "{label:<48} {:>10} -> {:>10}  {pct:>+7.1}% {arrow}",
                    human_ns(*base),
                    human_ns(*mean_ns),
                );
            }
            (Some(Record::Metric { value: base }), Record::Metric { value }) => {
                let gate = is_counter(label)
                    && if *base > 0.0 {
                        *value > COUNTER_GATE * base
                    } else {
                        // A fallback counter moving off zero (e.g. a
                        // `*-leaf-generic` dispatch) is an infinite-ratio
                        // regression.
                        *value > 0.0
                    };
                let tag = if gate {
                    gated.push(label.clone());
                    "  COUNTER REGRESSION"
                } else {
                    ""
                };
                println!("{label:<48} {base:>10.3} -> {value:>10.3}{tag}");
            }
            (Some(_), _) => {
                println!("{label:<48} (kind changed between runs)");
            }
            (None, _) => println!("{label:<48} (new gauge, no baseline)"),
        }
    }
    for label in baseline.keys().filter(|l| !current.contains_key(*l)) {
        println!("{label:<48} (missing from current run)");
    }
    println!("{:-<78}", "");
    println!(
        "bench_delta: {improved} faster, {regressed} slower (timings advisory; \
         counter gauges gated at {COUNTER_GATE}x)"
    );
    if gated.is_empty() {
        ExitCode::SUCCESS
    } else {
        for label in &gated {
            eprintln!(
                "bench_delta: counter gauge {label} regressed more than \
                 {COUNTER_GATE}x against {baseline_path}"
            );
        }
        eprintln!(
            "bench_delta: if the new counts are intended, update {baseline_path} \
             from this run's PACO_BENCH_JSON output"
        );
        ExitCode::FAILURE
    }
}
