//! Compare a fresh `PACO_BENCH_JSON` run against the committed
//! `BENCH_baseline.json` and print per-gauge percentage deltas.
//!
//! ```text
//! cargo run -p paco_bench --release --bin bench_delta -- BENCH_baseline.json fresh.json
//! ```
//!
//! Both inputs are the criterion shim's JSON Lines format: `bench` lines
//! carry `mean_ns` (lower is better, reported as a signed % change) and
//! `metric` lines carry `value` (reported as baseline → current).  Gauges
//! present on only one side are listed as added/removed instead of silently
//! dropped.  The tool never fails the build over a regression — timings in a
//! shared 1-core container are advisory — so CI runs it non-blocking; it
//! exits non-zero only when an input file is missing or unparseable.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed JSON-lines record: a timed bench (`mean_ns`) or a gauge
/// (`value`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Record {
    Bench { mean_ns: f64 },
    Metric { value: f64 },
}

/// Pull `"key":<string>` out of a JSON-lines object without a JSON crate
/// (labels never contain escaped quotes; the shim writes them).
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pull `"key":<number>` out of a JSON-lines object.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse(path: &str) -> Result<BTreeMap<String, Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("bench_delta: cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let (Some(label), Some(mean_ns)) =
            (string_field(line, "bench"), number_field(line, "mean_ns"))
        {
            out.insert(label, Record::Bench { mean_ns });
        } else if let (Some(label), Some(value)) =
            (string_field(line, "metric"), number_field(line, "value"))
        {
            out.insert(label, Record::Metric { value });
        }
    }
    if out.is_empty() {
        return Err(format!("bench_delta: no records parsed from {path}"));
    }
    Ok(out)
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let Some(current_path) = args.next() else {
        eprintln!("usage: bench_delta <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };

    let (baseline, current) = match (parse(&baseline_path), parse(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!("bench_delta: {current_path} vs {baseline_path}");
    println!("{:-<78}", "");
    let mut improved = 0usize;
    let mut regressed = 0usize;
    for (label, cur) in &current {
        match (baseline.get(label), cur) {
            (Some(Record::Bench { mean_ns: base }), Record::Bench { mean_ns }) => {
                let pct = (mean_ns - base) / base * 100.0;
                let arrow = if pct <= -1.0 {
                    improved += 1;
                    "faster"
                } else if pct >= 1.0 {
                    regressed += 1;
                    "SLOWER"
                } else {
                    "~same"
                };
                println!(
                    "{label:<48} {:>10} -> {:>10}  {pct:>+7.1}% {arrow}",
                    human_ns(*base),
                    human_ns(*mean_ns),
                );
            }
            (Some(Record::Metric { value: base }), Record::Metric { value }) => {
                println!("{label:<48} {base:>10.3} -> {value:>10.3}");
            }
            (Some(_), _) => {
                println!("{label:<48} (kind changed between runs)");
            }
            (None, _) => println!("{label:<48} (new gauge, no baseline)"),
        }
    }
    for label in baseline.keys().filter(|l| !current.contains_key(*l)) {
        println!("{label:<48} (missing from current run)");
    }
    println!("{:-<78}", "");
    println!("bench_delta: {improved} faster, {regressed} slower (advisory; non-blocking)");
    ExitCode::SUCCESS
}
