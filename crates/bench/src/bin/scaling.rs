//! Extension experiment X1: perfect strong scaling on an *arbitrary* number of
//! processors, including primes — the property that distinguishes PACO from
//! classic PA algorithms (CAPS Strassen needs p = m·7^k, CARMA needs p without
//! large prime factors).
//!
//! The binary reports, for every p up to the available parallelism:
//!   * the work imbalance of the pruned-BFS MM partitioning (Theorem 9),
//!   * the measured wall-clock time of PACO MM-1-PIECE at a fixed size,
//!   * how many processors a CAPS-style Strassen could actually use.
//!
//! Run with `cargo run -p paco-bench --release --bin scaling`.

use paco_bench::{bench_repeats, bench_threads};
use paco_core::metrics::min_time_of;
use paco_core::table::Table;
use paco_core::util::{caps_usable_processors, is_prime};
use paco_core::workload::random_matrix_f64;
use paco_matmul::plan_paco_mm;
use paco_service::{MatMul, Session};

fn main() {
    let max_p = bench_threads();
    let n = 512;
    let a = random_matrix_f64(n, n, 1);
    let b = random_matrix_f64(n, n, 2);
    let repeats = bench_repeats();

    let t1 = {
        let session = Session::new(1);
        min_time_of(repeats, || {
            std::hint::black_box(session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    };

    let mut table = Table::new(
        format!("Strong scaling of PACO MM-1-PIECE at n = m = k = {n} (t1 = {t1:.3}s)"),
        &[
            "p",
            "prime?",
            "plan imbalance",
            "time (s)",
            "speedup",
            "efficiency",
            "CAPS-usable procs",
        ],
    );
    for p in 1..=max_p {
        let plan = plan_paco_mm(n, n, n, p);
        let report = plan.report();
        let session = Session::new(p);
        let t = min_time_of(repeats, || {
            std::hint::black_box(session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            }))
        });
        let speedup = t1 / t;
        table.row(&[
            p.to_string(),
            if is_prime(p as u64) {
                "yes".into()
            } else {
                "-".to_string()
            },
            format!("{:.3}", report.work_imbalance),
            format!("{t:.3}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / p as f64),
            caps_usable_processors(p).to_string(),
        ]);
    }
    table.print();
    println!(
        "PACO uses all p processors for every p (including primes); a CAPS-style Strassen \
         is limited to the last column's processor count."
    );
}
