//! Fig. 9b reproduction: the heterogeneous-machine experiment.
//!
//! The paper's 72-core machine had one socket whose 18 cores ran ~3× faster
//! than the rest; switching to the throughput-aware PACO HETERO-MM raised the
//! mean speedup over MKL from 3.4% to 48.6%.  We emulate the same machine
//! shape (one fast core group, factor 3) with the leaf-throttling substitution
//! documented in DESIGN.md and compare the throughput-aware split against the
//! heterogeneity-unaware even split running on the same emulated machine.
//!
//! Run with `cargo run -p paco-bench --release --bin fig9b`.

use paco_bench::sweep::{mm_grid_small, run_mm_sweep};
use paco_bench::{bench_repeats, bench_threads};
use paco_core::machine::HeteroSpec;
use paco_runtime::hetero::ThrottleSpec;
use paco_service::{HeteroMatMul, Session};

fn main() {
    let p = bench_threads();
    let session = Session::new(p);
    // One quarter of the cores are 3x faster, mirroring the paper's machine.
    let fast = (p / 4).max(1);
    let spec = HeteroSpec::one_fast_socket(p, fast, 3.0);
    let throttle = ThrottleSpec::from_spec(&spec);
    // Unaware even split is gated by a slow core doing (1/p) of the work at unit
    // speed, aware split finishes in total_work / Σt: ideal gain = Σt / p.
    println!(
        "workers = {p} ({fast} fast cores at 3x, {} slow), ideal aware-over-unaware gain ≈ {:.0}%\n",
        p - fast,
        (spec.total_throughput() / p as f64 - 1.0) * 100.0
    );

    let series = run_mm_sweep(
        &mm_grid_small(),
        bench_repeats(),
        "PACO HETERO-MM (throughput-aware)",
        "heterogeneity-unaware even split",
        |a, b| {
            session.run(HeteroMatMul {
                a: a.clone(),
                b: b.clone(),
                throttle: throttle.clone(),
                aware: true,
            })
        },
        |a, b| {
            session.run(HeteroMatMul {
                a: a.clone(),
                b: b.clone(),
                throttle: throttle.clone(),
                aware: false,
            })
        },
    );
    series.print(
        "Fig. 9b — speedup of the throughput-aware split on the emulated heterogeneous machine",
    );
    println!("Paper: Mean = 48.6%, Median = 48.8% (PACO hetero over MKL on the 72-core machine)");
}
