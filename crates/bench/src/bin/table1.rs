//! Table I reproduction: the complexity bounds of PO / PA / sublinear / PACO
//! algorithms evaluated at concrete machine parameters, plus *measured*
//! per-processor cache misses from the ideal distributed cache simulator for
//! LCS (the problem the paper's shared-memory analysis is most detailed about),
//! confirming the predicted ordering PACO ≤ PA < PO.
//!
//! Run with `cargo run -p paco-bench --release --bin table1`.

use paco_cache_sim::analytic::{
    cache_bound, problem_name, table1_rows, time_bound, variant_name, BoundParams, Problem, Variant,
};
use paco_core::machine::MachineConfig;
use paco_core::table::Table;
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_pa_traced, lcs_paco_traced, lcs_sequential_traced};

fn print_analytic(machine: &MachineConfig, n: usize) {
    let bp = BoundParams::square(n, machine.p, machine.cache.z_words, machine.cache.l_words);
    let mut table = Table::new(
        format!(
            "Table I (analytic) — n = {n}, {} (p = {}, Z = {} words, L = {} words)",
            machine.name, machine.p, machine.cache.z_words, machine.cache.l_words
        ),
        &[
            "problem",
            "class",
            "time bound T_p",
            "cache bound Q_p (lines)",
        ],
    );
    for row in table1_rows(bp) {
        table.row(&[
            problem_name(row.problem).to_string(),
            variant_name(row.variant).to_string(),
            format!("{:.3e}", row.time),
            format!("{:.3e}", row.cache),
        ]);
    }
    table.print();
}

fn print_measured_lcs() {
    // Small instance + small simulated caches so the simulation finishes fast
    // but the working set still exceeds a single cache.
    let n = 768;
    let (a, b) = related_sequences(n, 4, 0.2, 42);
    let params = paco_core::machine::CacheParams::new(2048, 8);
    let base = 32;

    let (_, seq) = lcs_sequential_traced(&a, &b, base, params);
    let mut table = Table::new(
        format!(
            "Measured LCS cache misses (ideal distributed cache model, n = {n}, Z = 2048, L = 8)"
        ),
        &[
            "algorithm",
            "p",
            "Q_sum (misses)",
            "Q_max (misses)",
            "Q_sum / Q_1",
            "imbalance",
        ],
    );
    let q1 = seq.q_sum();
    table.row(&[
        "sequential CO (Q1)".into(),
        "1".into(),
        q1.to_string(),
        q1.to_string(),
        "1.00".into(),
        "1.00".into(),
    ]);
    for p in [2usize, 4, 7, 8] {
        let (_, pa) = lcs_pa_traced(&a, &b, p, params);
        let (_, paco) = lcs_paco_traced(&a, &b, p, params, base);
        for (name, sim) in [
            ("PA (Chowdhury-Ramachandran)", &pa),
            ("PACO (this paper)", &paco),
        ] {
            table.row(&[
                name.into(),
                p.to_string(),
                sim.q_sum().to_string(),
                sim.q_max().to_string(),
                format!("{:.2}", sim.q_sum() as f64 / q1 as f64),
                format!("{:.2}", sim.q_imbalance()),
            ]);
        }
    }
    table.print();

    // Predicted ratios from the analytic bounds for the same parameters, so the
    // measured and predicted shapes can be compared side by side.
    let bp = BoundParams::square(n, 4, 2048, 8);
    println!(
        "Analytic at p=4: Q_PACO = {:.3e}, Q_PA = {:.3e}, Q_PO = {:.3e} lines; T_PACO = {:.3e}\n",
        cache_bound(Problem::Lcs, Variant::Paco, bp).unwrap(),
        cache_bound(Problem::Lcs, Variant::Pa, bp).unwrap(),
        cache_bound(Problem::Lcs, Variant::Po, bp).unwrap(),
        time_bound(Problem::Lcs, Variant::Paco, bp).unwrap(),
    );
}

fn main() {
    for machine in [MachineConfig::xeon_24core(), MachineConfig::xeon_72core()] {
        print_analytic(&machine, 1 << 15);
    }
    print_measured_lcs();
}
