//! Reporting helpers shared by the figure/table binaries.

use paco_core::metrics::{histogram, series_stats};
use paco_core::table::{pct, Table};

/// A measured speedup series over problem sizes: the payload behind Figs. 9–12.
#[derive(Debug, Clone, Default)]
pub struct SpeedupSeries {
    /// `(problem_size_label, problem_size_value, speedup_percent)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Name of the "ours" algorithm.
    pub ours: String,
    /// Name of the peer algorithm.
    pub peer: String,
}

impl SpeedupSeries {
    /// Create an empty series for the comparison `ours` vs `peer`.
    pub fn new(ours: impl Into<String>, peer: impl Into<String>) -> Self {
        Self {
            rows: Vec::new(),
            ours: ours.into(),
            peer: peer.into(),
        }
    }

    /// Add one measurement.
    pub fn push(&mut self, label: impl Into<String>, size: f64, speedup_percent: f64) {
        self.rows.push((label.into(), size, speedup_percent));
    }

    /// The speedup values only.
    pub fn values(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.2).collect()
    }

    /// Print the per-size rows plus the mean/median annotation the paper's
    /// figures carry.
    pub fn print(&self, title: &str) {
        let mut table = Table::new(
            title,
            &[
                "problem size",
                "size value",
                &format!("speedup of {} over {} (%)", self.ours, self.peer),
            ],
        );
        for (label, size, speedup) in &self.rows {
            table.row(&[
                label.clone(),
                format!("{size:.3e}"),
                format!("{speedup:.1}"),
            ]);
        }
        table.print();
        if !self.rows.is_empty() {
            let stats = series_stats(&self.values());
            println!(
                "Mean = {}   Median = {}   (min {} / max {})\n",
                pct(stats.mean),
                pct(stats.median),
                pct(stats.min),
                pct(stats.max)
            );
        }
    }

    /// Print the frequency histogram of the speedups (the Fig. 11 rendering).
    pub fn print_histogram(&self, title: &str, bucket_width: f64) {
        let values = self.values();
        if values.is_empty() {
            println!("# {title}\n(no data)");
            return;
        }
        let buckets = histogram(&values, bucket_width);
        let total = values.len() as f64;
        let mut table = Table::new(title, &["speedup bucket (%)", "count", "frequency (%)"]);
        for (lo, count) in buckets {
            table.row(&[
                format!("[{:.0}, {:.0})", lo, lo + bucket_width),
                count.to_string(),
                format!("{:.1}", 100.0 * count as f64 / total),
            ]);
        }
        table.print();
        let stats = series_stats(&values);
        println!(
            "Mean = {}   Median = {}\n",
            pct(stats.mean),
            pct(stats.median)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_collects_and_summarises() {
        let mut s = SpeedupSeries::new("PACO", "MKL");
        s.push("n=1", 1.0, 10.0);
        s.push("n=2", 2.0, 20.0);
        assert_eq!(s.values(), vec![10.0, 20.0]);
        // The print methods must not panic.
        s.print("demo");
        s.print_histogram("demo-hist", 5.0);
        SpeedupSeries::new("a", "b").print_histogram("empty", 5.0);
    }
}
