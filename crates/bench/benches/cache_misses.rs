//! Cache-model experiments (the measured half of Table I).
//!
//! Before timing anything this bench prints the simulated `Q^Σ_p` / `Q^max_p`
//! of the sequential CO, PA and PACO LCS schedules under the ideal distributed
//! cache model — the quantities Table I bounds — and then benchmarks the
//! simulator replay itself (so regressions in the simulator's own performance
//! are caught too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::machine::CacheParams;
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_pa_traced, lcs_paco_traced, lcs_sequential_traced};

fn print_miss_table() {
    let n = 512;
    let (a, b) = related_sequences(n, 4, 0.2, 5);
    let params = CacheParams::new(1024, 8);
    let (_, seq) = lcs_sequential_traced(&a, &b, 32, params);
    println!(
        "\n# LCS cache misses under the ideal distributed cache model (n = {n}, Z = 1024, L = 8)"
    );
    println!(
        "{:<28} {:>4} {:>12} {:>12} {:>10}",
        "algorithm", "p", "Q_sum", "Q_max", "Q_sum/Q1"
    );
    println!(
        "{:<28} {:>4} {:>12} {:>12} {:>10.2}",
        "sequential CO",
        1,
        seq.q_sum(),
        seq.q_max(),
        1.0
    );
    for p in [2usize, 4, 8] {
        let (_, pa) = lcs_pa_traced(&a, &b, p, params);
        let (_, paco) = lcs_paco_traced(&a, &b, p, params, 32);
        println!(
            "{:<28} {:>4} {:>12} {:>12} {:>10.2}",
            "PA p-way",
            p,
            pa.q_sum(),
            pa.q_max(),
            pa.q_sum() as f64 / seq.q_sum() as f64
        );
        println!(
            "{:<28} {:>4} {:>12} {:>12} {:>10.2}",
            "PACO",
            p,
            paco.q_sum(),
            paco.q_max(),
            paco.q_sum() as f64 / seq.q_sum() as f64
        );
    }
    println!();
}

fn bench_simulator(c: &mut Criterion) {
    print_miss_table();

    let n = 256;
    let (a, b) = related_sequences(n, 4, 0.2, 6);
    let params = CacheParams::new(1024, 8);
    let mut group = c.benchmark_group("cache-sim-replay");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("lcs-sequential-traced", n), |bench| {
        bench.iter(|| std::hint::black_box(lcs_sequential_traced(&a, &b, 32, params).1.q_sum()))
    });
    group.bench_function(BenchmarkId::new("lcs-paco-traced-p4", n), |bench| {
        bench.iter(|| std::hint::black_box(lcs_paco_traced(&a, &b, 4, params, 32).1.q_sum()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
