//! Criterion micro-benchmarks of the Strassen family (sequential, PO, PACO,
//! CONST-PIECES) and of the classical kernel at the same size, so the
//! asymptotic advantage and the parallel overheads are both visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::random_matrix_f64;
use paco_matmul::co_mm::co_mm_alloc;
use paco_matmul::strassen::{strassen_po, strassen_sequential};
use paco_service::{Session, Strassen, Tuning};

fn bench_strassen(c: &mut Criterion) {
    let n = 256;
    let a = random_matrix_f64(n, n, 7);
    let b = random_matrix_f64(n, n, 8);
    // Requests own their inputs, so the timed PACO iterations include an
    // operand copy next to the actual work — a small systematic cost accepted
    // so the bench times the same front door users call (the committed
    // baseline is generated from this identical code path; see
    // `paco_bench::sweep::run_mm_sweep` for the same note on the figures).
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("strassen");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("classical-co-mm", n), |bench| {
        bench.iter(|| std::hint::black_box(co_mm_alloc(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-sequential", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_sequential(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-po", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_po(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-paco", n), |bench| {
        bench.iter(|| {
            std::hint::black_box(session.run(Strassen {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    });
    let cp_session = Session::builder()
        .tuning(Tuning {
            strassen_gamma: Some(8),
            ..Tuning::from_env()
        })
        .build();
    group.bench_function(BenchmarkId::new("strassen-const-pieces-g8", n), |bench| {
        bench.iter(|| {
            std::hint::black_box(cp_session.run(Strassen {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strassen);
criterion_main!(benches);
