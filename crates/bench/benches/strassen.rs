//! Criterion micro-benchmarks of the Strassen family (sequential, PO, PACO,
//! CONST-PIECES) and of the classical kernel at the same size, so the
//! asymptotic advantage and the parallel overheads are both visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::machine::available_processors;
use paco_core::workload::random_matrix_f64;
use paco_matmul::co_mm::co_mm_alloc;
use paco_matmul::strassen::{
    strassen_const_pieces, strassen_paco, strassen_po, strassen_sequential,
};
use paco_runtime::WorkerPool;

fn bench_strassen(c: &mut Criterion) {
    let n = 256;
    let a = random_matrix_f64(n, n, 7);
    let b = random_matrix_f64(n, n, 8);
    let pool = WorkerPool::new(available_processors());

    let mut group = c.benchmark_group("strassen");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("classical-co-mm", n), |bench| {
        bench.iter(|| std::hint::black_box(co_mm_alloc(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-sequential", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_sequential(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-po", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_po(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("strassen-paco", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_paco(&a, &b, &pool)))
    });
    group.bench_function(BenchmarkId::new("strassen-const-pieces-g8", n), |bench| {
        bench.iter(|| std::hint::black_box(strassen_const_pieces(&a, &b, &pool, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_strassen);
criterion_main!(benches);
