//! Criterion micro-benchmarks of the 1D (least-weight subsequence) and GAP
//! families: sequential CO, PO (rayon) and PACO variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::{GapCosts, ParagraphWeight};
use paco_dp::gap::{gap_blocked, gap_po};
use paco_dp::one_d::{one_d_po, one_d_sequential_co};
use paco_service::{Gap, OneD, Session, Tuning};

fn bench_1d(c: &mut Criterion) {
    let n = 8192;
    let w = ParagraphWeight { ideal: 40.0 };
    let session = Session::builder()
        .tuning(Tuning {
            one_d_base: 64,
            ..Tuning::from_env()
        })
        .build();

    let mut group = c.benchmark_group("one-d");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-co", n), |bench| {
        bench.iter(|| std::hint::black_box(one_d_sequential_co(n, &w, 0.0, 64)))
    });
    group.bench_function(BenchmarkId::new("po-rayon", n), |bench| {
        bench.iter(|| std::hint::black_box(one_d_po(n, &w, 0.0, 64)))
    });
    group.bench_function(BenchmarkId::new("paco", n), |bench| {
        bench.iter(|| {
            std::hint::black_box(session.run(OneD {
                n,
                weight: w,
                d0: 0.0,
            }))
        })
    });
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let n = 256;
    let costs = GapCosts::default();
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("gap");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-blocked", n), |bench| {
        bench.iter(|| std::hint::black_box(gap_blocked(n, &costs, 16)))
    });
    group.bench_function(BenchmarkId::new("po-rayon", n), |bench| {
        bench.iter(|| std::hint::black_box(gap_po(n, &costs, 16)))
    });
    group.bench_function(BenchmarkId::new("paco", n), |bench| {
        bench.iter(|| std::hint::black_box(session.run(Gap { n, costs })))
    });
    group.finish();
}

criterion_group!(benches, bench_1d, bench_gap);
criterion_main!(benches);
