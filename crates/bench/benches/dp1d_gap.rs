//! Criterion micro-benchmarks of the 1D (least-weight subsequence) and GAP
//! families: sequential CO, PO (rayon) and PACO variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::machine::available_processors;
use paco_core::workload::{GapCosts, ParagraphWeight};
use paco_dp::gap::{gap_blocked, gap_paco, gap_po};
use paco_dp::one_d::{one_d_paco, one_d_po, one_d_sequential_co};
use paco_runtime::WorkerPool;

fn bench_1d(c: &mut Criterion) {
    let n = 8192;
    let w = ParagraphWeight { ideal: 40.0 };
    let pool = WorkerPool::new(available_processors());

    let mut group = c.benchmark_group("one-d");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-co", n), |bench| {
        bench.iter(|| std::hint::black_box(one_d_sequential_co(n, &w, 0.0, 64)))
    });
    group.bench_function(BenchmarkId::new("po-rayon", n), |bench| {
        bench.iter(|| std::hint::black_box(one_d_po(n, &w, 0.0, 64)))
    });
    group.bench_function(BenchmarkId::new("paco", n), |bench| {
        bench.iter(|| std::hint::black_box(one_d_paco(n, &w, 0.0, &pool, 64)))
    });
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let n = 256;
    let costs = GapCosts::default();
    let pool = WorkerPool::new(available_processors());

    let mut group = c.benchmark_group("gap");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-blocked", n), |bench| {
        bench.iter(|| std::hint::black_box(gap_blocked(n, &costs, 16)))
    });
    group.bench_function(BenchmarkId::new("po-rayon", n), |bench| {
        bench.iter(|| std::hint::black_box(gap_po(n, &costs, 16)))
    });
    group.bench_function(BenchmarkId::new("paco", n), |bench| {
        bench.iter(|| std::hint::black_box(gap_paco(n, &costs, &pool)))
    });
    group.finish();
}

criterion_group!(benches, bench_1d, bench_gap);
criterion_main!(benches);
