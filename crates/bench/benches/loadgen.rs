//! Open-loop load generator proving the `Engine`'s admission control.
//!
//! Closed-loop drivers (every bench so far) wait for each completion before
//! submitting again, so they can never overload the engine — the very regime
//! admission control exists for.  This bench generates arrivals on a clock,
//! *independent* of completions, and records what the ingress counters say:
//!
//! * `service/p50-latency`, `service/p99-latency` — submission-to-completion
//!   latency percentiles (seconds, log₂-bucket upper bounds) of the bounded
//!   overload run;
//! * `service/reject-ratio` — fraction of admissions the bounded engine shed
//!   (`try_submit` → `Overloaded`); nonzero under overload **by design**;
//! * `service/queue-depth` — the bounded run's queue-depth watermark; never
//!   exceeds the configured capacity;
//! * `service/unbounded-depth-mid`, `service/unbounded-depth-end` — the same
//!   watermark on a legacy unbounded engine under the same offered load,
//!   sampled mid-run and at the end: it grows without bound instead;
//! * `service/coalesce-static-best`, `service/coalesce-adaptive` — mean
//!   requests per pass under the best hand-tuned static gathering window
//!   vs. the adaptive (arrival-rate-driven) window at the same offered load.
//!
//! Latency percentiles and depth watermarks come from counters, not
//! wall-clock statistics of individual runs, because this container has one
//! core: timings are noisy there, counters are exact.

use criterion::{criterion_group, criterion_main, Criterion};
use paco_bench::bench_scale;
use paco_core::metrics::Stopwatch;
use paco_service::{BatchPolicy, Client, Engine, Session, Sort, Ticket};
use std::time::Duration;

/// The unit of offered load: a small sort, cheap to compile on the generator
/// thread and cheap to serve, so the arrival clock — not the request body —
/// dominates the experiment.
fn request(seed: u64) -> Sort<f64> {
    Sort {
        keys: paco_core::workload::random_keys(64, seed),
    }
}

/// Closed-loop calibration of the service rate μ (requests/second a serial
/// `Session` sustains, compile included): the yardstick the open-loop
/// arrival rates are set against.
fn calibrate_service_rate() -> f64 {
    let session = Session::new(1);
    // Warm up allocators and the pool.
    for seed in 0..16 {
        std::hint::black_box(session.run(request(seed)));
    }
    let sw = Stopwatch::start();
    let mut served = 0u64;
    while sw.elapsed_secs() < 0.25 {
        std::hint::black_box(session.run(request(1000 + served)));
        served += 1;
    }
    served as f64 / sw.elapsed_secs()
}

/// What one open-loop run observed.
struct LoadgenOutcome {
    /// Requests offered to the engine (accepted + shed).
    offered: u64,
    /// `try_submit` admissions refused with `Overloaded`.
    shed: u64,
}

/// Drive `engine` open-loop at `rate` arrivals/second for `duration`:
/// arrivals follow the clock — a completion is never waited on before the
/// next submission.  Pacing sleeps in ~1ms ticks and submits whatever the
/// clock says is due (burst catch-up), because on a single core a spinning
/// generator would starve the executor it is trying to overload.  Accepted
/// tickets are awaited only after the offered-load window closes.
fn drive_open_loop(
    engine: &Engine,
    rate: f64,
    duration: Duration,
    mut mid_run: impl FnMut(&Engine),
) -> LoadgenOutcome {
    let client: Client = engine.client();
    let mut accepted: Vec<Ticket<Vec<f64>>> = Vec::new();
    let mut shed = 0u64;
    let mut offered = 0u64;
    let mut sampled_mid = false;
    let sw = Stopwatch::start();
    loop {
        let elapsed = sw.elapsed_secs();
        if elapsed >= duration.as_secs_f64() {
            break;
        }
        if !sampled_mid && elapsed >= duration.as_secs_f64() / 2.0 {
            sampled_mid = true;
            mid_run(engine);
        }
        // Everything the arrival clock says is due by now.
        let due = (elapsed * rate) as u64;
        while offered < due {
            match client.try_submit(request(offered)) {
                Ok(ticket) => accepted.push(ticket),
                Err(_) => shed += 1,
            }
            offered += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Close the loop only after the offered-load window: drain what was
    // admitted so the latency histogram covers every accepted request.
    for ticket in accepted {
        std::hint::black_box(ticket.wait().expect("admitted request resolves"));
    }
    LoadgenOutcome { offered, shed }
}

/// One coalescing measurement: offered load at `rate` against the given
/// gathering-window policy; returns the mean requests per pass.
fn coalesce_at(rate: f64, duration: Duration, max_wait: Duration, adaptive: bool) -> f64 {
    let engine = Engine::builder()
        .procs(1)
        .policy(BatchPolicy {
            max_batch: 32,
            max_wait,
            adaptive,
            ..BatchPolicy::default()
        })
        .build();
    let outcome = drive_open_loop(&engine, rate, duration, |_| {});
    let stats = engine.shutdown();
    assert_eq!(outcome.shed, 0, "unbounded engines never shed");
    stats.coalesce_ratio()
}

fn bench_loadgen(c: &mut Criterion) {
    let scale = bench_scale() as f64;
    let run_for = Duration::from_secs_f64(0.5 * scale);
    let mu = calibrate_service_rate();
    println!("loadgen: calibrated service rate mu = {mu:.0} req/s");

    // --- Overload against a bounded engine: λ ≈ 3μ. ---------------------
    const CAPACITY: usize = 32;
    let overload_rate = 3.0 * mu;
    let bounded = Engine::builder()
        .procs(1)
        .policy(BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            capacity: Some(CAPACITY),
            ..BatchPolicy::default()
        })
        .build();
    let outcome = drive_open_loop(&bounded, overload_rate, run_for, |_| {});
    let stats = bounded.shutdown();
    assert_eq!(
        stats.overloaded, outcome.shed,
        "engine and generator agree on what was shed"
    );
    assert!(
        stats.max_queue_depth() <= CAPACITY,
        "bounded watermark {} exceeded capacity {CAPACITY}",
        stats.max_queue_depth()
    );
    println!(
        "loadgen: bounded overload offered {} shed {} (ratio {:.3}), depth watermark {}",
        outcome.offered,
        outcome.shed,
        stats.reject_ratio(),
        stats.max_queue_depth()
    );
    let p50 = stats.latency.percentile(0.50).unwrap_or_default();
    let p99 = stats.latency.percentile(0.99).unwrap_or_default();
    criterion::record_metric("service/p50-latency", p50.as_secs_f64());
    criterion::record_metric("service/p99-latency", p99.as_secs_f64());
    criterion::record_metric("service/reject-ratio", stats.reject_ratio());
    criterion::record_metric("service/queue-depth", stats.max_queue_depth() as f64);

    // --- The same offered load against the legacy unbounded default. -----
    let unbounded = Engine::builder()
        .procs(1)
        .policy(BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            capacity: None,
            ..BatchPolicy::default()
        })
        .build();
    let mut depth_mid = 0usize;
    let outcome = drive_open_loop(&unbounded, overload_rate, run_for, |engine| {
        depth_mid = engine.stats().max_queue_depth();
    });
    let stats = unbounded.shutdown();
    assert_eq!(outcome.shed, 0, "the unbounded engine admits everything");
    let depth_end = stats.max_queue_depth();
    println!("loadgen: unbounded depth watermark grew {depth_mid} (mid) -> {depth_end} (end)");
    criterion::record_metric("service/unbounded-depth-mid", depth_mid as f64);
    criterion::record_metric("service/unbounded-depth-end", depth_end as f64);

    // --- Adaptive vs. hand-tuned static gathering windows at λ ≈ 0.8μ. ---
    let moderate_rate = 0.8 * mu;
    let statics = [
        Duration::ZERO,
        Duration::from_micros(200),
        Duration::from_millis(1),
        Duration::from_millis(5),
    ];
    let mut best_static = 1.0f64;
    for max_wait in statics {
        let ratio = coalesce_at(moderate_rate, run_for, max_wait, false);
        println!("loadgen: static max_wait {max_wait:?} coalesce ratio {ratio:.2}");
        best_static = best_static.max(ratio);
    }
    let adaptive = coalesce_at(moderate_rate, run_for, Duration::from_millis(5), true);
    println!(
        "loadgen: adaptive (5ms ceiling) coalesce ratio {adaptive:.2} vs best static {best_static:.2}"
    );
    criterion::record_metric("service/coalesce-static-best", best_static);
    criterion::record_metric("service/coalesce-adaptive", adaptive);

    // Keep a token timing group so the bench shows up in criterion output;
    // the real payload of this bench is the gauges above.
    let mut group = c.benchmark_group("loadgen");
    group.sample_size(10);
    group.bench_function("calibrate-mu", |bench| {
        let session = Session::new(1);
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            std::hint::black_box(session.run(request(seed)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_loadgen);
criterion_main!(benches);
