//! Criterion micro-benchmarks and gauges of the service front door
//! (`paco_service`): what does routing a workload through `Session::run`
//! cost, and what does `run_batch`/`flush` save?
//!
//! Wall-clock alone cannot answer the second question on a 1-core container,
//! so — like the `fw` bench — this bench also records structural gauges from
//! the `paco_core::metrics::sched` counters into the `PACO_BENCH_JSON`
//! report:
//!
//! * `service/batch-waves` — plan waves of one `run_batch` over the standard
//!   mixed bag of requests (the barrier cost of the merged pass);
//! * `service/run-overhead` — the *extra* waves the same requests cost when
//!   run one `Session::run` at a time, i.e. the barriers batching removes;
//! * `service/ingress-throughput` — requests/second through the concurrent
//!   `Engine` front door with 4 producer threads (submission to resolution,
//!   including the coalescing windows);
//! * `service/coalesce-ratio` — mean requests per executor pass of that same
//!   run (1.0 would mean the ingress never merged anything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::{random_digraph, random_keys, random_matrix_wrapping};
use paco_service::{
    Apsp, BatchPolicy, Engine, EngineStats, Lcs, MatMul, Routing, Session, Solve, Sort,
};
use std::time::Duration;

type MixedBag = (
    Vec<Apsp>,
    Vec<Lcs>,
    Vec<MatMul<paco_core::semiring::WrappingRing>>,
    Vec<Sort<f64>>,
);

fn mixed_bag() -> MixedBag {
    let apsps = (0..6)
        .map(|i| Apsp {
            adj: random_digraph(48, 0.2, 50, i),
        })
        .collect();
    let lcss = (0..6)
        .map(|i| Lcs {
            a: paco_core::workload::random_sequence(160, 4, 40 + i),
            b: paco_core::workload::random_sequence(120, 4, 80 + i),
        })
        .collect();
    let mms = (0..4)
        .map(|i| MatMul {
            a: random_matrix_wrapping(48, 32, 200 + i),
            b: random_matrix_wrapping(32, 40, 300 + i),
        })
        .collect();
    let sorts = (0..4)
        .map(|i| Sort {
            keys: random_keys(20_000, 400 + i),
        })
        .collect();
    (apsps, lcss, mms, sorts)
}

/// Submit the whole bag and flush it in one pool pass; returns the waves.
fn flush_bag(session: &Session) -> u64 {
    let (apsps, lcss, mms, sorts) = mixed_bag();
    let tickets_a: Vec<_> = apsps.into_iter().map(|r| session.submit(r)).collect();
    let tickets_l: Vec<_> = lcss.into_iter().map(|r| session.submit(r)).collect();
    let tickets_m: Vec<_> = mms.into_iter().map(|r| session.submit(r)).collect();
    let tickets_s: Vec<_> = sorts.into_iter().map(|r| session.submit(r)).collect();
    session.flush();
    for t in &tickets_a {
        std::hint::black_box(t.take());
    }
    for t in &tickets_l {
        std::hint::black_box(t.take());
    }
    for t in &tickets_m {
        std::hint::black_box(t.take());
    }
    for t in &tickets_s {
        std::hint::black_box(t.take());
    }
    session.last_stats().plan_waves
}

/// Run the whole bag one request at a time; returns the summed waves.
fn run_bag_individually(session: &Session) -> u64 {
    let (apsps, lcss, mms, sorts) = mixed_bag();
    let mut waves = 0;
    fn drain<R: Solve>(session: &Session, reqs: Vec<R>, waves: &mut u64) {
        for r in reqs {
            std::hint::black_box(session.run(r));
            *waves += session.last_stats().plan_waves;
        }
    }
    drain(session, apsps, &mut waves);
    drain(session, lcss, &mut waves);
    drain(session, mms, &mut waves);
    drain(session, sorts, &mut waves);
    waves
}

/// Push the whole mixed bag through an `Engine` from 4 producer threads —
/// open-loop (submit everything, then wait every ticket), so the gauge
/// measures coalesced ingress capacity rather than the gathering window —
/// and return `(seconds, requests, final stats)`.
fn drive_engine() -> (f64, u64, EngineStats) {
    fn producer<R: Solve>(client: &paco_service::Client, reqs: Vec<R>) {
        let tickets: Vec<_> = reqs.into_iter().map(|r| client.submit(r)).collect();
        for t in tickets {
            std::hint::black_box(t.wait().unwrap());
        }
    }
    let engine = Engine::builder()
        .policy(BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(5),
            shards: 1,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let (apsps, lcss, mms, sorts) = mixed_bag();
    let requests = (apsps.len() + lcss.len() + mms.len() + sorts.len()) as u64;
    let sw = paco_core::metrics::Stopwatch::start();
    std::thread::scope(|scope| {
        let client = engine.client();
        scope.spawn({
            let client = client.clone();
            move || producer(&client, apsps)
        });
        scope.spawn({
            let client = client.clone();
            move || producer(&client, lcss)
        });
        scope.spawn({
            let client = client.clone();
            move || producer(&client, mms)
        });
        scope.spawn(move || producer(&client, sorts));
    });
    let secs = sw.elapsed_secs();
    (secs, requests, engine.shutdown())
}

fn bench_service(c: &mut Criterion) {
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let count = {
        let (a, l, m, s) = mixed_bag();
        a.len() + l.len() + m.len() + s.len()
    };
    group.bench_function(BenchmarkId::new("mixed-individual", count), |bench| {
        bench.iter(|| std::hint::black_box(run_bag_individually(&session)))
    });
    group.bench_function(BenchmarkId::new("mixed-flush", count), |bench| {
        bench.iter(|| std::hint::black_box(flush_bag(&session)))
    });
    group.bench_function(
        BenchmarkId::new("mixed-engine-4-producers", count),
        |bench| bench.iter(|| std::hint::black_box(drive_engine())),
    );
    group.finish();

    // Structural gauges: batching pays max-of-waves, per-request runs pay the
    // sum.  The difference is the scheduling overhead the front door removes.
    let batch_waves = flush_bag(&session);
    let individual_waves = run_bag_individually(&session);
    criterion::record_metric("service/batch-waves", batch_waves as f64);
    criterion::record_metric(
        "service/run-overhead",
        individual_waves.saturating_sub(batch_waves) as f64,
    );

    // Concurrent-ingress gauges: end-to-end requests/second through the
    // engine under producer concurrency, and how many requests the executors
    // merged per pass while doing it.
    let (secs, requests, stats) = drive_engine();
    criterion::record_metric("service/ingress-throughput", requests as f64 / secs);
    criterion::record_metric("service/coalesce-ratio", stats.coalesce_ratio());

    // Plan-cache gauges: skeletons are cached per shape, so repeat planning
    // is free.  Run the bag once to populate the cache, then count the
    // *misses* three more full passes cost (the amortised planning overhead
    // — 0 when every shape hits) and the resulting hit ratio.
    let cached = Session::with_available_parallelism();
    std::hint::black_box(run_bag_individually(&cached));
    let warm = cached.cache_stats();
    for _ in 0..3 {
        std::hint::black_box(run_bag_individually(&cached));
    }
    let after = cached.cache_stats();
    criterion::record_metric(
        "service/run-overhead-cached",
        after.misses.saturating_sub(warm.misses) as f64,
    );
    criterion::record_metric("service/plan-cache-hit-ratio", after.hit_ratio());

    // Arena gauge: across those warm passes the session's scratch arena
    // should be serving pooled buffers — the reuse ratio is hits over all
    // checkouts (0 would mean every bind hit the allocator).
    criterion::record_metric(
        "service/arena-reuse-ratio",
        cached.arena_stats().reuse_ratio(),
    );
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
