//! Criterion micro-benchmarks and gauges of the service front door
//! (`paco_service`): what does routing a workload through `Session::run`
//! cost, and what does `run_batch`/`flush` save?
//!
//! Wall-clock alone cannot answer the second question on a 1-core container,
//! so — like the `fw` bench — this bench also records structural gauges from
//! the `paco_core::metrics::sched` counters into the `PACO_BENCH_JSON`
//! report:
//!
//! * `service/batch-waves` — plan waves of one `run_batch` over the standard
//!   mixed bag of requests (the barrier cost of the merged pass);
//! * `service/run-overhead` — the *extra* waves the same requests cost when
//!   run one `Session::run` at a time, i.e. the barriers batching removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::{random_digraph, random_keys, random_matrix_wrapping};
use paco_service::{Apsp, Lcs, MatMul, Session, Solve, Sort};

type MixedBag = (
    Vec<Apsp>,
    Vec<Lcs>,
    Vec<MatMul<paco_core::semiring::WrappingRing>>,
    Vec<Sort<f64>>,
);

fn mixed_bag() -> MixedBag {
    let apsps = (0..6)
        .map(|i| Apsp {
            adj: random_digraph(48, 0.2, 50, i),
        })
        .collect();
    let lcss = (0..6)
        .map(|i| Lcs {
            a: paco_core::workload::random_sequence(160, 4, 40 + i),
            b: paco_core::workload::random_sequence(120, 4, 80 + i),
        })
        .collect();
    let mms = (0..4)
        .map(|i| MatMul {
            a: random_matrix_wrapping(48, 32, 200 + i),
            b: random_matrix_wrapping(32, 40, 300 + i),
        })
        .collect();
    let sorts = (0..4)
        .map(|i| Sort {
            keys: random_keys(20_000, 400 + i),
        })
        .collect();
    (apsps, lcss, mms, sorts)
}

/// Submit the whole bag and flush it in one pool pass; returns the waves.
fn flush_bag(session: &Session) -> u64 {
    let (apsps, lcss, mms, sorts) = mixed_bag();
    let tickets_a: Vec<_> = apsps.into_iter().map(|r| session.submit(r)).collect();
    let tickets_l: Vec<_> = lcss.into_iter().map(|r| session.submit(r)).collect();
    let tickets_m: Vec<_> = mms.into_iter().map(|r| session.submit(r)).collect();
    let tickets_s: Vec<_> = sorts.into_iter().map(|r| session.submit(r)).collect();
    session.flush();
    for t in &tickets_a {
        std::hint::black_box(t.take());
    }
    for t in &tickets_l {
        std::hint::black_box(t.take());
    }
    for t in &tickets_m {
        std::hint::black_box(t.take());
    }
    for t in &tickets_s {
        std::hint::black_box(t.take());
    }
    session.last_stats().plan_waves
}

/// Run the whole bag one request at a time; returns the summed waves.
fn run_bag_individually(session: &Session) -> u64 {
    let (apsps, lcss, mms, sorts) = mixed_bag();
    let mut waves = 0;
    fn drain<R: Solve>(session: &Session, reqs: Vec<R>, waves: &mut u64) {
        for r in reqs {
            std::hint::black_box(session.run(r));
            *waves += session.last_stats().plan_waves;
        }
    }
    drain(session, apsps, &mut waves);
    drain(session, lcss, &mut waves);
    drain(session, mms, &mut waves);
    drain(session, sorts, &mut waves);
    waves
}

fn bench_service(c: &mut Criterion) {
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let count = {
        let (a, l, m, s) = mixed_bag();
        a.len() + l.len() + m.len() + s.len()
    };
    group.bench_function(BenchmarkId::new("mixed-individual", count), |bench| {
        bench.iter(|| std::hint::black_box(run_bag_individually(&session)))
    });
    group.bench_function(BenchmarkId::new("mixed-flush", count), |bench| {
        bench.iter(|| std::hint::black_box(flush_bag(&session)))
    });
    group.finish();

    // Structural gauges: batching pays max-of-waves, per-request runs pay the
    // sum.  The difference is the scheduling overhead the front door removes.
    let batch_waves = flush_bag(&session);
    let individual_waves = run_bag_individually(&session);
    criterion::record_metric("service/batch-waves", batch_waves as f64);
    criterion::record_metric(
        "service/run-overhead",
        individual_waves.saturating_sub(batch_waves) as f64,
    );
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
