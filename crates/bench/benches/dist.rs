//! Gauges (and one micro-bench) of the shared-nothing distributed executor
//! (`paco_dist`): measured words/messages per rank vs. the analytic bounds
//! of `cache-sim::distributed` (Sect. III-E-1, Corollaries 13/14).
//!
//! Wall-clock on a 1-core container says nothing about a message-passing
//! emulation, so the signal here is the exact comm accounting the executor
//! derives from the lowered plan:
//!
//! * `dist/mm-words-per-rank` — mean words sent+received per rank for
//!   MM-1-PIECE at `n = 64`, `p = 8` (bounded by 4× the analytic
//!   `words_per_proc` of `paco_mm_distributed`);
//! * `dist/mm-analytic-ratio` — that measurement divided by the analytic
//!   bound (the documented constant factor, must stay ≤ 4);
//! * `dist/mm-messages`, `dist/mm-supersteps`, `dist/mm-max-rank-words` —
//!   the matching message/superstep/imbalance counters;
//! * `dist/strassen-words-per-rank` — mean words per rank for CONST-PIECES
//!   Strassen at `n = 128`, `p = 8`, `γ = 3` (bounded by 8× the analytic
//!   `n²/p^{2/ω₀}` of `paco_strassen_distributed`);
//! * `dist/strassen-analytic-ratio` — measured / analytic (must stay ≤ 8);
//! * `dist/strassen-critical-path-p4`, `dist/strassen-critical-path-p16` —
//!   messages on the latency critical path; Strassen's plan is a single
//!   superstep, so these are exactly `4·⌈log₂ p⌉` (8 and 16);
//! * `dist/fw-supersteps`, `dist/fw-exchange-words`,
//!   `dist/fw-barrier-messages` — Floyd–Warshall closure at `n = 64`,
//!   `p = 4`: one superstep per plan wave, `2·(p−1)` barrier messages each;
//! * `dist/lcs-gather-words` — LCS ships a single word home (the corner of
//!   the DP table), the smallest possible gather.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_cache_sim::distributed::{paco_mm_distributed, paco_strassen_distributed};
use paco_core::machine::Placement;
use paco_core::workload;
use paco_dist::{lower, run_lowered, DistStats, FwDist, LcsDist, MmDist, StrassenDist};
use paco_graph::plan_fw;
use paco_matmul::{plan_mm_1piece, plan_strassen, MmConfig, StrassenOptions, StrassenRun};
use std::sync::Arc;

fn placement(ranks: usize) -> Placement {
    Placement::new(ranks, Placement::DEFAULT_BLOCK)
}

fn mm_stats(n: usize, p: usize) -> DistStats {
    let a = workload::random_matrix_f64(n, n, 11);
    let b = workload::random_matrix_f64(n, n, 12);
    let cfg = MmConfig::default();
    let compiled = Arc::new(plan_mm_1piece(n, n, n, p, &cfg));
    let pl = placement(p);
    let w = MmDist::new(a, b, Arc::clone(&compiled), cfg);
    let sp = lower(&w, &compiled.plan, &pl);
    let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
    stats
}

fn strassen_stats(n: usize, p: usize, gamma: usize) -> DistStats {
    let a = workload::random_matrix_f64(n, n, 13);
    let b = workload::random_matrix_f64(n, n, 14);
    let opts = StrassenOptions {
        cutoff: 16,
        parallel_base: 32,
        gamma: Some(gamma),
    };
    let compiled = Arc::new(plan_strassen(n, p, opts));
    let pl = placement(p);
    let run = StrassenRun::from_plan(a, b, Arc::clone(&compiled), opts.cutoff);
    let w = StrassenDist::new(run, opts.cutoff);
    let sp = lower(&w, &compiled.plan, &pl);
    let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
    stats
}

fn fw_stats(n: usize, p: usize) -> DistStats {
    let adj = workload::random_digraph(n, 0.25, 50, 15);
    let compiled = Arc::new(plan_fw(n, p, 16));
    let pl = placement(p);
    let w = FwDist::new(adj, Arc::clone(&compiled), 16);
    let sp = lower(&w, &compiled.plan, &pl);
    let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
    stats
}

fn lcs_stats(n: usize, m: usize, p: usize) -> DistStats {
    let a = workload::random_sequence(n, 4, 21);
    let b = workload::random_sequence(m, 4, 22);
    let compiled = Arc::new(paco_dp::lcs::plan_paco_lcs(a.len(), b.len(), p, 32));
    let pl = placement(p);
    let w = LcsDist::new(a, b, Arc::clone(&compiled), 32);
    let sp = lower(&w, &compiled.plan, &pl);
    let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
    stats
}

fn bench_dist(c: &mut Criterion) {
    // One timed point so `cargo bench -- dist` still produces a wall-clock
    // row: a full 4-rank MM superstep run, end to end (threads included).
    let mut group = c.benchmark_group("dist");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("mm-superstep-run", 4), |bench| {
        bench.iter(|| mm_stats(48, 4))
    });
    group.finish();

    // MM-1-PIECE vs. Corollary 13 at the canonical p = 8.
    let mm = mm_stats(64, 8);
    let mm_analytic = paco_mm_distributed(64, 64, 64, 8).words_per_proc;
    criterion::record_metric("dist/mm-words-per-rank", mm.comm.mean_rank_words());
    criterion::record_metric(
        "dist/mm-analytic-ratio",
        mm.comm.mean_rank_words() / mm_analytic,
    );
    criterion::record_metric("dist/mm-messages", mm.comm.data_messages as f64);
    criterion::record_metric("dist/mm-supersteps", mm.comm.supersteps as f64);
    criterion::record_metric("dist/mm-max-rank-words", mm.max_rank_words() as f64);

    // CONST-PIECES Strassen vs. Corollary 14 (`n²/p^{2/ω₀}`) at p = 8.
    let st = strassen_stats(128, 8, 3);
    let st_analytic = paco_strassen_distributed(128, 8, 3).words_per_proc;
    criterion::record_metric("dist/strassen-words-per-rank", st.comm.mean_rank_words());
    criterion::record_metric(
        "dist/strassen-analytic-ratio",
        st.comm.mean_rank_words() / st_analytic,
    );

    // Latency term: Strassen lowers to a single superstep, so the critical
    // path is exactly the scatter fan + barrier tree + gather fan,
    // `4·⌈log₂ p⌉` messages — the O(log p) growth the paper charges.
    let cp4 = strassen_stats(64, 4, 3).comm.critical_path_messages;
    let cp16 = strassen_stats(64, 16, 3).comm.critical_path_messages;
    criterion::record_metric("dist/strassen-critical-path-p4", cp4 as f64);
    criterion::record_metric("dist/strassen-critical-path-p16", cp16 as f64);

    // FW closure: the deepest superstep chain of the four workloads.
    let fw = fw_stats(64, 4);
    criterion::record_metric("dist/fw-supersteps", fw.comm.supersteps as f64);
    criterion::record_metric("dist/fw-exchange-words", fw.comm.exchange_words as f64);
    criterion::record_metric("dist/fw-barrier-messages", fw.comm.barrier_messages as f64);

    // LCS gathers exactly one word (the DP corner).
    let lcs = lcs_stats(96, 80, 4);
    criterion::record_metric("dist/lcs-gather-words", lcs.comm.gather_words as f64);
}

criterion_group!(benches, bench_dist);
criterion_main!(benches);
