//! Gauges (and one micro-bench) of the incremental subsystem (`paco_incr`):
//! how much of the closure a single-edge update actually re-touches, and
//! what the Hirschberg traceback costs over the length-only LCS.
//!
//! Wall-clock on the 1-core container is noise, so the committed signal is
//! exact counters (the `incr/*` family of `paco_core::metrics`):
//!
//! * `incr/blocks-repropagated-ratio` — blocks swept and changed per update
//!   over the full `⌈n/b⌉²` grid a from-scratch re-closure touches, for 32
//!   improving single-edge updates on an `n = 256` `MinPlus` closure
//!   (`b = 32`).  The incremental path only earns its keep while this stays
//!   **well under 0.5**;
//! * `incr/blocks-probed-ratio` — the same numerator before the
//!   changed-block filter (dirty-rectangle probes), an upper bound on the
//!   sweep work;
//! * `incr/frontier-rows-mean`, `incr/frontier-cols-mean` — mean dirty
//!   rows/columns per update (of `n = 256`), the raw frontier sparsity the
//!   block ratio derives from;
//! * `incr/updates-incremental`, `incr/full-fallbacks` — how the 32-update
//!   stream split between the two paths (all-incremental expected: 32 / 0);
//! * `incr/traceback-overhead` — DP cells the full `LcsTrace` recovery
//!   visits over the cells of the length-only reference on the same
//!   `n = 2048` related pair (Hirschberg's bound: ≈ 2);
//! * `incr/traceback-bytes` — bytes of edit script the traceback returns
//!   (the linear-space point of Hirschberg: O(n + m), not O(n·m)).

use criterion::{criterion_group, criterion_main, Criterion};
use paco_core::metrics;
use paco_core::semiring::MinPlus;
use paco_core::tuning::{INCR_BLOCK, INCR_FALLBACK_PERCENT};
use paco_core::workload::{random_digraph, related_sequences};
use paco_dp::lcs::hirschberg;
use paco_service::{ClosedState, EdgeUpdate};

const N: usize = 256;
const FW_BASE: usize = 64;
const UPDATES: usize = 32;

/// Draw the next single-edge update against the *current* closure: a
/// shortcut edge `(u, v)` of weight `d(u, v) − 1`, i.e. the ordinary "a
/// link got slightly faster" event.  Modest improvements are what the
/// dirty-frontier path is for — a drastically cheaper edge reroutes half
/// the graph and correctly takes the full-re-closure fallback instead.
fn next_update(
    state: &ClosedState<MinPlus>,
    next: &mut impl FnMut() -> u64,
) -> EdgeUpdate<MinPlus> {
    let n = state.n();
    loop {
        let u = next() as usize % n;
        let v = (u + 1 + next() as usize % (n - 1)) % n;
        let d = state.closed()[(u, v)].0;
        if d.is_finite() && d > 1.0 {
            return EdgeUpdate::new(u, v, MinPlus(d - 1.0));
        }
    }
}

fn bench_incr(c: &mut Criterion) {
    // One timed point so `cargo bench -- incr` still produces a wall-clock
    // row: close + one single-edge update batch at a small size.
    let mut group = c.benchmark_group("incr");
    group.sample_size(10);
    let small = random_digraph(96, 0.15, 50, 5);
    group.bench_function("close-plus-single-update", |bench| {
        bench.iter(|| {
            let mut state = ClosedState::close(small.clone(), FW_BASE);
            state.apply_batch(
                &[EdgeUpdate::new(3, 77, MinPlus(1.0))],
                INCR_BLOCK,
                INCR_FALLBACK_PERCENT,
                FW_BASE,
            )
        })
    });
    group.finish();

    // The committed gauges: 32 improving single-edge updates on n = 256,
    // applied one at a time (the online arrival pattern), block = 32.
    let adj = random_digraph(N, 0.15, 50, 17);
    let mut state = ClosedState::close(adj, FW_BASE);
    let mut seed = 23u64;
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let before = metrics::incr::snapshot();
    for _ in 0..UPDATES {
        let update = next_update(&state, &mut next);
        state.apply_batch(&[update], INCR_BLOCK, INCR_FALLBACK_PERCENT, FW_BASE);
    }
    let delta = metrics::incr::snapshot().since(&before);
    criterion::record_metric("incr/blocks-repropagated-ratio", delta.repropagated_ratio());
    criterion::record_metric(
        "incr/blocks-probed-ratio",
        delta.blocks_probed as f64 / delta.blocks_total as f64,
    );
    criterion::record_metric(
        "incr/frontier-rows-mean",
        delta.frontier_rows as f64 / delta.updates_incremental.max(1) as f64,
    );
    criterion::record_metric(
        "incr/frontier-cols-mean",
        delta.frontier_cols as f64 / delta.updates_incremental.max(1) as f64,
    );
    criterion::record_metric("incr/updates-incremental", delta.updates_incremental as f64);
    criterion::record_metric("incr/full-fallbacks", delta.full_fallbacks as f64);

    // Traceback cost vs. the length-only DP on one n = 2048 related pair.
    let (a, b) = related_sequences(2048, 4, 0.2, 7);
    let before = metrics::incr::snapshot();
    let script = hirschberg(&a, &b);
    let delta = metrics::incr::snapshot().since(&before);
    let plain_cells = (a.len() * b.len()) as f64;
    criterion::record_metric(
        "incr/traceback-overhead",
        delta.trace_cells as f64 / plain_cells,
    );
    criterion::record_metric("incr/traceback-bytes", delta.trace_bytes as f64);
    assert!(!script.is_empty());
}

criterion_group!(benches, bench_incr);
criterion_main!(benches);
