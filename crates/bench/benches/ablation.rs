//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the PACO LCS partition base size (how far the pruned divide-and-assign
//!   refines towards the corners),
//! * the Strassen CONST-PIECES `γ` (pieces-per-processor vs. balance
//!   trade-off of Corollary 14),
//! * the GAP tile-grid granularity relative to `p`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::{random_matrix_f64, related_sequences, GapCosts};
use paco_service::{Gap, Lcs, Session, Strassen, Tuning};

/// One session per knob setting: the ablation sweeps are exactly what the
/// session builder's tuning override exists for.
fn session_with(tuning: Tuning) -> Session {
    Session::builder().tuning(tuning).build()
}

fn ablation_lcs_base(c: &mut Criterion) {
    let n = 2048;
    let (a, b) = related_sequences(n, 4, 0.2, 31);
    let mut group = c.benchmark_group("ablation-lcs-base");
    group.sample_size(10);
    for base in [16usize, 64, 256] {
        let session = session_with(Tuning {
            lcs_base: base,
            ..Tuning::default()
        });
        group.bench_function(BenchmarkId::new("paco-lcs", base), |bench| {
            bench.iter(|| {
                std::hint::black_box(session.run(Lcs {
                    a: a.clone(),
                    b: b.clone(),
                }))
            })
        });
    }
    group.finish();
}

fn ablation_strassen_gamma(c: &mut Criterion) {
    let n = 256;
    let a = random_matrix_f64(n, n, 41);
    let b = random_matrix_f64(n, n, 42);
    let mut group = c.benchmark_group("ablation-strassen-gamma");
    group.sample_size(10);
    let unlimited = session_with(Tuning::default());
    group.bench_function(BenchmarkId::new("unlimited", 0), |bench| {
        bench.iter(|| {
            std::hint::black_box(unlimited.run(Strassen {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    });
    for gamma in [1usize, 2, 8] {
        let session = session_with(Tuning {
            strassen_gamma: Some(gamma),
            ..Tuning::default()
        });
        group.bench_function(BenchmarkId::new("const-pieces", gamma), |bench| {
            bench.iter(|| {
                std::hint::black_box(session.run(Strassen {
                    a: a.clone(),
                    b: b.clone(),
                }))
            })
        });
    }
    group.finish();
}

fn ablation_gap_blocks(c: &mut Criterion) {
    let n = 192;
    let costs = GapCosts::default();
    let p = paco_core::machine::available_processors();
    let mut group = c.benchmark_group("ablation-gap-blocks");
    group.sample_size(10);
    for blocks in [p.max(2), 2 * p.max(2), 4 * p.max(2)] {
        let session = session_with(Tuning {
            gap_blocks: Some(blocks),
            ..Tuning::default()
        });
        group.bench_function(BenchmarkId::new("paco-gap", blocks), |bench| {
            bench.iter(|| std::hint::black_box(session.run(Gap { n, costs })))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_lcs_base,
    ablation_strassen_gamma,
    ablation_gap_blocks
);
criterion_main!(benches);
