//! Criterion micro-benchmarks of the sorting family (Fig. 12b in miniature):
//! sequential sample sort, PBBS-style PO sample sort, PACO sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::random_keys;
use paco_service::{Session, Sort};
use paco_sort::{po_sample_sort, seq_sample_sort};

fn bench_sort(c: &mut Criterion) {
    let n = 1 << 20;
    let input = random_keys(n, 3);
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-sample-sort", n), |bench| {
        bench.iter(|| {
            let mut v = input.clone();
            seq_sample_sort(&mut v);
            std::hint::black_box(v.len())
        })
    });
    group.bench_function(BenchmarkId::new("po-sample-sort", n), |bench| {
        bench.iter(|| {
            let mut v = input.clone();
            po_sample_sort(&mut v);
            std::hint::black_box(v.len())
        })
    });
    group.bench_function(BenchmarkId::new("paco-sort", n), |bench| {
        bench.iter(|| {
            let v = session.run(Sort {
                keys: input.clone(),
            });
            std::hint::black_box(v.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
