//! Criterion micro-benchmarks of the Floyd–Warshall family: sequential CO,
//! PO and PACO, over both the tropical `(min, +)` semiring (APSP) and the
//! boolean semiring (transitive closure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::machine::available_processors;
use paco_core::workload::{random_adjacency, random_digraph};
use paco_graph::{fw_paco, fw_po, fw_seq, DEFAULT_BASE};
use paco_runtime::WorkerPool;

fn bench_fw(c: &mut Criterion) {
    let n = 256;
    let apsp = random_digraph(n, 0.15, 100, 7);
    let reach = random_adjacency(n, 0.05, 8);
    let pool = WorkerPool::new(available_processors());

    let mut group = c.benchmark_group("floyd-warshall");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("minplus-seq-co", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_seq(&apsp, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("minplus-po", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_po(&apsp, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("minplus-paco", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_paco(&apsp, &pool)))
    });
    group.bench_function(BenchmarkId::new("bool-seq-co", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_seq(&reach, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("bool-paco", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_paco(&reach, &pool)))
    });
    group.finish();
}

criterion_group!(benches, bench_fw);
criterion_main!(benches);
