//! Criterion micro-benchmarks of the Floyd–Warshall family: sequential CO,
//! PO and PACO, over both the tropical `(min, +)` semiring (APSP) and the
//! boolean semiring (transitive closure), plus a batched many-small-instances
//! case and the barrier gauges that make the wave-flattened schedule
//! measurable on a 1-core container (wall-clock cannot show it; the counters
//! can — they land in the `PACO_BENCH_JSON` report next to the timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::{random_adjacency, random_digraph};
use paco_graph::{fw_po, fw_seq, plan_fw, DEFAULT_BASE};
use paco_service::{Apsp, Closure, Session};

fn bench_fw(c: &mut Criterion) {
    let n = 256;
    let apsp = random_digraph(n, 0.15, 100, 7);
    let reach = random_adjacency(n, 0.05, 8);
    // Requests own their inputs, so the timed PACO iterations include an
    // operand copy next to the actual work — a small systematic cost accepted
    // so the bench times the same front door users call (the committed
    // baseline is generated from this identical code path; see
    // `paco_bench::sweep::run_mm_sweep` for the same note on the figures).
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("floyd-warshall");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("minplus-seq-co", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_seq(&apsp, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("minplus-po", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_po(&apsp, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("minplus-paco", n), |bench| {
        bench.iter(|| std::hint::black_box(session.run(Apsp { adj: apsp.clone() })))
    });
    group.bench_function(BenchmarkId::new("bool-seq-co", n), |bench| {
        bench.iter(|| std::hint::black_box(fw_seq(&reach, DEFAULT_BASE)))
    });
    group.bench_function(BenchmarkId::new("bool-paco", n), |bench| {
        bench.iter(|| std::hint::black_box(session.run(Closure { adj: reach.clone() })))
    });

    // Batching: 16 small instances, individually vs through one pool pass.
    let small: Vec<_> = (0..16)
        .map(|i| random_digraph(48, 0.2, 50, 1000 + i))
        .collect();
    group.bench_function(
        BenchmarkId::new("minplus-paco-16x48-individual", 48),
        |bench| {
            bench.iter(|| {
                for adj in &small {
                    std::hint::black_box(session.run(Apsp { adj: adj.clone() }));
                }
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("minplus-paco-16x48-batched", 48),
        |bench| {
            bench.iter(|| {
                std::hint::black_box(
                    session.run_batch(small.iter().map(|adj| Apsp { adj: adj.clone() })),
                )
            })
        },
    );
    group.finish();

    // Structural gauges: the flattened plan's wave count vs the barrier count
    // of the old fork-driven recursion.  Plan structure is machine-independent,
    // so gauge a representative multi-processor plan even on a 1-core box
    // (where the pool — and hence the executed run below — degenerates to
    // p = 1).
    let p_repr = session.p().max(8);
    let fw = plan_fw(n, p_repr, DEFAULT_BASE);
    criterion::record_metric(
        format!("fw/plan-waves-p{p_repr}"),
        fw.plan.barriers() as f64,
    );
    criterion::record_metric(format!("fw/plan-steps-p{p_repr}"), fw.plan.steps() as f64);
    criterion::record_metric(
        format!("fw/recursive-fork-barriers-p{p_repr}"),
        fw.fork_barriers as f64,
    );
    let before = paco_core::metrics::sched::kernel::snapshot();
    std::hint::black_box(session.run(Apsp { adj: apsp.clone() }));
    let stats = session.last_stats();
    criterion::record_metric("fw/executed-pool-barriers", stats.pool_barriers as f64);
    criterion::record_metric("fw/executed-plan-waves", stats.plan_waves as f64);

    // Kernel-dispatch gauges: every relax leaf of that run should have taken
    // the semiring-specialized row fast path (generic = 0).
    let delta = paco_core::metrics::sched::kernel::snapshot().since(&before);
    criterion::record_metric(
        "kernel/fw-leaf-specialized",
        delta.fw_leaf_specialized as f64,
    );
    criterion::record_metric("kernel/fw-leaf-generic", delta.fw_leaf_generic as f64);
}

criterion_group!(benches, bench_fw);
criterion_main!(benches);
