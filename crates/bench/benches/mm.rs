//! Criterion micro-benchmarks of the classic-MM family: the sequential
//! cache-oblivious kernel, the CO2 processor-oblivious recursion, the vendor
//! baseline and PACO MM-1-PIECE, at a size small enough for `cargo bench` to
//! finish quickly.  The macro comparison over full sweeps lives in the
//! `fig9a`/`fig10a`/`table4` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::workload::random_matrix_f64;
use paco_matmul::baseline::blocked_parallel_mm;
use paco_matmul::co_mm::co_mm_alloc;
use paco_matmul::po::co2_mm;
use paco_service::{MatMul, Session};

fn bench_mm(c: &mut Criterion) {
    let n = 256;
    let a = random_matrix_f64(n, n, 1);
    let b = random_matrix_f64(n, n, 2);
    // Requests own their inputs, so the timed PACO iterations include an
    // operand copy next to the actual work — a small systematic cost accepted
    // so the bench times the same front door users call (the committed
    // baseline is generated from this identical code path; see
    // `paco_bench::sweep::run_mm_sweep` for the same note on the figures).
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("classic-mm");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("co-mm-sequential", n), |bench| {
        bench.iter(|| std::hint::black_box(co_mm_alloc(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("co2-po", n), |bench| {
        bench.iter(|| std::hint::black_box(co2_mm(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("blocked-parallel-baseline", n), |bench| {
        bench.iter(|| std::hint::black_box(blocked_parallel_mm(&a, &b)))
    });
    group.bench_function(BenchmarkId::new("paco-mm-1piece", n), |bench| {
        bench.iter(|| {
            std::hint::black_box(session.run(MatMul {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    });
    group.finish();

    // Kernel-dispatch gauges: how many leaf multiplications of one PACO run
    // took the runtime-selected `f64` microkernel vs. the generic loop, and
    // which microkernel this process dispatched to (1 = avx2+fma).  One tick
    // per leaf call, so the counts also show the leaf granularity.
    let before = paco_core::metrics::sched::kernel::snapshot();
    std::hint::black_box(session.run(MatMul {
        a: a.clone(),
        b: b.clone(),
    }));
    let delta = paco_core::metrics::sched::kernel::snapshot().since(&before);
    criterion::record_metric("kernel/mm-leaf-simd", delta.mm_leaf_simd as f64);
    criterion::record_metric("kernel/mm-leaf-generic", delta.mm_leaf_generic as f64);
    criterion::record_metric(
        "kernel/simd-avx2",
        f64::from(u8::from(paco_core::simd::simd_mode() == "avx2+fma")),
    );
}

criterion_group!(benches, bench_mm);
criterion_main!(benches);
