//! Criterion micro-benchmarks of the LCS family (Fig. 12a in miniature):
//! sequential CO, PO (base 256), PA p-way and PACO.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paco_core::machine::available_processors;
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_pa, lcs_po, lcs_sequential_co};
use paco_runtime::WorkerPool;
use paco_service::{Lcs, Session};

fn bench_lcs(c: &mut Criterion) {
    let n = 2048;
    let (a, b) = related_sequences(n, 4, 0.2, 11);
    // The PA variant takes the raw pool; the PACO variant goes through the
    // service session (same worker count).
    let pool = WorkerPool::new(available_processors());
    let session = Session::with_available_parallelism();

    let mut group = c.benchmark_group("lcs");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential-co", n), |bench| {
        bench.iter(|| std::hint::black_box(lcs_sequential_co(&a, &b, 64)))
    });
    group.bench_function(BenchmarkId::new("po-base256", n), |bench| {
        bench.iter(|| std::hint::black_box(lcs_po(&a, &b, 256)))
    });
    group.bench_function(BenchmarkId::new("pa-pway", n), |bench| {
        bench.iter(|| std::hint::black_box(lcs_pa(&a, &b, &pool)))
    });
    group.bench_function(BenchmarkId::new("paco", n), |bench| {
        bench.iter(|| {
            std::hint::black_box(session.run(Lcs {
                a: a.clone(),
                b: b.clone(),
            }))
        })
    });
    group.finish();

    // Kernel-dispatch gauges: every base block of one PACO run should have
    // taken the branch-free sweep (generic = 0).
    let before = paco_core::metrics::sched::kernel::snapshot();
    std::hint::black_box(session.run(Lcs {
        a: a.clone(),
        b: b.clone(),
    }));
    let delta = paco_core::metrics::sched::kernel::snapshot().since(&before);
    criterion::record_metric(
        "kernel/lcs-leaf-specialized",
        delta.lcs_leaf_specialized as f64,
    );
    criterion::record_metric("kernel/lcs-leaf-generic", delta.lcs_leaf_generic as f64);
}

criterion_group!(benches, bench_lcs);
criterion_main!(benches);
