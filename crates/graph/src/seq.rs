//! Sequential cache-oblivious Floyd–Warshall: the A/B/C/D recursion.
//!
//! The Gaussian-elimination-style divide-and-conquer of Chowdhury &
//! Ramachandran (the "GEP" recursion, also known from R-Kleene): split the
//! vertex range `r` into halves `r₁, r₂` and the matrix into the corresponding
//! quadrants `X₁₁, X₁₂, X₂₁, X₂₂`.  Closing first through the via-vertices
//! `r₁` and then through `r₂` yields four function roles, each with its own
//! recursion:
//!
//! ```text
//! A(r)           — self-closure of the diagonal block r × r (via = r)
//! B(v, cols)     — closure of the row-aligned block v × cols (via = v = its rows)
//! C(v, rows)     — closure of the column-aligned block rows × v (via = v = its cols)
//! D(rows, cols, v) — disjoint accumulate rows × cols ⊕= (rows × v) ⊗ (v × cols)
//! ```
//!
//! and the A recursion reads
//!
//! ```text
//! A(r):  A(r₁); B(r₁, r₂); C(r₁, r₂); D(r₂, r₂, r₁);
//!        A(r₂); B(r₂, r₁); C(r₂, r₁); D(r₁, r₁, r₂)
//! ```
//!
//! Every role bottoms out in the single generalized [`relax`] kernel, so the
//! sequential, PO and PACO variants execute identical leaf code — the paper's
//! methodology for fair comparisons.  The recursion incurs the classic
//! `O(n³/(L√Z))` cache misses without knowing `Z` or `L`.
//!
//! Within B, the column halves of a `v × cols` block are independent (each
//! column is relaxed only against the already-closed diagonal block `v × v`
//! and its own column), and dually for the row halves within C and the
//! row/column halves within D; those are exactly the forks the parallel
//! variants exploit.

use crate::kernel::{relax, FwAddr, FwTable};
use paco_cache_sim::{CacheParams, DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::matrix::Matrix;
use paco_core::semiring::IdempotentSemiring;
use std::ops::Range;

/// Split a range at its midpoint.
#[inline]
pub(crate) fn halves(r: &Range<usize>) -> (Range<usize>, Range<usize>) {
    let mid = r.start + r.len() / 2;
    (r.start..mid, mid..r.end)
}

/// The A role: close the diagonal block `r × r` through its own via-vertices.
pub fn a_co<S: IdempotentSemiring, T: Tracker + ?Sized>(
    table: &FwTable<S>,
    r: Range<usize>,
    base: usize,
    tracker: &mut T,
    addr: &FwAddr,
) {
    debug_assert!(base >= 1);
    if r.is_empty() {
        return;
    }
    if r.len() <= base {
        relax(table, r.clone(), r.clone(), r, tracker, addr);
        return;
    }
    let (r1, r2) = halves(&r);
    // Phase 1: via ∈ r1.
    a_co(table, r1.clone(), base, tracker, addr);
    b_co(table, r1.clone(), r2.clone(), base, tracker, addr);
    c_co(table, r1.clone(), r2.clone(), base, tracker, addr);
    d_co(
        table,
        r2.clone(),
        r2.clone(),
        r1.clone(),
        base,
        tracker,
        addr,
    );
    // Phase 2: via ∈ r2.
    a_co(table, r2.clone(), base, tracker, addr);
    b_co(table, r2.clone(), r1.clone(), base, tracker, addr);
    c_co(table, r2.clone(), r1.clone(), base, tracker, addr);
    d_co(table, r1.clone(), r1.clone(), r2, base, tracker, addr);
}

/// The B role: close the row-aligned block `v × cols` (its rows are the
/// via-vertices `v`, whose diagonal block is already closed).
pub fn b_co<S: IdempotentSemiring, T: Tracker + ?Sized>(
    table: &FwTable<S>,
    v: Range<usize>,
    cols: Range<usize>,
    base: usize,
    tracker: &mut T,
    addr: &FwAddr,
) {
    if v.is_empty() || cols.is_empty() {
        return;
    }
    if v.len() <= base && cols.len() <= base {
        relax(table, v.clone(), cols, v, tracker, addr);
        return;
    }
    if v.len() <= base {
        // Only the columns are long: the halves are independent.
        let (c1, c2) = halves(&cols);
        b_co(table, v.clone(), c1, base, tracker, addr);
        b_co(table, v, c2, base, tracker, addr);
        return;
    }
    let (v1, v2) = halves(&v);
    if cols.len() <= base {
        // Only the via range is long: two sequential phases over the full cols.
        b_co(table, v1.clone(), cols.clone(), base, tracker, addr);
        d_co(
            table,
            v2.clone(),
            cols.clone(),
            v1.clone(),
            base,
            tracker,
            addr,
        );
        b_co(table, v2.clone(), cols.clone(), base, tracker, addr);
        d_co(table, v1, cols, v2, base, tracker, addr);
        return;
    }
    let (c1, c2) = halves(&cols);
    // Phase 1: via ∈ v1 — close the top halves, push into the bottom halves.
    b_co(table, v1.clone(), c1.clone(), base, tracker, addr);
    b_co(table, v1.clone(), c2.clone(), base, tracker, addr);
    d_co(
        table,
        v2.clone(),
        c1.clone(),
        v1.clone(),
        base,
        tracker,
        addr,
    );
    d_co(
        table,
        v2.clone(),
        c2.clone(),
        v1.clone(),
        base,
        tracker,
        addr,
    );
    // Phase 2: via ∈ v2.
    b_co(table, v2.clone(), c1.clone(), base, tracker, addr);
    b_co(table, v2.clone(), c2.clone(), base, tracker, addr);
    d_co(table, v1.clone(), c1, v2.clone(), base, tracker, addr);
    d_co(table, v1, c2, v2, base, tracker, addr);
}

/// The C role: close the column-aligned block `rows × v` (its columns are the
/// via-vertices `v`, whose diagonal block is already closed).
pub fn c_co<S: IdempotentSemiring, T: Tracker + ?Sized>(
    table: &FwTable<S>,
    v: Range<usize>,
    rows: Range<usize>,
    base: usize,
    tracker: &mut T,
    addr: &FwAddr,
) {
    if v.is_empty() || rows.is_empty() {
        return;
    }
    if v.len() <= base && rows.len() <= base {
        relax(table, rows, v.clone(), v, tracker, addr);
        return;
    }
    if v.len() <= base {
        // Only the rows are long: the halves are independent.
        let (r1, r2) = halves(&rows);
        c_co(table, v.clone(), r1, base, tracker, addr);
        c_co(table, v, r2, base, tracker, addr);
        return;
    }
    let (v1, v2) = halves(&v);
    if rows.len() <= base {
        c_co(table, v1.clone(), rows.clone(), base, tracker, addr);
        d_co(
            table,
            rows.clone(),
            v2.clone(),
            v1.clone(),
            base,
            tracker,
            addr,
        );
        c_co(table, v2.clone(), rows.clone(), base, tracker, addr);
        d_co(table, rows, v1, v2, base, tracker, addr);
        return;
    }
    let (r1, r2) = halves(&rows);
    // Phase 1: via ∈ v1 — close the left halves, push into the right halves.
    c_co(table, v1.clone(), r1.clone(), base, tracker, addr);
    c_co(table, v1.clone(), r2.clone(), base, tracker, addr);
    d_co(
        table,
        r1.clone(),
        v2.clone(),
        v1.clone(),
        base,
        tracker,
        addr,
    );
    d_co(
        table,
        r2.clone(),
        v2.clone(),
        v1.clone(),
        base,
        tracker,
        addr,
    );
    // Phase 2: via ∈ v2.
    c_co(table, v2.clone(), r1.clone(), base, tracker, addr);
    c_co(table, v2.clone(), r2.clone(), base, tracker, addr);
    d_co(table, r1, v1.clone(), v2.clone(), base, tracker, addr);
    d_co(table, r2, v1, v2, base, tracker, addr);
}

/// The D role: `rows × cols ⊕= (rows × via) ⊗ (via × cols)` where the three
/// blocks are pairwise disjoint — a semiring matmul-accumulate, recursed
/// cache-obliviously on the longest dimension.
pub fn d_co<S: IdempotentSemiring, T: Tracker + ?Sized>(
    table: &FwTable<S>,
    rows: Range<usize>,
    cols: Range<usize>,
    via: Range<usize>,
    base: usize,
    tracker: &mut T,
    addr: &FwAddr,
) {
    if rows.is_empty() || cols.is_empty() || via.is_empty() {
        return;
    }
    if rows.len() <= base && cols.len() <= base && via.len() <= base {
        relax(table, rows, cols, via, tracker, addr);
        return;
    }
    if rows.len() >= cols.len() && rows.len() >= via.len() {
        let (r1, r2) = halves(&rows);
        d_co(table, r1, cols.clone(), via.clone(), base, tracker, addr);
        d_co(table, r2, cols, via, base, tracker, addr);
    } else if cols.len() >= via.len() {
        let (c1, c2) = halves(&cols);
        d_co(table, rows.clone(), c1, via.clone(), base, tracker, addr);
        d_co(table, rows, c2, via, base, tracker, addr);
    } else {
        // A via cut accumulates into the same cells: the halves are ordered.
        let (v1, v2) = halves(&via);
        d_co(table, rows.clone(), cols.clone(), v1, base, tracker, addr);
        d_co(table, rows, cols, v2, base, tracker, addr);
    }
}

/// Sequential cache-oblivious Floyd–Warshall: the full A recursion over a
/// square semiring matrix.  Returns the closed matrix.
pub fn fw_seq<S: IdempotentSemiring>(adj: &Matrix<S>, base: usize) -> Matrix<S> {
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    a_co(&table, 0..table.n(), base, &mut NullTracker, &addr);
    table.to_matrix()
}

/// Sequential cache-oblivious Floyd–Warshall replayed through the ideal cache
/// simulator: returns the closed matrix and the simulator holding `Q₁` (all
/// accesses charged to processor 0).
pub fn fw_seq_traced<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    base: usize,
    params: CacheParams,
) -> (Matrix<S>, DistCacheSim) {
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    let mut tracker = SimTracker::new(1, params);
    a_co(&table, 0..table.n(), base, &mut tracker, &addr);
    (table.to_matrix(), tracker.into_sim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fw_reference;
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn matches_reference_across_sizes_and_bases() {
        for &(n, base) in &[
            (1usize, 1usize),
            (2, 1),
            (7, 2),
            (33, 4),
            (64, 16),
            (100, 8),
            (129, 32),
        ] {
            let adj = random_digraph(n, 0.2, 100, n as u64);
            assert_eq!(
                fw_seq(&adj, base),
                fw_reference(&adj),
                "min-plus n={n} base={base}"
            );
            let bool_adj = random_adjacency(n, 0.1, n as u64 + 1);
            assert_eq!(
                fw_seq(&bool_adj, base),
                fw_reference(&bool_adj),
                "bool n={n} base={base}"
            );
        }
    }

    #[test]
    fn base_larger_than_input_degenerates_to_one_relax() {
        let adj = random_digraph(40, 0.3, 10, 5);
        assert_eq!(fw_seq(&adj, 1024), fw_reference(&adj));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty: Matrix<paco_core::semiring::MinPlus> =
            Matrix::from_fn(0, 0, |_, _| unreachable!());
        assert_eq!(fw_seq(&empty, 4).rows(), 0);
        let single = random_digraph(1, 0.5, 3, 1);
        assert_eq!(fw_seq(&single, 4), fw_reference(&single));
    }

    #[test]
    fn traced_matches_and_counts_misses() {
        let n = 128;
        let adj = random_digraph(n, 0.2, 50, 11);
        let params = CacheParams::new(512, 8);
        let (closed, sim) = fw_seq_traced(&adj, 16, params);
        assert_eq!(closed, fw_reference(&adj));
        let q1 = sim.q_sum();
        assert!(q1 > 0);
        // The matrix is 128² = 16384 words = 2048 lines; every line is touched,
        // so at least the compulsory misses show up ...
        assert!(q1 >= 2048, "q1 = {q1}");
        // ... and far fewer than one miss per access.
        assert!(q1 < sim.accesses().total() / 4, "q1 = {q1}");
    }

    #[test]
    fn co_recursion_beats_the_naive_sweep_on_a_small_cache() {
        // The naive k-outer triple loop streams the whole matrix once per k;
        // the recursion re-uses blocks and must incur noticeably fewer misses.
        let n = 128;
        let adj = random_digraph(n, 0.25, 30, 13);
        let params = CacheParams::new(256, 8); // 32 lines: far smaller than the matrix
        let (_, sim_co) = fw_seq_traced(&adj, 8, params);

        let table = FwTable::from_matrix(&adj);
        let fw_addr = FwAddr::new(n);
        let mut tracker = SimTracker::new(1, params);
        relax(&table, 0..n, 0..n, 0..n, &mut tracker, &fw_addr);
        let sim_naive = tracker.into_sim();
        assert_eq!(table.to_matrix(), fw_reference(&adj));

        assert!(
            (sim_co.q_sum() as f64) < 0.7 * sim_naive.q_sum() as f64,
            "CO {} vs naive {}",
            sim_co.q_sum(),
            sim_naive.q_sum()
        );
    }
}
