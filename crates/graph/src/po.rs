//! Processor-oblivious Floyd–Warshall baseline.
//!
//! The same A/B/C/D recursion as [`crate::seq`], with the independent halves
//! of each phase handed to a randomized work stealer (`rayon::join`, standing
//! in for Cilk).  The algorithm knows neither the processor count nor the
//! cache parameters — exactly the "PO" competitor class of the paper — and
//! bottoms out in the identical sequential [`relax`](crate::kernel::relax)
//! leaves as the other variants.

use crate::kernel::{FwAddr, FwTable};
use crate::seq::{a_co, b_co, c_co, d_co, halves};
use paco_cache_sim::NullTracker;
use paco_core::matrix::Matrix;
use paco_core::semiring::IdempotentSemiring;
use std::ops::Range;

/// Processor-oblivious parallel Floyd–Warshall: rayon-scheduled A/B/C/D
/// recursion with base-case side `base`.  Returns the closed matrix.
pub fn fw_po<S: IdempotentSemiring>(adj: &Matrix<S>, base: usize) -> Matrix<S> {
    assert!(base >= 1);
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    a_po(&table, 0..table.n(), base, &addr);
    table.to_matrix()
}

fn a_po<S: IdempotentSemiring>(table: &FwTable<S>, r: Range<usize>, base: usize, addr: &FwAddr) {
    if r.is_empty() {
        return;
    }
    if r.len() <= base {
        a_co(table, r, base, &mut NullTracker, addr);
        return;
    }
    let (r1, r2) = halves(&r);
    // Phase 1: via ∈ r1.  B and C write disjoint off-diagonal blocks.
    a_po(table, r1.clone(), base, addr);
    rayon::join(
        || b_po(table, r1.clone(), r2.clone(), base, addr),
        || c_po(table, r1.clone(), r2.clone(), base, addr),
    );
    d_po(table, r2.clone(), r2.clone(), r1.clone(), base, addr);
    // Phase 2: via ∈ r2.
    a_po(table, r2.clone(), base, addr);
    rayon::join(
        || b_po(table, r2.clone(), r1.clone(), base, addr),
        || c_po(table, r2.clone(), r1.clone(), base, addr),
    );
    d_po(table, r1.clone(), r1.clone(), r2, base, addr);
}

fn b_po<S: IdempotentSemiring>(
    table: &FwTable<S>,
    v: Range<usize>,
    cols: Range<usize>,
    base: usize,
    addr: &FwAddr,
) {
    if v.is_empty() || cols.is_empty() {
        return;
    }
    if v.len() <= base && cols.len() <= base {
        b_co(table, v, cols, base, &mut NullTracker, addr);
        return;
    }
    if v.len() <= base {
        let (c1, c2) = halves(&cols);
        rayon::join(
            || b_po(table, v.clone(), c1, base, addr),
            || b_po(table, v.clone(), c2, base, addr),
        );
        return;
    }
    let (v1, v2) = halves(&v);
    if cols.len() <= base {
        b_po(table, v1.clone(), cols.clone(), base, addr);
        d_po(table, v2.clone(), cols.clone(), v1.clone(), base, addr);
        b_po(table, v2.clone(), cols.clone(), base, addr);
        d_po(table, v1, cols, v2, base, addr);
        return;
    }
    let (c1, c2) = halves(&cols);
    // Phase 1: via ∈ v1.
    rayon::join(
        || b_po(table, v1.clone(), c1.clone(), base, addr),
        || b_po(table, v1.clone(), c2.clone(), base, addr),
    );
    rayon::join(
        || d_po(table, v2.clone(), c1.clone(), v1.clone(), base, addr),
        || d_po(table, v2.clone(), c2.clone(), v1.clone(), base, addr),
    );
    // Phase 2: via ∈ v2.
    rayon::join(
        || b_po(table, v2.clone(), c1.clone(), base, addr),
        || b_po(table, v2.clone(), c2.clone(), base, addr),
    );
    rayon::join(
        || d_po(table, v1.clone(), c1.clone(), v2.clone(), base, addr),
        || d_po(table, v1.clone(), c2.clone(), v2.clone(), base, addr),
    );
}

fn c_po<S: IdempotentSemiring>(
    table: &FwTable<S>,
    v: Range<usize>,
    rows: Range<usize>,
    base: usize,
    addr: &FwAddr,
) {
    if v.is_empty() || rows.is_empty() {
        return;
    }
    if v.len() <= base && rows.len() <= base {
        c_co(table, v, rows, base, &mut NullTracker, addr);
        return;
    }
    if v.len() <= base {
        let (r1, r2) = halves(&rows);
        rayon::join(
            || c_po(table, v.clone(), r1, base, addr),
            || c_po(table, v.clone(), r2, base, addr),
        );
        return;
    }
    let (v1, v2) = halves(&v);
    if rows.len() <= base {
        c_po(table, v1.clone(), rows.clone(), base, addr);
        d_po(table, rows.clone(), v2.clone(), v1.clone(), base, addr);
        c_po(table, v2.clone(), rows.clone(), base, addr);
        d_po(table, rows, v1, v2, base, addr);
        return;
    }
    let (r1, r2) = halves(&rows);
    // Phase 1: via ∈ v1.
    rayon::join(
        || c_po(table, v1.clone(), r1.clone(), base, addr),
        || c_po(table, v1.clone(), r2.clone(), base, addr),
    );
    rayon::join(
        || d_po(table, r1.clone(), v2.clone(), v1.clone(), base, addr),
        || d_po(table, r2.clone(), v2.clone(), v1.clone(), base, addr),
    );
    // Phase 2: via ∈ v2.
    rayon::join(
        || c_po(table, v2.clone(), r1.clone(), base, addr),
        || c_po(table, v2.clone(), r2.clone(), base, addr),
    );
    rayon::join(
        || d_po(table, r1, v1.clone(), v2.clone(), base, addr),
        || d_po(table, r2, v1.clone(), v2.clone(), base, addr),
    );
}

fn d_po<S: IdempotentSemiring>(
    table: &FwTable<S>,
    rows: Range<usize>,
    cols: Range<usize>,
    via: Range<usize>,
    base: usize,
    addr: &FwAddr,
) {
    if rows.is_empty() || cols.is_empty() || via.is_empty() {
        return;
    }
    if rows.len() <= base && cols.len() <= base && via.len() <= base {
        d_co(table, rows, cols, via, base, &mut NullTracker, addr);
        return;
    }
    if rows.len() >= cols.len() && rows.len() >= via.len() {
        let (r1, r2) = halves(&rows);
        rayon::join(
            || d_po(table, r1, cols.clone(), via.clone(), base, addr),
            || d_po(table, r2, cols.clone(), via.clone(), base, addr),
        );
    } else if cols.len() >= via.len() {
        let (c1, c2) = halves(&cols);
        rayon::join(
            || d_po(table, rows.clone(), c1, via.clone(), base, addr),
            || d_po(table, rows.clone(), c2, via.clone(), base, addr),
        );
    } else {
        // A via cut accumulates into the same cells: the halves stay ordered.
        let (v1, v2) = halves(&via);
        d_po(table, rows.clone(), cols.clone(), v1, base, addr);
        d_po(table, rows, cols, v2, base, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fw_reference;
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn matches_reference_on_random_digraphs() {
        for &(n, base) in &[(1usize, 4usize), (31, 4), (64, 16), (100, 8), (130, 32)] {
            let adj = random_digraph(n, 0.2, 80, 2 * n as u64);
            assert_eq!(fw_po(&adj, base), fw_reference(&adj), "n={n} base={base}");
        }
    }

    #[test]
    fn matches_reference_on_bool_adjacency() {
        for &n in &[17usize, 65, 96] {
            let adj = random_adjacency(n, 0.08, n as u64);
            assert_eq!(fw_po(&adj, 16), fw_reference(&adj), "n={n}");
        }
    }

    #[test]
    fn tiny_base_case_still_correct() {
        let adj = random_digraph(48, 0.3, 12, 77);
        assert_eq!(fw_po(&adj, 1), fw_reference(&adj));
    }
}
