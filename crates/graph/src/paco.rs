//! Processor-aware cache-oblivious (PACO) Floyd–Warshall.
//!
//! The same A/B/C/D recursion as [`crate::seq`], executed with the 1-PIECE
//! processor-list discipline of the paper (Sect. III-C/III-E, Fig. 6/8):
//! every recursive call carries an explicit [`ProcList`]; each fork splits the
//! list `⌊p/2⌋ : ⌈p/2⌉` via [`paco_runtime::fork2`], so the branch whose list
//! the current worker leads runs inline while its sibling is spawned onto the
//! sibling list's leader; when the list is a singleton (or the block reaches
//! the base size), the entire sub-problem runs sequentially on that processor
//! with the cache-oblivious kernels of [`crate::seq`].  The partitioning —
//! not a work stealer — decides placement, and it never consults the cache
//! parameters: processor-aware, cache-oblivious.
//!
//! Two entry points share the recursion through a tiny execution engine:
//!
//! * [`fw_paco`] — native parallel execution on a [`WorkerPool`].
//! * [`fw_paco_traced`] — the *identical* recursion (same splits, same
//!   leaf→processor assignment) replayed sequentially through the ideal
//!   distributed cache simulator, charging every leaf to the private cache of
//!   the processor the partitioning assigned it, with a task-boundary flush
//!   per leaf (the paper's accounting convention).  This is the hook the
//!   benches use to compare `Q^Σ_p` / `Q^max_p` against the sequential `Q₁`.

use crate::kernel::{FwAddr, FwTable, DEFAULT_BASE};
use crate::seq::{a_co, b_co, c_co, d_co, halves};
use paco_cache_sim::{CacheParams, DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::matrix::Matrix;
use paco_core::proc_list::{ProcId, ProcList};
use paco_core::semiring::IdempotentSemiring;
use paco_runtime::{fork2, WorkerPool};
use parking_lot::Mutex;
use std::ops::Range;

/// PACO Floyd–Warshall on `pool.p()` processors with the default base size.
pub fn fw_paco<S: IdempotentSemiring>(adj: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
    fw_paco_with_base(adj, pool, DEFAULT_BASE)
}

/// PACO Floyd–Warshall with an explicit base-case side for the partitioning
/// and the sequential leaf kernels.
pub fn fw_paco_with_base<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    pool: &WorkerPool,
    base: usize,
) -> Matrix<S> {
    assert!(base >= 1);
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    let engine = Engine::Pool(pool);
    a_paco(
        &engine,
        &table,
        &addr,
        None,
        ProcList::all(pool.p()),
        0..table.n(),
        base,
    );
    table.to_matrix()
}

/// PACO Floyd–Warshall replayed through the ideal distributed cache simulator:
/// the same partitioning, the same kernels, but each leaf's accesses are
/// charged to the private cache of its assigned processor, with a
/// task-boundary flush before each leaf.
pub fn fw_paco_traced<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    p: usize,
    base: usize,
    params: CacheParams,
) -> (Matrix<S>, DistCacheSim) {
    assert!(base >= 1);
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    let engine = Engine::Replay(Mutex::new(SimTracker::new(p, params)));
    a_paco(
        &engine,
        &table,
        &addr,
        None,
        ProcList::all(p),
        0..table.n(),
        base,
    );
    let sim = match engine {
        Engine::Replay(tracker) => tracker.into_inner().into_sim(),
        Engine::Pool(_) => unreachable!("engine was constructed as Replay"),
    };
    (table.to_matrix(), sim)
}

/// How the shared recursion executes forks and leaves: natively on a worker
/// pool, or as a sequential replay through the cache simulator.  Keeping one
/// recursion for both guarantees the traced leaf→processor assignment is
/// exactly the one the native run uses.
enum Engine<'a> {
    /// Native execution: forks via [`fork2`], leaves run (or are spawned)
    /// with the zero-cost [`NullTracker`].
    Pool(&'a WorkerPool),
    /// Sequential replay: forks run their branches in order, leaves are
    /// charged to their assigned processor's simulated private cache.
    Replay(Mutex<SimTracker>),
}

/// A pending leaf: which of the four roles to run on which block.
///
/// Carrying the call as data (rather than a boxed `FnOnce(&mut dyn Tracker)`)
/// lets [`Engine::leaf`] invoke the hot kernels with a *concrete* tracker
/// type on both paths — `NullTracker` natively (fully monomorphized, the
/// per-cell tracker hooks compile away exactly as in `fw_seq`/`fw_po`) and
/// `SimTracker` in the replay — instead of paying virtual dispatch per cell.
enum LeafCall {
    /// Diagonal self-closure of `r × r`.
    A { r: Range<usize> },
    /// Row-aligned closure of `v × cols`.
    B { v: Range<usize>, cols: Range<usize> },
    /// Column-aligned closure of `rows × v`.
    C { v: Range<usize>, rows: Range<usize> },
    /// Disjoint accumulate `rows × cols ⊕= (rows × via) ⊗ (via × cols)`.
    D {
        rows: Range<usize>,
        cols: Range<usize>,
        via: Range<usize>,
    },
}

impl LeafCall {
    /// Run the call sequentially with the cache-oblivious kernels of
    /// [`crate::seq`].
    fn run<S: IdempotentSemiring, T: Tracker + ?Sized>(
        self,
        table: &FwTable<S>,
        base: usize,
        tracker: &mut T,
        addr: &FwAddr,
    ) {
        match self {
            LeafCall::A { r } => a_co(table, r, base, tracker, addr),
            LeafCall::B { v, cols } => b_co(table, v, cols, base, tracker, addr),
            LeafCall::C { v, rows } => c_co(table, v, rows, base, tracker, addr),
            LeafCall::D { rows, cols, via } => d_co(table, rows, cols, via, base, tracker, addr),
        }
    }
}

impl Engine<'_> {
    /// Run two independent branches, each on its half of the processor list.
    fn fork<F1, F2>(&self, cur: Option<ProcId>, p1: ProcList, f1: F1, p2: ProcList, f2: F2)
    where
        F1: FnOnce(Option<ProcId>) + Send,
        F2: FnOnce(Option<ProcId>) + Send,
    {
        match self {
            Engine::Pool(pool) => fork2(pool, cur, p1, f1, p2, f2),
            Engine::Replay(_) => {
                f1(Some(p1.first()));
                f2(Some(p2.first()));
            }
        }
    }

    /// Execute a sequential leaf on processor `proc`.
    fn leaf<S: IdempotentSemiring>(
        &self,
        table: &FwTable<S>,
        addr: &FwAddr,
        base: usize,
        cur: Option<ProcId>,
        proc: ProcId,
        call: LeafCall,
    ) {
        match self {
            Engine::Pool(pool) => {
                if cur == Some(proc) {
                    call.run(table, base, &mut NullTracker, addr);
                } else {
                    pool.scope(|s| {
                        s.spawn_on(proc, move || call.run(table, base, &mut NullTracker, addr))
                    });
                }
            }
            Engine::Replay(tracker) => {
                let mut t = tracker.lock();
                t.set_proc(proc);
                t.task_boundary();
                call.run(table, base, &mut *t, addr);
            }
        }
    }
}

/// The A role on a processor list: close the diagonal block `r × r`.
fn a_paco<S: IdempotentSemiring>(
    engine: &Engine<'_>,
    table: &FwTable<S>,
    addr: &FwAddr,
    cur: Option<ProcId>,
    procs: ProcList,
    r: Range<usize>,
    base: usize,
) {
    if r.is_empty() {
        return;
    }
    if procs.len() == 1 || r.len() <= base {
        let target = procs.first();
        engine.leaf(table, addr, base, cur, target, LeafCall::A { r });
        return;
    }
    let (r1, r2) = halves(&r);
    let (p1, p2) = procs.split_even();
    // Phase 1: via ∈ r1.  B and C write disjoint off-diagonal blocks.
    a_paco(engine, table, addr, cur, procs, r1.clone(), base);
    engine.fork(
        cur,
        p1,
        |c| b_paco(engine, table, addr, c, p1, r1.clone(), r2.clone(), base),
        p2,
        |c| c_paco(engine, table, addr, c, p2, r1.clone(), r2.clone(), base),
    );
    d_paco(
        engine,
        table,
        addr,
        cur,
        procs,
        r2.clone(),
        r2.clone(),
        r1.clone(),
        base,
    );
    // Phase 2: via ∈ r2.
    a_paco(engine, table, addr, cur, procs, r2.clone(), base);
    engine.fork(
        cur,
        p1,
        |c| b_paco(engine, table, addr, c, p1, r2.clone(), r1.clone(), base),
        p2,
        |c| c_paco(engine, table, addr, c, p2, r2.clone(), r1.clone(), base),
    );
    d_paco(engine, table, addr, cur, procs, r1.clone(), r1, r2, base);
}

/// The B role on a processor list: close the row-aligned block `v × cols`.
#[allow(clippy::too_many_arguments)] // mirrors the recursion's pseudo-code signature
fn b_paco<S: IdempotentSemiring>(
    engine: &Engine<'_>,
    table: &FwTable<S>,
    addr: &FwAddr,
    cur: Option<ProcId>,
    procs: ProcList,
    v: Range<usize>,
    cols: Range<usize>,
    base: usize,
) {
    if v.is_empty() || cols.is_empty() {
        return;
    }
    if procs.len() == 1 || (v.len() <= base && cols.len() <= base) {
        let target = procs.first();
        engine.leaf(table, addr, base, cur, target, LeafCall::B { v, cols });
        return;
    }
    if v.len() <= base {
        let (c1, c2) = halves(&cols);
        let (p1, p2) = procs.split_even();
        engine.fork(
            cur,
            p1,
            |c| b_paco(engine, table, addr, c, p1, v.clone(), c1, base),
            p2,
            |c| b_paco(engine, table, addr, c, p2, v.clone(), c2, base),
        );
        return;
    }
    let (v1, v2) = halves(&v);
    if cols.len() <= base {
        b_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            v1.clone(),
            cols.clone(),
            base,
        );
        d_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            v2.clone(),
            cols.clone(),
            v1.clone(),
            base,
        );
        b_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            v2.clone(),
            cols.clone(),
            base,
        );
        d_paco(engine, table, addr, cur, procs, v1, cols, v2, base);
        return;
    }
    let (c1, c2) = halves(&cols);
    let (p1, p2) = procs.split_even();
    // Phase 1: via ∈ v1.
    engine.fork(
        cur,
        p1,
        |c| b_paco(engine, table, addr, c, p1, v1.clone(), c1.clone(), base),
        p2,
        |c| b_paco(engine, table, addr, c, p2, v1.clone(), c2.clone(), base),
    );
    engine.fork(
        cur,
        p1,
        |c| {
            d_paco(
                engine,
                table,
                addr,
                c,
                p1,
                v2.clone(),
                c1.clone(),
                v1.clone(),
                base,
            )
        },
        p2,
        |c| {
            d_paco(
                engine,
                table,
                addr,
                c,
                p2,
                v2.clone(),
                c2.clone(),
                v1.clone(),
                base,
            )
        },
    );
    // Phase 2: via ∈ v2.
    engine.fork(
        cur,
        p1,
        |c| b_paco(engine, table, addr, c, p1, v2.clone(), c1.clone(), base),
        p2,
        |c| b_paco(engine, table, addr, c, p2, v2.clone(), c2.clone(), base),
    );
    engine.fork(
        cur,
        p1,
        |c| d_paco(engine, table, addr, c, p1, v1.clone(), c1, v2.clone(), base),
        p2,
        |c| d_paco(engine, table, addr, c, p2, v1.clone(), c2, v2.clone(), base),
    );
}

/// The C role on a processor list: close the column-aligned block `rows × v`.
#[allow(clippy::too_many_arguments)] // mirrors the recursion's pseudo-code signature
fn c_paco<S: IdempotentSemiring>(
    engine: &Engine<'_>,
    table: &FwTable<S>,
    addr: &FwAddr,
    cur: Option<ProcId>,
    procs: ProcList,
    v: Range<usize>,
    rows: Range<usize>,
    base: usize,
) {
    if v.is_empty() || rows.is_empty() {
        return;
    }
    if procs.len() == 1 || (v.len() <= base && rows.len() <= base) {
        let target = procs.first();
        engine.leaf(table, addr, base, cur, target, LeafCall::C { v, rows });
        return;
    }
    if v.len() <= base {
        let (r1, r2) = halves(&rows);
        let (p1, p2) = procs.split_even();
        engine.fork(
            cur,
            p1,
            |c| c_paco(engine, table, addr, c, p1, v.clone(), r1, base),
            p2,
            |c| c_paco(engine, table, addr, c, p2, v.clone(), r2, base),
        );
        return;
    }
    let (v1, v2) = halves(&v);
    if rows.len() <= base {
        c_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            v1.clone(),
            rows.clone(),
            base,
        );
        d_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            rows.clone(),
            v2.clone(),
            v1.clone(),
            base,
        );
        c_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            v2.clone(),
            rows.clone(),
            base,
        );
        d_paco(engine, table, addr, cur, procs, rows, v1, v2, base);
        return;
    }
    let (r1, r2) = halves(&rows);
    let (p1, p2) = procs.split_even();
    // Phase 1: via ∈ v1.
    engine.fork(
        cur,
        p1,
        |c| c_paco(engine, table, addr, c, p1, v1.clone(), r1.clone(), base),
        p2,
        |c| c_paco(engine, table, addr, c, p2, v1.clone(), r2.clone(), base),
    );
    engine.fork(
        cur,
        p1,
        |c| {
            d_paco(
                engine,
                table,
                addr,
                c,
                p1,
                r1.clone(),
                v2.clone(),
                v1.clone(),
                base,
            )
        },
        p2,
        |c| {
            d_paco(
                engine,
                table,
                addr,
                c,
                p2,
                r2.clone(),
                v2.clone(),
                v1.clone(),
                base,
            )
        },
    );
    // Phase 2: via ∈ v2.
    engine.fork(
        cur,
        p1,
        |c| c_paco(engine, table, addr, c, p1, v2.clone(), r1.clone(), base),
        p2,
        |c| c_paco(engine, table, addr, c, p2, v2.clone(), r2.clone(), base),
    );
    engine.fork(
        cur,
        p1,
        |c| d_paco(engine, table, addr, c, p1, r1, v1.clone(), v2.clone(), base),
        p2,
        |c| d_paco(engine, table, addr, c, p2, r2, v1.clone(), v2.clone(), base),
    );
}

/// The D role on a processor list: disjoint accumulate, split on the longest
/// dimension (row/column cuts fork; via cuts stay ordered).
#[allow(clippy::too_many_arguments)] // mirrors the recursion's pseudo-code signature
fn d_paco<S: IdempotentSemiring>(
    engine: &Engine<'_>,
    table: &FwTable<S>,
    addr: &FwAddr,
    cur: Option<ProcId>,
    procs: ProcList,
    rows: Range<usize>,
    cols: Range<usize>,
    via: Range<usize>,
    base: usize,
) {
    if rows.is_empty() || cols.is_empty() || via.is_empty() {
        return;
    }
    if procs.len() == 1 || (rows.len() <= base && cols.len() <= base && via.len() <= base) {
        let target = procs.first();
        engine.leaf(
            table,
            addr,
            base,
            cur,
            target,
            LeafCall::D { rows, cols, via },
        );
        return;
    }
    if rows.len() >= cols.len() && rows.len() >= via.len() {
        let (r1, r2) = halves(&rows);
        let (p1, p2) = procs.split_even();
        engine.fork(
            cur,
            p1,
            |c| {
                d_paco(
                    engine,
                    table,
                    addr,
                    c,
                    p1,
                    r1,
                    cols.clone(),
                    via.clone(),
                    base,
                )
            },
            p2,
            |c| {
                d_paco(
                    engine,
                    table,
                    addr,
                    c,
                    p2,
                    r2,
                    cols.clone(),
                    via.clone(),
                    base,
                )
            },
        );
    } else if cols.len() >= via.len() {
        let (c1, c2) = halves(&cols);
        let (p1, p2) = procs.split_even();
        engine.fork(
            cur,
            p1,
            |c| {
                d_paco(
                    engine,
                    table,
                    addr,
                    c,
                    p1,
                    rows.clone(),
                    c1,
                    via.clone(),
                    base,
                )
            },
            p2,
            |c| {
                d_paco(
                    engine,
                    table,
                    addr,
                    c,
                    p2,
                    rows.clone(),
                    c2,
                    via.clone(),
                    base,
                )
            },
        );
    } else {
        // A via cut accumulates into the same cells: the halves stay ordered.
        let (v1, v2) = halves(&via);
        d_paco(
            engine,
            table,
            addr,
            cur,
            procs,
            rows.clone(),
            cols.clone(),
            v1,
            base,
        );
        d_paco(engine, table, addr, cur, procs, rows, cols, v2, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fw_reference;
    use crate::seq::fw_seq_traced;
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn matches_reference_for_various_p_and_sizes() {
        for &(n, base) in &[(16usize, 4usize), (65, 8), (100, 16), (128, 32)] {
            let adj = random_digraph(n, 0.2, 60, 3 * n as u64);
            let expect = fw_reference(&adj);
            for p in [1usize, 2, 3, 5, 7] {
                let pool = WorkerPool::new(p);
                assert_eq!(
                    fw_paco_with_base(&adj, &pool, base),
                    expect,
                    "n={n} base={base} p={p}"
                );
            }
        }
    }

    #[test]
    fn bool_transitive_closure_matches_reference() {
        let adj = random_adjacency(96, 0.06, 21);
        let expect = fw_reference(&adj);
        for p in [2usize, 4, 6] {
            let pool = WorkerPool::new(p);
            assert_eq!(fw_paco_with_base(&adj, &pool, 16), expect, "p={p}");
        }
    }

    #[test]
    fn empty_graph() {
        let adj: Matrix<paco_core::semiring::MinPlus> =
            Matrix::from_fn(0, 0, |_, _| unreachable!());
        let pool = WorkerPool::new(3);
        assert_eq!(fw_paco(&adj, &pool).rows(), 0);
    }

    #[test]
    fn traced_matches_native_and_balances_misses() {
        let n = 128;
        let adj = random_digraph(n, 0.2, 40, 9);
        let expect = fw_reference(&adj);
        let params = CacheParams::new(1024, 8);
        for p in [2usize, 3, 5] {
            let (closed, sim) = fw_paco_traced(&adj, p, 16, params);
            assert_eq!(closed, expect, "p={p}");
            assert!(sim.q_sum() > 0);
            // Every processor the partitioning used must have been charged.
            assert!(sim.q_max() > 0, "p={p}");
        }
    }

    #[test]
    fn overall_misses_stay_close_to_sequential_optimum() {
        // Q^Σ_p of PACO should stay within a modest factor of Q₁, far from p·Q₁.
        let n = 128;
        let adj = random_digraph(n, 0.25, 30, 17);
        let params = CacheParams::new(2048, 8);
        let (_, seq) = fw_seq_traced(&adj, 16, params);
        let q1 = seq.q_sum() as f64;
        let p = 4;
        let (_, par) = fw_paco_traced(&adj, p, 16, params);
        let qp = par.q_sum() as f64;
        assert!(
            qp >= 0.9 * q1,
            "parallel total misses cannot beat Q1 by much"
        );
        assert!(
            qp < 3.0 * q1,
            "Q^Σ_p = {qp} should stay well below p·Q₁ = {}",
            p as f64 * q1
        );
    }
}
