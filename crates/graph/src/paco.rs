//! Processor-aware cache-oblivious (PACO) Floyd–Warshall.
//!
//! The same A/B/C/D recursion as [`crate::seq`], with the 1-PIECE
//! processor-list discipline of the paper (Sect. III-C/III-E, Fig. 6/8):
//! every recursive call carries an explicit [`ProcList`]; each fork splits the
//! list `⌊p/2⌋ : ⌈p/2⌉`; when the list is a singleton (or the block reaches
//! the base size) the entire sub-problem becomes one sequential leaf on that
//! processor.  The partitioning — not a work stealer — decides placement, and
//! it never consults the cache parameters: processor-aware, cache-oblivious.
//!
//! Since PR 3 the recursion is no longer *executed* directly: [`plan_fw`]
//! replays it **symbolically** and compiles it into a wave-based
//! [`Plan`]`<`[`LeafCall`]`>` (see [`paco_runtime::schedule`]).  The old
//! executor paid one full pool barrier per `fork2` and per off-processor leaf
//! spawn — linear in the recursion depth per phase (the PR 2 ROADMAP item).
//!
//! The wave assignment is **dependency-exact** (PR 7; modelled on
//! `build_waves` in the LCS partitioner): the replay records every leaf in
//! program order together with its read and write footprint on the closure
//! table, coordinate-compresses the rectangle boundaries into a grid, and
//! places each leaf in the earliest wave consistent with the actual data flow
//! — a read must follow the footprint's last writer (same wave only when both
//! run on the same worker, whose in-wave FIFO preserves program order), and a
//! write must follow every read since the previous write.  Earlier revisions
//! instead advanced a per-processor wave clock on every cross-processor
//! hand-off, which serialized independent blocks that merely *met* at a front
//! join.  [`FwPlan::fork_barriers`] still preserves the pre-plan executor's
//! barrier count so the flattening is regression-testable.
//!
//! Entry points:
//!
//! * [`FwRun`] — the prepared instance (plan + shared closure table) the
//!   service layer's `Session` schedules; leaves dispatch through the
//!   data-carrying [`LeafCall`] with a concrete [`NullTracker`], so the hot
//!   kernels stay fully monomorphized.  [`FwRun::from_plan`] binds a fresh
//!   adjacency matrix to an already-compiled (cached) [`FwPlan`] without
//!   replaying the recursion.
//! * [`fw_paco_traced`] — the *identical* plan replayed sequentially through
//!   the ideal distributed cache simulator, charging every leaf to the private
//!   cache of the processor the plan assigned it (task-boundary flush per
//!   leaf, the paper's accounting convention).

use crate::kernel::{FwAddr, FwTable};
use crate::seq::{a_co, b_co, c_co, d_co, halves};
use paco_cache_sim::{CacheParams, DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::matrix::Matrix;
use paco_core::proc_list::{ProcId, ProcList};
use paco_core::semiring::IdempotentSemiring;
use paco_runtime::schedule::{Plan, Step};
use std::ops::Range;
use std::sync::Arc;

/// A prepared PACO Floyd–Warshall instance: the wave-flattened plan plus the
/// shared closure table its leaves relax.  This is the unit the service
/// layer's `Session` schedules — alone, in homogeneous batches, or mixed with
/// other workloads.
pub struct FwRun<S: IdempotentSemiring> {
    table: FwTable<S>,
    addr: FwAddr,
    compiled: Arc<FwPlan>,
    base: usize,
}

impl<S: IdempotentSemiring> FwRun<S> {
    /// Compile an instance for `p` processors with base-case side `base`.
    pub fn prepare(adj: &Matrix<S>, p: usize, base: usize) -> Self {
        let compiled = Arc::new(plan_fw(adj.rows(), p.max(1), base));
        Self::from_plan(adj, compiled, base)
    }

    /// Bind an adjacency matrix to an already-compiled plan.
    ///
    /// The plan must have been produced by [`plan_fw`] for this matrix's side
    /// `n` and the same `base` (the schedule is independent of the entries, so
    /// one compiled plan serves every `n × n` instance — this is what the
    /// service layer's skeleton cache shares across requests).
    pub fn from_plan(adj: &Matrix<S>, compiled: Arc<FwPlan>, base: usize) -> Self {
        assert!(base >= 1);
        let table = FwTable::from_matrix(adj);
        let addr = FwAddr::new(table.n());
        Self {
            table,
            addr,
            compiled,
            base,
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<LeafCall> {
        &self.compiled.plan
    }

    /// Run one leaf with the sequential cache-oblivious kernels.
    pub fn step(&self, _proc: ProcId, call: &LeafCall) {
        call.run(&self.table, self.base, &mut NullTracker, &self.addr);
    }

    /// The closure table being relaxed.  The distributed backend packs and
    /// unpacks ghost blocks straight off this table on each rank.
    pub fn table(&self) -> &FwTable<S> {
        &self.table
    }

    /// Read the closed matrix off the completed table.
    pub fn finish(self) -> Matrix<S> {
        self.table.to_matrix()
    }
}

/// PACO Floyd–Warshall replayed through the ideal distributed cache simulator:
/// the same plan, the same kernels, but each leaf's accesses are charged to
/// the private cache of its assigned processor, with a task-boundary flush
/// before each leaf.
pub fn fw_paco_traced<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    p: usize,
    base: usize,
    params: CacheParams,
) -> (Matrix<S>, DistCacheSim) {
    assert!(base >= 1);
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    let plan = plan_fw(table.n(), p, base);
    let mut tracker = SimTracker::new(p, params);
    plan.plan.for_each(|_, proc, call| {
        tracker.set_proc(proc);
        tracker.task_boundary();
        call.run(&table, base, &mut tracker, &addr);
    });
    (table.to_matrix(), tracker.into_sim())
}

/// A pending leaf: which of the four A/B/C/D roles to run on which block.
///
/// Carrying the call as data (rather than a boxed `FnOnce(&mut dyn Tracker)`)
/// lets every consumer invoke the hot kernels with a *concrete* tracker type —
/// `NullTracker` natively (fully monomorphized, the per-cell tracker hooks
/// compile away exactly as in `fw_seq`/`fw_po`) and `SimTracker` in the traced
/// replay — instead of paying virtual dispatch per cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafCall {
    /// Diagonal self-closure of `r × r`.
    A {
        /// The diagonal vertex range.
        r: Range<usize>,
    },
    /// Row-aligned closure of `v × cols`.
    B {
        /// The via-vertex range (the block's rows).
        v: Range<usize>,
        /// The block's columns.
        cols: Range<usize>,
    },
    /// Column-aligned closure of `rows × v`.
    C {
        /// The via-vertex range (the block's columns).
        v: Range<usize>,
        /// The block's rows.
        rows: Range<usize>,
    },
    /// Disjoint accumulate `rows × cols ⊕= (rows × via) ⊗ (via × cols)`.
    D {
        /// The block's rows.
        rows: Range<usize>,
        /// The block's columns.
        cols: Range<usize>,
        /// The via-vertex range.
        via: Range<usize>,
    },
}

impl LeafCall {
    /// Run the call sequentially with the cache-oblivious kernels of
    /// [`crate::seq`].
    pub fn run<S: IdempotentSemiring, T: Tracker + ?Sized>(
        &self,
        table: &FwTable<S>,
        base: usize,
        tracker: &mut T,
        addr: &FwAddr,
    ) {
        match self {
            LeafCall::A { r } => a_co(table, r.clone(), base, tracker, addr),
            LeafCall::B { v, cols } => b_co(table, v.clone(), cols.clone(), base, tracker, addr),
            LeafCall::C { v, rows } => c_co(table, v.clone(), rows.clone(), base, tracker, addr),
            LeafCall::D { rows, cols, via } => d_co(
                table,
                rows.clone(),
                cols.clone(),
                via.clone(),
                base,
                tracker,
                addr,
            ),
        }
    }

    /// The rectangles of the closure table this leaf reads (a superset of the
    /// cells it writes — every role is an in-place `⊕=` update).
    ///
    /// Public because the distributed backend derives each superstep's
    /// exchange set from exactly these footprints.
    pub fn read_rects(&self) -> Vec<(Range<usize>, Range<usize>)> {
        match self {
            LeafCall::A { r } => vec![(r.clone(), r.clone())],
            LeafCall::B { v, cols } => vec![(v.clone(), v.clone()), (v.clone(), cols.clone())],
            LeafCall::C { v, rows } => vec![(rows.clone(), v.clone()), (v.clone(), v.clone())],
            LeafCall::D { rows, cols, via } => vec![
                (rows.clone(), via.clone()),
                (via.clone(), cols.clone()),
                (rows.clone(), cols.clone()),
            ],
        }
    }

    /// The single rectangle this leaf writes (the distributed backend's
    /// writeback set).
    pub fn write_rect(&self) -> (Range<usize>, Range<usize>) {
        match self {
            LeafCall::A { r } => (r.clone(), r.clone()),
            LeafCall::B { v, cols } => (v.clone(), cols.clone()),
            LeafCall::C { v, rows } => (rows.clone(), v.clone()),
            LeafCall::D { rows, cols, via: _ } => (rows.clone(), cols.clone()),
        }
    }
}

/// The compiled Floyd–Warshall schedule plus the barrier count of the
/// pre-plan recursive executor, for regression tests and reports.
#[derive(Debug, Clone)]
pub struct FwPlan {
    /// The wave-flattened schedule.
    pub plan: Plan<LeafCall>,
    /// Barriers the old `fork2`-driven executor would have issued for the
    /// same recursion: one per fork plus one per leaf spawned onto a
    /// processor other than the one already executing the recursion.
    pub fork_barriers: usize,
}

/// Compile the PACO Floyd–Warshall recursion for an `n × n` instance on `p`
/// processors into a wave-flattened [`Plan`].
///
/// The recursion is replayed symbolically to a program-ordered leaf list
/// (preserving the 1-PIECE processor assignment), then each leaf is layered
/// into the earliest wave its exact read/write footprint allows — see the
/// module docs.  The schedule depends only on `(n, p, base)`, never on the
/// matrix entries.
pub fn plan_fw(n: usize, p: usize, base: usize) -> FwPlan {
    assert!(p >= 1);
    assert!(base >= 1);
    let mut rec = Recorder {
        leaves: Vec::new(),
        base,
        fork_barriers: 0,
    };
    rec.a(None, ProcList::all(p), 0..n);
    FwPlan {
        plan: layer(p, rec.leaves),
        fork_barriers: rec.fork_barriers,
    }
}

/// Dependency-exact wave assignment for a program-ordered leaf list.
///
/// Every rectangle boundary is coordinate-compressed into grid lines, so each
/// footprint is an exact union of grid cells.  Per cell we track the last
/// write `(wave, proc)` and the reads since it `(max wave, proc, mixed)`;
/// a leaf on worker `q` lands at
///
/// * `≥ wave(writer) + 1` for every read cell whose writer ran elsewhere
///   (`+ 0` on the same worker: in-wave FIFO keeps program order), covering
///   RAW and — since writes are a subset of reads — WAW, and
/// * `≥ wave(reader) + 1` for every written cell read elsewhere since its
///   last write (WAR; `mixed` readers conservatively cost the `+ 1`).
///
/// Waves are emitted in program order, so same-worker steps inside one wave
/// replay the recursion's sequential order.
fn layer(p: usize, leaves: Vec<(ProcId, LeafCall)>) -> Plan<LeafCall> {
    if leaves.is_empty() {
        return Plan::empty(p);
    }
    let mut bounds: Vec<usize> = Vec::new();
    for (_, call) in &leaves {
        for (rows, cols) in call.read_rects() {
            bounds.extend([rows.start, rows.end, cols.start, cols.end]);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();
    let m = bounds.len() - 1;
    let span = |r: &Range<usize>| -> Range<usize> {
        let lo = bounds
            .binary_search(&r.start)
            .expect("endpoint is a grid line");
        let hi = bounds
            .binary_search(&r.end)
            .expect("endpoint is a grid line");
        lo..hi
    };
    #[derive(Clone, Copy, Default)]
    struct Cell {
        /// `(wave, proc)` of the last write to this cell.
        writer: Option<(usize, ProcId)>,
        /// `(max wave, proc, mixed)` of the reads since the last write.
        readers: Option<(usize, ProcId, bool)>,
    }
    let mut grid: Vec<Cell> = vec![Cell::default(); m * m];
    let mut depths = Vec::with_capacity(leaves.len());
    for (q, call) in &leaves {
        let reads = call.read_rects();
        let (w_rows, w_cols) = call.write_rect();
        let mut d = 0usize;
        for (rows, cols) in &reads {
            for ri in span(rows) {
                for ci in span(cols) {
                    if let Some((wd, wp)) = grid[ri * m + ci].writer {
                        d = d.max(wd + usize::from(wp != *q));
                    }
                }
            }
        }
        for ri in span(&w_rows) {
            for ci in span(&w_cols) {
                if let Some((rd, rp, mixed)) = grid[ri * m + ci].readers {
                    d = d.max(rd + usize::from(mixed || rp != *q));
                }
            }
        }
        for (rows, cols) in &reads {
            for ri in span(rows) {
                for ci in span(cols) {
                    let cell = &mut grid[ri * m + ci];
                    cell.readers = Some(match cell.readers {
                        None => (d, *q, false),
                        Some((rd, rp, mixed)) => (rd.max(d), rp, mixed || rp != *q),
                    });
                }
            }
        }
        for ri in span(&w_rows) {
            for ci in span(&w_cols) {
                grid[ri * m + ci] = Cell {
                    writer: Some((d, *q)),
                    readers: None,
                };
            }
        }
        depths.push(d);
    }
    let max_d = *depths.iter().max().unwrap();
    let mut waves: Vec<Vec<Step<LeafCall>>> = vec![Vec::new(); max_d + 1];
    for ((proc, job), d) in leaves.into_iter().zip(depths) {
        waves[d].push(Step { proc, job });
    }
    Plan::from_waves(p, waves)
}

/// Symbolic replay of the A/B/C/D recursion to a program-ordered leaf list.
///
/// `cur` tracks which processor the old executor would have been running on
/// (the 1-PIECE "own branch runs inline" rule) — it no longer influences the
/// schedule, only the [`FwPlan::fork_barriers`] accounting.  Program order is
/// a valid serialization of the recursion (it is exactly the order `fw_seq`
/// relaxes in), so the layering above can use it as its topological baseline.
struct Recorder {
    leaves: Vec<(ProcId, LeafCall)>,
    base: usize,
    fork_barriers: usize,
}

impl Recorder {
    fn leaf(&mut self, cur: Option<ProcId>, proc: ProcId, call: LeafCall) {
        if cur != Some(proc) {
            // The old executor opened a scope to spawn a leaf it was not
            // already running on.
            self.fork_barriers += 1;
        }
        self.leaves.push((proc, call));
    }

    /// Two parallel branches on the two halves of the processor list; the old
    /// executor's `fork2` was one barrier regardless of `cur`.
    fn fork(
        &mut self,
        p1: ProcList,
        f1: impl FnOnce(&mut Self, Option<ProcId>),
        p2: ProcList,
        f2: impl FnOnce(&mut Self, Option<ProcId>),
    ) {
        self.fork_barriers += 1;
        f1(self, Some(p1.first()));
        f2(self, Some(p2.first()));
    }

    /// The A role: close the diagonal block `r × r`.
    fn a(&mut self, cur: Option<ProcId>, procs: ProcList, r: Range<usize>) {
        if r.is_empty() {
            return;
        }
        if procs.len() == 1 || r.len() <= self.base {
            return self.leaf(cur, procs.first(), LeafCall::A { r });
        }
        let (r1, r2) = halves(&r);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ r1.  B and C write disjoint off-diagonal blocks.
        self.a(cur, procs, r1.clone());
        {
            let (r1b, r2b) = (r1.clone(), r2.clone());
            let (r1c, r2c) = (r1.clone(), r2.clone());
            self.fork(
                p1,
                |s, c| s.b_role(c, p1, r1b, r2b),
                p2,
                |s, c| s.c_role(c, p2, r1c, r2c),
            );
        }
        self.d(cur, procs, r2.clone(), r2.clone(), r1.clone());
        // Phase 2: via ∈ r2.
        self.a(cur, procs, r2.clone());
        {
            let (r2b, r1b) = (r2.clone(), r1.clone());
            let (r2c, r1c) = (r2.clone(), r1.clone());
            self.fork(
                p1,
                |s, c| s.b_role(c, p1, r2b, r1b),
                p2,
                |s, c| s.c_role(c, p2, r2c, r1c),
            );
        }
        self.d(cur, procs, r1.clone(), r1, r2);
    }

    /// The B role: close the row-aligned block `v × cols`.
    fn b_role(
        &mut self,
        cur: Option<ProcId>,
        procs: ProcList,
        v: Range<usize>,
        cols: Range<usize>,
    ) {
        if v.is_empty() || cols.is_empty() {
            return;
        }
        if procs.len() == 1 || (v.len() <= self.base && cols.len() <= self.base) {
            return self.leaf(cur, procs.first(), LeafCall::B { v, cols });
        }
        if v.len() <= self.base {
            let (c1, c2) = halves(&cols);
            let (p1, p2) = procs.split_even();
            let (va, vb) = (v.clone(), v);
            return self.fork(
                p1,
                |s, c| s.b_role(c, p1, va, c1),
                p2,
                |s, c| s.b_role(c, p2, vb, c2),
            );
        }
        let (v1, v2) = halves(&v);
        if cols.len() <= self.base {
            self.b_role(cur, procs, v1.clone(), cols.clone());
            self.d(cur, procs, v2.clone(), cols.clone(), v1.clone());
            self.b_role(cur, procs, v2.clone(), cols.clone());
            return self.d(cur, procs, v1, cols, v2);
        }
        let (c1, c2) = halves(&cols);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ v1.
        {
            let (va, vb) = (v1.clone(), v1.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            self.fork(
                p1,
                |s, c| s.b_role(c, p1, va, ca),
                p2,
                |s, c| s.b_role(c, p2, vb, cb),
            );
        }
        {
            let (ra, rb) = (v2.clone(), v2.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            let (wa, wb) = (v1.clone(), v1.clone());
            self.fork(
                p1,
                |s, c| s.d(c, p1, ra, ca, wa),
                p2,
                |s, c| s.d(c, p2, rb, cb, wb),
            );
        }
        // Phase 2: via ∈ v2.
        {
            let (va, vb) = (v2.clone(), v2.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            self.fork(
                p1,
                |s, c| s.b_role(c, p1, va, ca),
                p2,
                |s, c| s.b_role(c, p2, vb, cb),
            );
        }
        {
            let (ra, rb) = (v1.clone(), v1);
            let (wa, wb) = (v2.clone(), v2);
            self.fork(
                p1,
                |s, c| s.d(c, p1, ra, c1, wa),
                p2,
                |s, c| s.d(c, p2, rb, c2, wb),
            );
        }
    }

    /// The C role: close the column-aligned block `rows × v`.
    fn c_role(
        &mut self,
        cur: Option<ProcId>,
        procs: ProcList,
        v: Range<usize>,
        rows: Range<usize>,
    ) {
        if v.is_empty() || rows.is_empty() {
            return;
        }
        if procs.len() == 1 || (v.len() <= self.base && rows.len() <= self.base) {
            return self.leaf(cur, procs.first(), LeafCall::C { v, rows });
        }
        if v.len() <= self.base {
            let (r1, r2) = halves(&rows);
            let (p1, p2) = procs.split_even();
            let (va, vb) = (v.clone(), v);
            return self.fork(
                p1,
                |s, c| s.c_role(c, p1, va, r1),
                p2,
                |s, c| s.c_role(c, p2, vb, r2),
            );
        }
        let (v1, v2) = halves(&v);
        if rows.len() <= self.base {
            self.c_role(cur, procs, v1.clone(), rows.clone());
            self.d(cur, procs, rows.clone(), v2.clone(), v1.clone());
            self.c_role(cur, procs, v2.clone(), rows.clone());
            return self.d(cur, procs, rows, v1, v2);
        }
        let (r1, r2) = halves(&rows);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ v1.
        {
            let (va, vb) = (v1.clone(), v1.clone());
            let (ra, rb) = (r1.clone(), r2.clone());
            self.fork(
                p1,
                |s, c| s.c_role(c, p1, va, ra),
                p2,
                |s, c| s.c_role(c, p2, vb, rb),
            );
        }
        {
            let (ra, rb) = (r1.clone(), r2.clone());
            let (ca, cb) = (v2.clone(), v2.clone());
            let (wa, wb) = (v1.clone(), v1.clone());
            self.fork(
                p1,
                |s, c| s.d(c, p1, ra, ca, wa),
                p2,
                |s, c| s.d(c, p2, rb, cb, wb),
            );
        }
        // Phase 2: via ∈ v2.
        {
            let (va, vb) = (v2.clone(), v2.clone());
            let (ra, rb) = (r1.clone(), r2.clone());
            self.fork(
                p1,
                |s, c| s.c_role(c, p1, va, ra),
                p2,
                |s, c| s.c_role(c, p2, vb, rb),
            );
        }
        {
            let (ca, cb) = (v1.clone(), v1);
            let (wa, wb) = (v2.clone(), v2);
            self.fork(
                p1,
                |s, c| s.d(c, p1, r1, ca, wa),
                p2,
                |s, c| s.d(c, p2, r2, cb, wb),
            );
        }
    }

    /// The D role: disjoint accumulate, split on the longest dimension
    /// (row/column cuts fork; via cuts stay ordered — and, because both via
    /// halves keep the same processor list, the ordered halves land on the
    /// same workers and share waves through the per-worker FIFO).
    fn d(
        &mut self,
        cur: Option<ProcId>,
        procs: ProcList,
        rows: Range<usize>,
        cols: Range<usize>,
        via: Range<usize>,
    ) {
        if rows.is_empty() || cols.is_empty() || via.is_empty() {
            return;
        }
        if procs.len() == 1
            || (rows.len() <= self.base && cols.len() <= self.base && via.len() <= self.base)
        {
            return self.leaf(cur, procs.first(), LeafCall::D { rows, cols, via });
        }
        if rows.len() >= cols.len() && rows.len() >= via.len() {
            let (r1, r2) = halves(&rows);
            let (p1, p2) = procs.split_even();
            let (ca, cb) = (cols.clone(), cols);
            let (wa, wb) = (via.clone(), via);
            self.fork(
                p1,
                |s, c| s.d(c, p1, r1, ca, wa),
                p2,
                |s, c| s.d(c, p2, r2, cb, wb),
            );
        } else if cols.len() >= via.len() {
            let (c1, c2) = halves(&cols);
            let (p1, p2) = procs.split_even();
            let (ra, rb) = (rows.clone(), rows);
            let (wa, wb) = (via.clone(), via);
            self.fork(
                p1,
                |s, c| s.d(c, p1, ra, c1, wa),
                p2,
                |s, c| s.d(c, p2, rb, c2, wb),
            );
        } else {
            // A via cut accumulates into the same cells: the halves stay
            // ordered (same procs ⇒ same leaves ⇒ in-wave FIFO ordering).
            let (v1, v2) = halves(&via);
            self.d(cur, procs, rows.clone(), cols.clone(), v1);
            self.d(cur, procs, rows, cols, v2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fw_reference;
    use crate::seq::{fw_seq, fw_seq_traced};
    use paco_core::workload::{random_adjacency, random_digraph};
    use paco_runtime::WorkerPool;

    /// Prepare-bind-execute helper replicating the retired `fw_paco_with_base`
    /// free function over [`FwRun`].
    fn fw_paco_with_base<S: IdempotentSemiring>(
        adj: &Matrix<S>,
        pool: &WorkerPool,
        base: usize,
    ) -> Matrix<S> {
        let run = FwRun::prepare(adj, pool.p(), base);
        run.plan().execute(pool, |proc, call| run.step(proc, call));
        run.finish()
    }

    #[test]
    fn matches_reference_for_various_p_and_sizes() {
        for &(n, base) in &[(16usize, 4usize), (65, 8), (100, 16), (128, 32)] {
            let adj = random_digraph(n, 0.2, 60, 3 * n as u64);
            let expect = fw_reference(&adj);
            for p in [1usize, 2, 3, 5, 7] {
                let pool = WorkerPool::new(p);
                assert_eq!(
                    fw_paco_with_base(&adj, &pool, base),
                    expect,
                    "n={n} base={base} p={p}"
                );
            }
        }
    }

    #[test]
    fn bool_transitive_closure_matches_reference() {
        let adj = random_adjacency(96, 0.06, 21);
        let expect = fw_reference(&adj);
        for p in [2usize, 4, 6] {
            let pool = WorkerPool::new(p);
            assert_eq!(fw_paco_with_base(&adj, &pool, 16), expect, "p={p}");
        }
    }

    #[test]
    fn empty_graph() {
        let adj: Matrix<paco_core::semiring::MinPlus> =
            Matrix::from_fn(0, 0, |_, _| unreachable!());
        let pool = WorkerPool::new(3);
        assert_eq!(
            fw_paco_with_base(&adj, &pool, crate::kernel::DEFAULT_BASE).rows(),
            0
        );
    }

    #[test]
    fn traced_matches_native_and_balances_misses() {
        let n = 128;
        let adj = random_digraph(n, 0.2, 40, 9);
        let expect = fw_reference(&adj);
        let params = CacheParams::new(1024, 8);
        for p in [2usize, 3, 5] {
            let (closed, sim) = fw_paco_traced(&adj, p, 16, params);
            assert_eq!(closed, expect, "p={p}");
            assert!(sim.q_sum() > 0);
            // Every processor the partitioning used must have been charged.
            assert!(sim.q_max() > 0, "p={p}");
        }
    }

    #[test]
    fn overall_misses_stay_close_to_sequential_optimum() {
        // Q^Σ_p of PACO should stay within a modest factor of Q₁, far from p·Q₁.
        let n = 128;
        let adj = random_digraph(n, 0.25, 30, 17);
        let params = CacheParams::new(2048, 8);
        let (_, seq) = fw_seq_traced(&adj, 16, params);
        let q1 = seq.q_sum() as f64;
        let p = 4;
        let (_, par) = fw_paco_traced(&adj, p, 16, params);
        let qp = par.q_sum() as f64;
        assert!(
            qp >= 0.9 * q1,
            "parallel total misses cannot beat Q1 by much"
        );
        assert!(
            qp < 3.0 * q1,
            "Q^Σ_p = {qp} should stay well below p·Q₁ = {}",
            p as f64 * q1
        );
    }

    #[test]
    fn flattened_plan_issues_far_fewer_barriers_than_the_fork_recursion() {
        // The PR 2 ROADMAP item: the fork2-driven executor paid one barrier
        // per fork and per off-processor leaf spawn; the wave-flattened plan
        // must issue strictly fewer (in practice: several times fewer).
        for &(n, base, p) in &[(128usize, 8usize, 4usize), (256, 16, 4), (128, 8, 7)] {
            let fw = plan_fw(n, p, base);
            assert!(
                fw.plan.barriers() < fw.fork_barriers,
                "n={n} base={base} p={p}: {} waves vs {} recursive barriers",
                fw.plan.barriers(),
                fw.fork_barriers
            );
        }
    }

    #[test]
    fn exact_layering_beats_the_front_clock_ceilings() {
        // PR 3's conservative per-processor wave clock produced 110 waves at
        // p = 4 and 152 at p = 8 for n = 128, base = 8.  The dependency-exact
        // layering must never regress past those ceilings.
        let b4 = plan_fw(128, 4, 8).plan.barriers();
        let b8 = plan_fw(128, 8, 8).plan.barriers();
        println!("n=128 base=8: p=4 -> {b4} waves (was 110), p=8 -> {b8} waves (was 152)");
        assert!(b4 <= 110, "p=4: {b4} waves, front-clock ceiling was 110");
        assert!(b8 <= 152, "p=8: {b8} waves, front-clock ceiling was 152");
    }

    #[test]
    fn layered_waves_never_overlap_read_write_footprints_across_procs() {
        // Structural check of the exact layering: inside one wave, a cell
        // written by one processor must not be read or written by any other.
        for &(n, p, base) in &[(96usize, 4usize, 8usize), (128, 7, 16)] {
            let fw = plan_fw(n, p, base);
            for wave in fw.plan.waves() {
                for (i, a) in wave.iter().enumerate() {
                    let (wr, wc) = a.job.write_rect();
                    for b in &wave[i + 1..] {
                        if a.proc == b.proc {
                            continue; // same worker: FIFO order applies
                        }
                        for (rr, rc) in b.job.read_rects() {
                            let disjoint = wr.end <= rr.start
                                || rr.end <= wr.start
                                || wc.end <= rc.start
                                || rc.end <= wc.start;
                            assert!(
                                disjoint,
                                "n={n} p={p}: write {wr:?}×{wc:?} on proc {} overlaps \
                                 read {rr:?}×{rc:?} on proc {} in one wave",
                                a.proc, b.proc
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn plan_barriers_grow_linearly_with_n_not_faster() {
        // Per A-phase the wave count is bounded by a constant in n (it only
        // depends on p): doubling n doubles the A-chain, so barriers at most
        // double (plus a constant).
        let p = 4;
        let base = 8;
        let b128 = plan_fw(128, p, base).plan.barriers();
        let b256 = plan_fw(256, p, base).plan.barriers();
        assert!(
            (b256 as f64) <= 2.3 * b128 as f64,
            "barriers must scale with the A-chain: b(128)={b128}, b(256)={b256}"
        );
    }

    #[test]
    fn single_processor_plan_is_one_leaf_no_fork_barriers() {
        let fw = plan_fw(512, 1, 16);
        assert_eq!(fw.plan.barriers(), 1);
        assert_eq!(fw.plan.steps(), 1);
    }

    #[test]
    fn bound_runs_share_one_compiled_plan() {
        // One compiled plan, many bound instances: from_plan must reproduce
        // prepare() exactly (the skeleton-cache contract).
        let compiled = Arc::new(plan_fw(48, 3, 8));
        let pool = WorkerPool::new(3);
        for seed in [5u64, 6, 7] {
            let adj = random_digraph(48, 0.25, 30, seed);
            let run = FwRun::from_plan(&adj, Arc::clone(&compiled), 8);
            run.plan().execute(&pool, |proc, call| run.step(proc, call));
            assert_eq!(run.finish(), fw_reference(&adj), "seed={seed}");
        }
        assert_eq!(Arc::strong_count(&compiled), 1);
    }

    #[test]
    fn batch_matches_individual_runs_and_shares_barriers() {
        let pool = WorkerPool::new(3);
        let base = 8;
        let adjs: Vec<_> = (0..5)
            .map(|i| random_digraph(24 + 8 * i, 0.25, 30, 100 + i as u64))
            .collect();
        let expect: Vec<_> = adjs.iter().map(fw_reference).collect();
        let runs: Vec<FwRun<_>> = adjs
            .iter()
            .map(|adj| FwRun::prepare(adj, pool.p(), base))
            .collect();
        let plan_refs: Vec<&Plan<LeafCall>> = runs.iter().map(|r| r.plan()).collect();
        let batched = Plan::batch_refs(&plan_refs);
        batched.execute(&pool, |proc, (inst, call)| runs[*inst].step(proc, call));
        let got: Vec<_> = runs.into_iter().map(FwRun::finish).collect();
        assert_eq!(got, expect);

        // The batched plan's barrier count is the max of the constituents',
        // not the sum.
        let plans: Vec<_> = adjs
            .iter()
            .map(|a| plan_fw(a.rows(), pool.p(), base).plan)
            .collect();
        let sum: usize = plans.iter().map(|p| p.barriers()).sum();
        let max = plans.iter().map(|p| p.barriers()).max().unwrap();
        let batched = Plan::batch(plans);
        assert_eq!(batched.barriers(), max);
        assert!(batched.barriers() < sum);
    }

    #[test]
    fn plan_agrees_with_seq_for_awkward_sizes() {
        for &(n, p, base) in &[(33usize, 5usize, 4usize), (77, 3, 8), (64, 8, 4)] {
            let adj = random_digraph(n, 0.3, 25, n as u64 * 7 + p as u64);
            let pool = WorkerPool::new(p);
            assert_eq!(
                fw_paco_with_base(&adj, &pool, base),
                fw_seq(&adj, base),
                "n={n} p={p} base={base}"
            );
        }
    }
}
