//! Processor-aware cache-oblivious (PACO) Floyd–Warshall.
//!
//! The same A/B/C/D recursion as [`crate::seq`], with the 1-PIECE
//! processor-list discipline of the paper (Sect. III-C/III-E, Fig. 6/8):
//! every recursive call carries an explicit [`ProcList`]; each fork splits the
//! list `⌊p/2⌋ : ⌈p/2⌉`; when the list is a singleton (or the block reaches
//! the base size) the entire sub-problem becomes one sequential leaf on that
//! processor.  The partitioning — not a work stealer — decides placement, and
//! it never consults the cache parameters: processor-aware, cache-oblivious.
//!
//! Since PR 3 the recursion is no longer *executed* directly: [`plan_fw`]
//! replays it **symbolically** and compiles it into a wave-based
//! [`Plan`]`<`[`LeafCall`]`>` (see [`paco_runtime::schedule`]).  The old
//! executor paid one full pool barrier per `fork2` and per off-processor leaf
//! spawn — linear in the recursion depth per phase (the PR 2 ROADMAP item).
//! The plan builder's [`Front`] only advances the wave clock on true
//! cross-processor hand-offs, so the B/C forks and the following D phase of
//! each A-phase collapse into a constant number of waves: sequential
//! compositions on the *same* processor (e.g. the ordered via-cut halves of a
//! D block) ride the pool's per-worker FIFO inside one wave for free.
//! [`FwPlan::fork_barriers`] preserves the old executor's barrier count so the
//! flattening is regression-testable.
//!
//! Entry points:
//!
//! * [`FwRun`] — the prepared instance (plan + shared closure table) the
//!   service layer's `Session` schedules; leaves dispatch through the
//!   data-carrying [`LeafCall`] with a concrete [`NullTracker`], so the hot
//!   kernels stay fully monomorphized.
//! * [`fw_paco`] / [`fw_paco_with_base`] / [`fw_paco_batch`] — deprecated
//!   pool-threading wrappers kept for migration; prefer
//!   `paco_service::Session` with the `Apsp`/`Closure` request.
//! * [`fw_paco_traced`] — the *identical* plan replayed sequentially through
//!   the ideal distributed cache simulator, charging every leaf to the private
//!   cache of the processor the plan assigned it (task-boundary flush per
//!   leaf, the paper's accounting convention).

use crate::kernel::{FwAddr, FwTable, DEFAULT_BASE};
use crate::seq::{a_co, b_co, c_co, d_co, halves};
use paco_cache_sim::{CacheParams, DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::matrix::Matrix;
use paco_core::proc_list::{ProcId, ProcList};
use paco_core::semiring::IdempotentSemiring;
use paco_runtime::schedule::{Front, Plan, PlanBuilder};
use paco_runtime::WorkerPool;
use std::ops::Range;

/// A prepared PACO Floyd–Warshall instance: the wave-flattened plan plus the
/// shared closure table its leaves relax.  This is the unit the service
/// layer's `Session` schedules — alone, in homogeneous batches, or mixed with
/// other workloads — and the deprecated free functions below are thin
/// wrappers over it.
pub struct FwRun<S: IdempotentSemiring> {
    table: FwTable<S>,
    addr: FwAddr,
    plan: Plan<LeafCall>,
    base: usize,
}

impl<S: IdempotentSemiring> FwRun<S> {
    /// Compile an instance for `p` processors with base-case side `base`.
    pub fn prepare(adj: &Matrix<S>, p: usize, base: usize) -> Self {
        assert!(base >= 1);
        let table = FwTable::from_matrix(adj);
        let addr = FwAddr::new(table.n());
        let plan = plan_fw(table.n(), p, base).plan;
        Self {
            table,
            addr,
            plan,
            base,
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<LeafCall> {
        &self.plan
    }

    /// Run one leaf with the sequential cache-oblivious kernels.
    pub fn step(&self, _proc: ProcId, call: &LeafCall) {
        call.run(&self.table, self.base, &mut NullTracker, &self.addr);
    }

    /// Read the closed matrix off the completed table.
    pub fn finish(self) -> Matrix<S> {
        self.table.to_matrix()
    }
}

/// PACO Floyd–Warshall on `pool.p()` processors with the default base size.
#[deprecated(note = "run the `Apsp`/`Closure` request through a `paco_service::Session` instead")]
pub fn fw_paco<S: IdempotentSemiring>(adj: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
    #[allow(deprecated)]
    fw_paco_with_base(adj, pool, DEFAULT_BASE)
}

/// PACO Floyd–Warshall with an explicit base-case side for the partitioning
/// and the sequential leaf kernels.
#[deprecated(
    note = "run the `Apsp`/`Closure` request through a `paco_service::Session` (set `Tuning::fw_base` for the knob) instead"
)]
pub fn fw_paco_with_base<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    pool: &WorkerPool,
    base: usize,
) -> Matrix<S> {
    let run = FwRun::prepare(adj, pool.p(), base);
    run.plan.execute(pool, |proc, call| run.step(proc, call));
    run.finish()
}

/// PACO Floyd–Warshall replayed through the ideal distributed cache simulator:
/// the same plan, the same kernels, but each leaf's accesses are charged to
/// the private cache of its assigned processor, with a task-boundary flush
/// before each leaf.
pub fn fw_paco_traced<S: IdempotentSemiring>(
    adj: &Matrix<S>,
    p: usize,
    base: usize,
    params: CacheParams,
) -> (Matrix<S>, DistCacheSim) {
    assert!(base >= 1);
    let table = FwTable::from_matrix(adj);
    let addr = FwAddr::new(table.n());
    let plan = plan_fw(table.n(), p, base);
    let mut tracker = SimTracker::new(p, params);
    plan.plan.for_each(|_, proc, call| {
        tracker.set_proc(proc);
        tracker.task_boundary();
        call.run(&table, base, &mut tracker, &addr);
    });
    (table.to_matrix(), tracker.into_sim())
}

/// Close many independent instances through **one** pool pass: the
/// per-instance plans are merged wave-by-wave with [`Plan::batch`], so small
/// graphs — whose individual runs are dominated by spawn/join round-trips —
/// share their barriers.  Returns the closed matrices in input order.
#[deprecated(
    note = "run `Apsp`/`Closure` requests through `paco_service::Session::run_batch` (or `submit`/`flush`) instead"
)]
pub fn fw_paco_batch<S: IdempotentSemiring>(
    adjs: &[Matrix<S>],
    pool: &WorkerPool,
    base: usize,
) -> Vec<Matrix<S>> {
    let runs: Vec<FwRun<S>> = adjs
        .iter()
        .map(|adj| FwRun::prepare(adj, pool.p(), base))
        .collect();
    let batched = Plan::batch(runs.iter().map(|r| r.plan.clone()).collect());
    batched.execute(pool, |proc, (inst, call)| runs[*inst].step(proc, call));
    runs.into_iter().map(FwRun::finish).collect()
}

/// A pending leaf: which of the four A/B/C/D roles to run on which block.
///
/// Carrying the call as data (rather than a boxed `FnOnce(&mut dyn Tracker)`)
/// lets every consumer invoke the hot kernels with a *concrete* tracker type —
/// `NullTracker` natively (fully monomorphized, the per-cell tracker hooks
/// compile away exactly as in `fw_seq`/`fw_po`) and `SimTracker` in the traced
/// replay — instead of paying virtual dispatch per cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafCall {
    /// Diagonal self-closure of `r × r`.
    A {
        /// The diagonal vertex range.
        r: Range<usize>,
    },
    /// Row-aligned closure of `v × cols`.
    B {
        /// The via-vertex range (the block's rows).
        v: Range<usize>,
        /// The block's columns.
        cols: Range<usize>,
    },
    /// Column-aligned closure of `rows × v`.
    C {
        /// The via-vertex range (the block's columns).
        v: Range<usize>,
        /// The block's rows.
        rows: Range<usize>,
    },
    /// Disjoint accumulate `rows × cols ⊕= (rows × via) ⊗ (via × cols)`.
    D {
        /// The block's rows.
        rows: Range<usize>,
        /// The block's columns.
        cols: Range<usize>,
        /// The via-vertex range.
        via: Range<usize>,
    },
}

impl LeafCall {
    /// Run the call sequentially with the cache-oblivious kernels of
    /// [`crate::seq`].
    pub fn run<S: IdempotentSemiring, T: Tracker + ?Sized>(
        &self,
        table: &FwTable<S>,
        base: usize,
        tracker: &mut T,
        addr: &FwAddr,
    ) {
        match self {
            LeafCall::A { r } => a_co(table, r.clone(), base, tracker, addr),
            LeafCall::B { v, cols } => b_co(table, v.clone(), cols.clone(), base, tracker, addr),
            LeafCall::C { v, rows } => c_co(table, v.clone(), rows.clone(), base, tracker, addr),
            LeafCall::D { rows, cols, via } => d_co(
                table,
                rows.clone(),
                cols.clone(),
                via.clone(),
                base,
                tracker,
                addr,
            ),
        }
    }
}

/// The compiled Floyd–Warshall schedule plus the barrier count of the
/// pre-plan recursive executor, for regression tests and reports.
#[derive(Debug, Clone)]
pub struct FwPlan {
    /// The wave-flattened schedule.
    pub plan: Plan<LeafCall>,
    /// Barriers the old `fork2`-driven executor would have issued for the
    /// same recursion: one per fork plus one per leaf spawned onto a
    /// processor other than the one already executing the recursion.
    pub fork_barriers: usize,
}

/// Compile the PACO Floyd–Warshall recursion for an `n × n` instance on `p`
/// processors into a wave-flattened [`Plan`].
pub fn plan_fw(n: usize, p: usize, base: usize) -> FwPlan {
    assert!(p >= 1);
    assert!(base >= 1);
    let mut planner = Planner {
        b: PlanBuilder::new(p),
        base,
        fork_barriers: 0,
    };
    let front = planner.b.root();
    planner.a(&front, None, ProcList::all(p), 0..n);
    FwPlan {
        plan: planner.b.finish(),
        fork_barriers: planner.fork_barriers,
    }
}

/// Symbolic replay of the A/B/C/D recursion into a [`PlanBuilder`].
///
/// `cur` tracks which processor the old executor would have been running on
/// (the 1-PIECE "own branch runs inline" rule) — it no longer influences the
/// schedule, only the [`FwPlan::fork_barriers`] accounting.
struct Planner {
    b: PlanBuilder<LeafCall>,
    base: usize,
    fork_barriers: usize,
}

impl Planner {
    fn leaf(&mut self, front: &Front, cur: Option<ProcId>, proc: ProcId, call: LeafCall) -> Front {
        if cur != Some(proc) {
            // The old executor opened a scope to spawn a leaf it was not
            // already running on.
            self.fork_barriers += 1;
        }
        self.b.step(front, proc, call)
    }

    /// Two parallel branches on the two halves of the processor list; the old
    /// executor's `fork2` was one barrier regardless of `cur`.
    fn fork(
        &mut self,
        front: &Front,
        p1: ProcList,
        f1: impl FnOnce(&mut Self, &Front, Option<ProcId>) -> Front,
        p2: ProcList,
        f2: impl FnOnce(&mut Self, &Front, Option<ProcId>) -> Front,
    ) -> Front {
        self.fork_barriers += 1;
        let left = f1(self, front, Some(p1.first()));
        let right = f2(self, front, Some(p2.first()));
        left.join(&right)
    }

    /// The A role: close the diagonal block `r × r`.
    fn a(&mut self, front: &Front, cur: Option<ProcId>, procs: ProcList, r: Range<usize>) -> Front {
        if r.is_empty() {
            return front.clone();
        }
        if procs.len() == 1 || r.len() <= self.base {
            return self.leaf(front, cur, procs.first(), LeafCall::A { r });
        }
        let (r1, r2) = halves(&r);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ r1.  B and C write disjoint off-diagonal blocks.
        let f = self.a(front, cur, procs, r1.clone());
        let f = {
            let (r1b, r2b) = (r1.clone(), r2.clone());
            let (r1c, r2c) = (r1.clone(), r2.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.b_role(f, c, p1, r1b, r2b),
                p2,
                |s, f, c| s.c_role(f, c, p2, r1c, r2c),
            )
        };
        let f = self.d(&f, cur, procs, r2.clone(), r2.clone(), r1.clone());
        // Phase 2: via ∈ r2.
        let f = self.a(&f, cur, procs, r2.clone());
        let f = {
            let (r2b, r1b) = (r2.clone(), r1.clone());
            let (r2c, r1c) = (r2.clone(), r1.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.b_role(f, c, p1, r2b, r1b),
                p2,
                |s, f, c| s.c_role(f, c, p2, r2c, r1c),
            )
        };
        self.d(&f, cur, procs, r1.clone(), r1, r2)
    }

    /// The B role: close the row-aligned block `v × cols`.
    fn b_role(
        &mut self,
        front: &Front,
        cur: Option<ProcId>,
        procs: ProcList,
        v: Range<usize>,
        cols: Range<usize>,
    ) -> Front {
        if v.is_empty() || cols.is_empty() {
            return front.clone();
        }
        if procs.len() == 1 || (v.len() <= self.base && cols.len() <= self.base) {
            return self.leaf(front, cur, procs.first(), LeafCall::B { v, cols });
        }
        if v.len() <= self.base {
            let (c1, c2) = halves(&cols);
            let (p1, p2) = procs.split_even();
            let (va, vb) = (v.clone(), v);
            return self.fork(
                front,
                p1,
                |s, f, c| s.b_role(f, c, p1, va, c1),
                p2,
                |s, f, c| s.b_role(f, c, p2, vb, c2),
            );
        }
        let (v1, v2) = halves(&v);
        if cols.len() <= self.base {
            let f = self.b_role(front, cur, procs, v1.clone(), cols.clone());
            let f = self.d(&f, cur, procs, v2.clone(), cols.clone(), v1.clone());
            let f = self.b_role(&f, cur, procs, v2.clone(), cols.clone());
            return self.d(&f, cur, procs, v1, cols, v2);
        }
        let (c1, c2) = halves(&cols);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ v1.
        let f = {
            let (va, vb) = (v1.clone(), v1.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            self.fork(
                front,
                p1,
                |s, f, c| s.b_role(f, c, p1, va, ca),
                p2,
                |s, f, c| s.b_role(f, c, p2, vb, cb),
            )
        };
        let f = {
            let (ra, rb) = (v2.clone(), v2.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            let (wa, wb) = (v1.clone(), v1.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.d(f, c, p1, ra, ca, wa),
                p2,
                |s, f, c| s.d(f, c, p2, rb, cb, wb),
            )
        };
        // Phase 2: via ∈ v2.
        let f = {
            let (va, vb) = (v2.clone(), v2.clone());
            let (ca, cb) = (c1.clone(), c2.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.b_role(f, c, p1, va, ca),
                p2,
                |s, f, c| s.b_role(f, c, p2, vb, cb),
            )
        };
        {
            let (ra, rb) = (v1.clone(), v1);
            let (wa, wb) = (v2.clone(), v2);
            self.fork(
                &f,
                p1,
                |s, f, c| s.d(f, c, p1, ra, c1, wa),
                p2,
                |s, f, c| s.d(f, c, p2, rb, c2, wb),
            )
        }
    }

    /// The C role: close the column-aligned block `rows × v`.
    fn c_role(
        &mut self,
        front: &Front,
        cur: Option<ProcId>,
        procs: ProcList,
        v: Range<usize>,
        rows: Range<usize>,
    ) -> Front {
        if v.is_empty() || rows.is_empty() {
            return front.clone();
        }
        if procs.len() == 1 || (v.len() <= self.base && rows.len() <= self.base) {
            return self.leaf(front, cur, procs.first(), LeafCall::C { v, rows });
        }
        if v.len() <= self.base {
            let (r1, r2) = halves(&rows);
            let (p1, p2) = procs.split_even();
            let (va, vb) = (v.clone(), v);
            return self.fork(
                front,
                p1,
                |s, f, c| s.c_role(f, c, p1, va, r1),
                p2,
                |s, f, c| s.c_role(f, c, p2, vb, r2),
            );
        }
        let (v1, v2) = halves(&v);
        if rows.len() <= self.base {
            let f = self.c_role(front, cur, procs, v1.clone(), rows.clone());
            let f = self.d(&f, cur, procs, rows.clone(), v2.clone(), v1.clone());
            let f = self.c_role(&f, cur, procs, v2.clone(), rows.clone());
            return self.d(&f, cur, procs, rows, v1, v2);
        }
        let (r1, r2) = halves(&rows);
        let (p1, p2) = procs.split_even();
        // Phase 1: via ∈ v1.
        let f = {
            let (va, vb) = (v1.clone(), v1.clone());
            let (ra, rb) = (r1.clone(), r2.clone());
            self.fork(
                front,
                p1,
                |s, f, c| s.c_role(f, c, p1, va, ra),
                p2,
                |s, f, c| s.c_role(f, c, p2, vb, rb),
            )
        };
        let f = {
            let (ra, rb) = (r1.clone(), r2.clone());
            let (ca, cb) = (v2.clone(), v2.clone());
            let (wa, wb) = (v1.clone(), v1.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.d(f, c, p1, ra, ca, wa),
                p2,
                |s, f, c| s.d(f, c, p2, rb, cb, wb),
            )
        };
        // Phase 2: via ∈ v2.
        let f = {
            let (va, vb) = (v2.clone(), v2.clone());
            let (ra, rb) = (r1.clone(), r2.clone());
            self.fork(
                &f,
                p1,
                |s, f, c| s.c_role(f, c, p1, va, ra),
                p2,
                |s, f, c| s.c_role(f, c, p2, vb, rb),
            )
        };
        {
            let (ca, cb) = (v1.clone(), v1);
            let (wa, wb) = (v2.clone(), v2);
            self.fork(
                &f,
                p1,
                |s, f, c| s.d(f, c, p1, r1, ca, wa),
                p2,
                |s, f, c| s.d(f, c, p2, r2, cb, wb),
            )
        }
    }

    /// The D role: disjoint accumulate, split on the longest dimension
    /// (row/column cuts fork; via cuts stay ordered — and, because both via
    /// halves keep the same processor list, the ordered halves land on the
    /// same workers and share waves through the per-worker FIFO).
    #[allow(clippy::too_many_arguments)] // mirrors the recursion's pseudo-code signature
    fn d(
        &mut self,
        front: &Front,
        cur: Option<ProcId>,
        procs: ProcList,
        rows: Range<usize>,
        cols: Range<usize>,
        via: Range<usize>,
    ) -> Front {
        if rows.is_empty() || cols.is_empty() || via.is_empty() {
            return front.clone();
        }
        if procs.len() == 1
            || (rows.len() <= self.base && cols.len() <= self.base && via.len() <= self.base)
        {
            return self.leaf(front, cur, procs.first(), LeafCall::D { rows, cols, via });
        }
        if rows.len() >= cols.len() && rows.len() >= via.len() {
            let (r1, r2) = halves(&rows);
            let (p1, p2) = procs.split_even();
            let (ca, cb) = (cols.clone(), cols);
            let (wa, wb) = (via.clone(), via);
            self.fork(
                front,
                p1,
                |s, f, c| s.d(f, c, p1, r1, ca, wa),
                p2,
                |s, f, c| s.d(f, c, p2, r2, cb, wb),
            )
        } else if cols.len() >= via.len() {
            let (c1, c2) = halves(&cols);
            let (p1, p2) = procs.split_even();
            let (ra, rb) = (rows.clone(), rows);
            let (wa, wb) = (via.clone(), via);
            self.fork(
                front,
                p1,
                |s, f, c| s.d(f, c, p1, ra, c1, wa),
                p2,
                |s, f, c| s.d(f, c, p2, rb, c2, wb),
            )
        } else {
            // A via cut accumulates into the same cells: the halves stay
            // ordered (same procs ⇒ same leaves ⇒ in-wave FIFO ordering).
            let (v1, v2) = halves(&via);
            let f = self.d(front, cur, procs, rows.clone(), cols.clone(), v1);
            self.d(&f, cur, procs, rows, cols, v2)
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay covered until they are removed
mod tests {
    use super::*;
    use crate::kernel::fw_reference;
    use crate::seq::{fw_seq, fw_seq_traced};
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn matches_reference_for_various_p_and_sizes() {
        for &(n, base) in &[(16usize, 4usize), (65, 8), (100, 16), (128, 32)] {
            let adj = random_digraph(n, 0.2, 60, 3 * n as u64);
            let expect = fw_reference(&adj);
            for p in [1usize, 2, 3, 5, 7] {
                let pool = WorkerPool::new(p);
                assert_eq!(
                    fw_paco_with_base(&adj, &pool, base),
                    expect,
                    "n={n} base={base} p={p}"
                );
            }
        }
    }

    #[test]
    fn bool_transitive_closure_matches_reference() {
        let adj = random_adjacency(96, 0.06, 21);
        let expect = fw_reference(&adj);
        for p in [2usize, 4, 6] {
            let pool = WorkerPool::new(p);
            assert_eq!(fw_paco_with_base(&adj, &pool, 16), expect, "p={p}");
        }
    }

    #[test]
    fn empty_graph() {
        let adj: Matrix<paco_core::semiring::MinPlus> =
            Matrix::from_fn(0, 0, |_, _| unreachable!());
        let pool = WorkerPool::new(3);
        assert_eq!(fw_paco(&adj, &pool).rows(), 0);
    }

    #[test]
    fn traced_matches_native_and_balances_misses() {
        let n = 128;
        let adj = random_digraph(n, 0.2, 40, 9);
        let expect = fw_reference(&adj);
        let params = CacheParams::new(1024, 8);
        for p in [2usize, 3, 5] {
            let (closed, sim) = fw_paco_traced(&adj, p, 16, params);
            assert_eq!(closed, expect, "p={p}");
            assert!(sim.q_sum() > 0);
            // Every processor the partitioning used must have been charged.
            assert!(sim.q_max() > 0, "p={p}");
        }
    }

    #[test]
    fn overall_misses_stay_close_to_sequential_optimum() {
        // Q^Σ_p of PACO should stay within a modest factor of Q₁, far from p·Q₁.
        let n = 128;
        let adj = random_digraph(n, 0.25, 30, 17);
        let params = CacheParams::new(2048, 8);
        let (_, seq) = fw_seq_traced(&adj, 16, params);
        let q1 = seq.q_sum() as f64;
        let p = 4;
        let (_, par) = fw_paco_traced(&adj, p, 16, params);
        let qp = par.q_sum() as f64;
        assert!(
            qp >= 0.9 * q1,
            "parallel total misses cannot beat Q1 by much"
        );
        assert!(
            qp < 3.0 * q1,
            "Q^Σ_p = {qp} should stay well below p·Q₁ = {}",
            p as f64 * q1
        );
    }

    #[test]
    fn flattened_plan_issues_far_fewer_barriers_than_the_fork_recursion() {
        // The PR 2 ROADMAP item: the fork2-driven executor paid one barrier
        // per fork and per off-processor leaf spawn; the wave-flattened plan
        // must issue strictly fewer (in practice: several times fewer).
        for &(n, base, p) in &[(128usize, 8usize, 4usize), (256, 16, 4), (128, 8, 7)] {
            let fw = plan_fw(n, p, base);
            assert!(
                fw.plan.barriers() < fw.fork_barriers,
                "n={n} base={base} p={p}: {} waves vs {} recursive barriers",
                fw.plan.barriers(),
                fw.fork_barriers
            );
        }
    }

    #[test]
    fn plan_barriers_grow_linearly_with_n_not_faster() {
        // Per A-phase the wave count is bounded by a constant in n (it only
        // depends on p): doubling n doubles the A-chain, so barriers at most
        // double (plus a constant).
        let p = 4;
        let base = 8;
        let b128 = plan_fw(128, p, base).plan.barriers();
        let b256 = plan_fw(256, p, base).plan.barriers();
        assert!(
            (b256 as f64) <= 2.3 * b128 as f64,
            "barriers must scale with the A-chain: b(128)={b128}, b(256)={b256}"
        );
    }

    #[test]
    fn single_processor_plan_is_one_leaf_no_fork_barriers() {
        let fw = plan_fw(512, 1, 16);
        assert_eq!(fw.plan.barriers(), 1);
        assert_eq!(fw.plan.steps(), 1);
    }

    #[test]
    fn batch_matches_individual_runs_and_shares_barriers() {
        let pool = WorkerPool::new(3);
        let base = 8;
        let adjs: Vec<_> = (0..5)
            .map(|i| random_digraph(24 + 8 * i, 0.25, 30, 100 + i as u64))
            .collect();
        let expect: Vec<_> = adjs.iter().map(fw_reference).collect();
        let got = fw_paco_batch(&adjs, &pool, base);
        assert_eq!(got, expect);

        // The batched plan's barrier count is the max of the constituents',
        // not the sum.
        let plans: Vec<_> = adjs
            .iter()
            .map(|a| plan_fw(a.rows(), pool.p(), base).plan)
            .collect();
        let sum: usize = plans.iter().map(|p| p.barriers()).sum();
        let max = plans.iter().map(|p| p.barriers()).max().unwrap();
        let batched = Plan::batch(plans);
        assert_eq!(batched.barriers(), max);
        assert!(batched.barriers() < sum);
    }

    #[test]
    fn plan_agrees_with_seq_for_awkward_sizes() {
        for &(n, p, base) in &[(33usize, 5usize, 4usize), (77, 3, 8), (64, 8, 4)] {
            let adj = random_digraph(n, 0.3, 25, n as u64 * 7 + p as u64);
            let pool = WorkerPool::new(p);
            assert_eq!(
                fw_paco_with_base(&adj, &pool, base),
                fw_seq(&adj, base),
                "n={n} p={p} base={base}"
            );
        }
    }
}
