//! # paco-graph
//!
//! Graph path closures over closed semirings: the Floyd–Warshall /
//! Gaussian-elimination-paradigm workload of the PACO reproduction.
//!
//! The paper states its matrix algorithms over a closed semiring (Sect.
//! III-E); this crate instantiates that generality on the canonical problem
//! that *needs* it — the in-place all-pairs closure
//! `D[i][j] ← D[i][j] ⊕ (D[i][k] ⊗ D[k][j])`:
//!
//! * over [`MinPlus`] (the tropical semiring) it computes **all-pairs
//!   shortest paths** ([`apsp`]);
//! * over [`BoolSemiring`] it computes the **transitive closure** of a
//!   directed graph ([`transitive_closure`]);
//! * over any other semiring with **idempotent `⊕`** (`a ⊕ a = a`) it
//!   computes the corresponding path closure ([`semiring_closure`]).  The
//!   idempotency requirement is inherent to the in-place Floyd–Warshall
//!   update (entries are relaxed repeatedly, so duplicate contributions must
//!   be absorbing); it is enforced at compile time — every entry point bounds
//!   its element type on [`IdempotentSemiring`], so a
//!   non-idempotent semiring such as
//!   [`WrappingRing`](paco_core::semiring::WrappingRing) is rejected instead
//!   of silently producing a meaningless result.
//!
//! Mirroring the workspace taxonomy (see the README), the problem ships in
//! three variants that all execute the identical sequential leaf kernel:
//!
//! | variant | entry point | scheduled by |
//! |---|---|---|
//! | sequential CO | [`fw_seq`] | — (the A/B/C/D recursion of [`seq`]) |
//! | PO | [`fw_po`] | randomized work stealing (`rayon::join`) |
//! | PACO | [`fw_paco`] | 1-PIECE processor lists on a pinned [`WorkerPool`] |
//!
//! The kernels are generic over [`paco_cache_sim::Tracker`], and the
//! sequential and PACO variants have `*_traced` twins ([`fw_seq_traced`],
//! [`fw_paco_traced`]) that replay the exact same execution through the ideal
//! distributed cache simulator, so the paper's `Q₁` vs `Q^Σ_p`/`Q^max_p`
//! accounting applies to this workload too.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernel;
pub mod paco;
pub mod po;
pub mod seq;

use paco_core::matrix::Matrix;
use paco_core::semiring::{BoolSemiring, IdempotentSemiring, MinPlus};
use paco_runtime::WorkerPool;

pub use kernel::{fw_reference, relax, FwAddr, FwTable, DEFAULT_BASE};
#[allow(deprecated)]
pub use paco::{
    fw_paco, fw_paco_batch, fw_paco_traced, fw_paco_with_base, plan_fw, FwPlan, FwRun, LeafCall,
};
pub use po::fw_po;
pub use seq::{fw_seq, fw_seq_traced};

/// All-pairs shortest paths: close a `(min, +)` adjacency matrix (diagonal
/// `0`, non-edges `+∞`) with the PACO Floyd–Warshall on `pool.p()`
/// processors.
///
/// Entry `(i, j)` of the result is the weight of the shortest directed path
/// from `i` to `j` (`+∞` if `j` is unreachable).  Weights should be
/// non-negative (the one-pass closure does not detect negative cycles).
#[deprecated(note = "run the `Apsp` request through a `paco_service::Session` instead")]
pub fn apsp(adj: &Matrix<MinPlus>, pool: &WorkerPool) -> Matrix<MinPlus> {
    #[allow(deprecated)]
    fw_paco(adj, pool)
}

/// Transitive closure: close a boolean adjacency matrix with the PACO
/// Floyd–Warshall on `pool.p()` processors.  Entry `(i, j)` of the result is
/// `true` iff `j` is reachable from `i` (including `i` itself when the
/// diagonal is reflexive, as [`paco_core::workload::random_adjacency`]
/// produces).
#[deprecated(
    note = "run the `Closure` request over `BoolSemiring` through a `paco_service::Session` instead"
)]
pub fn transitive_closure(adj: &Matrix<BoolSemiring>, pool: &WorkerPool) -> Matrix<BoolSemiring> {
    #[allow(deprecated)]
    fw_paco(adj, pool)
}

/// Closure of a square matrix over a closed semiring with the PACO variant —
/// the generic entry point behind [`apsp`] and [`transitive_closure`].
///
/// The [`IdempotentSemiring`] bound is load-bearing: the in-place
/// Floyd–Warshall update relaxes entries repeatedly, so a non-idempotent
/// addition (e.g. the `WrappingRing`) would double-count contributions and
/// produce neither the algebraic closure nor the triple-loop result — which
/// is why such semirings do not carry the marker and fail to compile here.
#[deprecated(note = "run the `Closure` request through a `paco_service::Session` instead")]
pub fn semiring_closure<S: IdempotentSemiring>(adj: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
    #[allow(deprecated)]
    fw_paco(adj, pool)
}

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay covered until they are removed
mod tests {
    use super::*;
    use paco_core::semiring::Semiring;
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn apsp_finds_the_short_way_around() {
        // A weighted 5-cycle with one expensive chord: going around is cheaper.
        let inf = MinPlus::zero();
        let n = 5;
        let mut adj = Matrix::filled(n, n, inf);
        for i in 0..n {
            adj.set(i, i, MinPlus::one());
            adj.set(i, (i + 1) % n, MinPlus(1.0));
        }
        adj.set(0, 3, MinPlus(10.0)); // chord is worse than 1+1+1
        let pool = WorkerPool::new(3);
        let d = apsp(&adj, &pool);
        assert_eq!(d.get(0, 3), MinPlus(3.0));
        assert_eq!(d.get(3, 0), MinPlus(2.0));
        assert_eq!(d.get(2, 2), MinPlus::one());
    }

    #[test]
    fn transitive_closure_of_two_components() {
        // Vertices 0..3 form a path, 3..6 a separate cycle: no cross reachability.
        let mut adj = Matrix::filled(6, 6, BoolSemiring(false));
        for i in 0..6 {
            adj.set(i, i, BoolSemiring(true));
        }
        adj.set(0, 1, BoolSemiring(true));
        adj.set(1, 2, BoolSemiring(true));
        adj.set(3, 4, BoolSemiring(true));
        adj.set(4, 5, BoolSemiring(true));
        adj.set(5, 3, BoolSemiring(true));
        let pool = WorkerPool::new(2);
        let c = transitive_closure(&adj, &pool);
        assert!(c.get(0, 2).0 && !c.get(2, 0).0, "path is one-way");
        assert!(
            c.get(3, 5).0 && c.get(5, 4).0,
            "cycle is strongly connected"
        );
        assert!(!c.get(0, 3).0 && !c.get(3, 0).0, "components stay separate");
    }

    #[test]
    fn generic_closure_agrees_with_the_named_wrappers() {
        let pool = WorkerPool::new(4);
        let g = random_digraph(40, 0.2, 25, 3);
        assert_eq!(semiring_closure(&g, &pool), apsp(&g, &pool));
        let a = random_adjacency(40, 0.1, 4);
        assert_eq!(semiring_closure(&a, &pool), transitive_closure(&a, &pool));
    }
}
