//! # paco-graph
//!
//! Graph path closures over closed semirings: the Floyd–Warshall /
//! Gaussian-elimination-paradigm workload of the PACO reproduction.
//!
//! The paper states its matrix algorithms over a closed semiring (Sect.
//! III-E); this crate instantiates that generality on the canonical problem
//! that *needs* it — the in-place all-pairs closure
//! `D[i][j] ← D[i][j] ⊕ (D[i][k] ⊗ D[k][j])`:
//!
//! * over [`MinPlus`](paco_core::semiring::MinPlus) (the tropical semiring)
//!   it computes **all-pairs shortest paths** (the `Apsp` request of
//!   `paco_service`);
//! * over [`BoolSemiring`](paco_core::semiring::BoolSemiring) it computes the
//!   **transitive closure** of a directed graph;
//! * over any other semiring with **idempotent `⊕`** (`a ⊕ a = a`) it
//!   computes the corresponding path closure (the generic `Closure` request).
//!   The idempotency requirement is inherent to the in-place Floyd–Warshall
//!   update (entries are relaxed repeatedly, so duplicate contributions must
//!   be absorbing); it is enforced at compile time — every entry point bounds
//!   its element type on
//!   [`IdempotentSemiring`](paco_core::semiring::IdempotentSemiring), so a
//!   non-idempotent semiring
//!   such as [`WrappingRing`](paco_core::semiring::WrappingRing) is rejected
//!   instead of silently producing a meaningless result.
//!
//! Mirroring the workspace taxonomy (see the README), the problem ships in
//! three variants that all execute the identical sequential leaf kernel:
//!
//! | variant | entry point | scheduled by |
//! |---|---|---|
//! | sequential CO | [`fw_seq`] | — (the A/B/C/D recursion of [`seq`]) |
//! | PO | [`fw_po`] | randomized work stealing (`rayon::join`) |
//! | PACO | [`FwRun`] via `paco_service::Session` | 1-PIECE processor lists on a pinned `WorkerPool` |
//!
//! The kernels are generic over [`paco_cache_sim::Tracker`], and the
//! sequential and PACO variants have `*_traced` twins ([`fw_seq_traced`],
//! [`fw_paco_traced`]) that replay the exact same execution through the ideal
//! distributed cache simulator, so the paper's `Q₁` vs `Q^Σ_p`/`Q^max_p`
//! accounting applies to this workload too.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernel;
pub mod paco;
pub mod po;
pub mod seq;

pub use kernel::{fw_reference, relax, FwAddr, FwTable, DEFAULT_BASE};
pub use paco::{fw_paco_traced, plan_fw, FwPlan, FwRun, LeafCall};
pub use po::fw_po;
pub use seq::{fw_seq, fw_seq_traced};

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::matrix::Matrix;
    use paco_core::semiring::{BoolSemiring, IdempotentSemiring, MinPlus, Semiring};
    use paco_core::workload::{random_adjacency, random_digraph};
    use paco_runtime::WorkerPool;

    /// Close a matrix with the PACO Floyd–Warshall on `pool.p()` processors —
    /// what the retired `apsp`/`transitive_closure`/`semiring_closure`
    /// wrappers did before the service layer took over scheduling.
    fn closure<S: IdempotentSemiring>(adj: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
        let run = FwRun::prepare(adj, pool.p(), DEFAULT_BASE);
        run.plan().execute(pool, |proc, call| run.step(proc, call));
        run.finish()
    }

    #[test]
    fn apsp_finds_the_short_way_around() {
        // A weighted 5-cycle with one expensive chord: going around is cheaper.
        let inf = MinPlus::zero();
        let n = 5;
        let mut adj = Matrix::filled(n, n, inf);
        for i in 0..n {
            adj.set(i, i, MinPlus::one());
            adj.set(i, (i + 1) % n, MinPlus(1.0));
        }
        adj.set(0, 3, MinPlus(10.0)); // chord is worse than 1+1+1
        let pool = WorkerPool::new(3);
        let d = closure(&adj, &pool);
        assert_eq!(d.get(0, 3), MinPlus(3.0));
        assert_eq!(d.get(3, 0), MinPlus(2.0));
        assert_eq!(d.get(2, 2), MinPlus::one());
    }

    #[test]
    fn transitive_closure_of_two_components() {
        // Vertices 0..3 form a path, 3..6 a separate cycle: no cross reachability.
        let mut adj = Matrix::filled(6, 6, BoolSemiring(false));
        for i in 0..6 {
            adj.set(i, i, BoolSemiring(true));
        }
        adj.set(0, 1, BoolSemiring(true));
        adj.set(1, 2, BoolSemiring(true));
        adj.set(3, 4, BoolSemiring(true));
        adj.set(4, 5, BoolSemiring(true));
        adj.set(5, 3, BoolSemiring(true));
        let pool = WorkerPool::new(2);
        let c = closure(&adj, &pool);
        assert!(c.get(0, 2).0 && !c.get(2, 0).0, "path is one-way");
        assert!(
            c.get(3, 5).0 && c.get(5, 4).0,
            "cycle is strongly connected"
        );
        assert!(!c.get(0, 3).0 && !c.get(3, 0).0, "components stay separate");
    }

    #[test]
    fn generic_closure_agrees_with_the_reference() {
        let pool = WorkerPool::new(4);
        let g = random_digraph(40, 0.2, 25, 3);
        assert_eq!(closure(&g, &pool), fw_reference(&g));
        let a = random_adjacency(40, 0.1, 4);
        assert_eq!(closure(&a, &pool), fw_reference(&a));
    }
}
