//! Sequential Floyd–Warshall kernels over a closed semiring.
//!
//! All-pairs path closure is the canonical "Gaussian-elimination paradigm"
//! problem: given an `n × n` matrix `D` over a closed semiring, compute
//!
//! ```text
//! D[i][j] ← D[i][j] ⊕ (D[i][k] ⊗ D[k][j])      for k, then i, then j
//! ```
//!
//! Over [`MinPlus`](paco_core::semiring::MinPlus) this is all-pairs shortest
//! paths; over [`BoolSemiring`](paco_core::semiring::BoolSemiring) it is
//! transitive closure.  The update is *in-place*: the same matrix appears on
//! both sides, which is what distinguishes Floyd–Warshall from the semiring
//! matrix multiplication of `paco-matmul` and gives the recursion its
//! A/B/C/D structure (see [`crate::seq`]).
//!
//! Every divide-and-conquer variant in this crate — sequential CO, PO and
//! PACO — bottoms out in the single generalized kernel [`relax`]: a
//! `k`-outermost sweep restricted to a `rows × cols` block with via-vertices
//! `via`.  Because the whole computation lives in one table, the four roles of
//! the recursion (diagonal self-closure, row-aligned, column-aligned and fully
//! disjoint updates) are all instances of `relax` with different index ranges.
//! The kernel is generic over [`Tracker`] so the identical code path can be
//! replayed through the ideal distributed cache simulator.

use paco_cache_sim::layout::{AddressSpace, Layout2D};
use paco_cache_sim::Tracker;
use paco_core::matrix::Matrix;
use paco_core::metrics::sched::kernel as kernel_metrics;
use paco_core::semiring::{IdempotentSemiring, Semiring};
use paco_core::shared::SharedGrid;
use std::ops::Range;

/// Default base-case side of the cache-oblivious recursion (an alias of the
/// hoisted workspace default in [`paco_core::tuning`]).
pub const DEFAULT_BASE: usize = paco_core::tuning::FW_BASE;

/// Simulated-address-space placement of the Floyd–Warshall working set (the
/// single `n × n` distance matrix); used only when replaying a kernel through
/// the cache simulator.
#[derive(Debug, Clone, Copy)]
pub struct FwAddr {
    /// The `n × n` distance/closure matrix.
    pub dist: Layout2D,
}

impl FwAddr {
    /// Lay out the working set for an `n`-vertex instance.
    pub fn new(n: usize) -> Self {
        let mut space = AddressSpace::new();
        Self {
            dist: space.alloc_2d(n.max(1), n.max(1)),
        }
    }
}

/// The shared `n × n` distance matrix every task relaxes in place.
///
/// Concurrent tasks follow the [`paco_core::shared`] discipline: within one
/// phase of the recursion each task writes a block no other running task
/// touches, and only reads blocks finished in earlier phases (the diagonal
/// block of the current `k`-range) or owned rows/columns of its own block.
pub struct FwTable<S> {
    grid: SharedGrid<S>,
    n: usize,
}

impl<S: Semiring> FwTable<S> {
    /// Copy a square adjacency/distance matrix into a shared table.
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(adj: &Matrix<S>) -> Self {
        assert_eq!(
            adj.rows(),
            adj.cols(),
            "Floyd–Warshall needs a square matrix"
        );
        let n = adj.rows();
        Self {
            grid: SharedGrid::from_fn(n, n, |i, j| adj.get(i, j)),
            n,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shared cell grid.
    pub fn grid(&self) -> &SharedGrid<S> {
        &self.grid
    }

    /// Snapshot the table into an owning matrix; only call when no task is
    /// running.
    pub fn to_matrix(&self) -> Matrix<S> {
        Matrix::from_vec(self.n, self.n, self.grid.snapshot())
    }
}

/// Reference implementation: the classic iterative Floyd–Warshall triple loop
/// (`k` outermost), `O(n³)` semiring operations.  Ground truth for every other
/// variant.
pub fn fw_reference<S: IdempotentSemiring>(adj: &Matrix<S>) -> Matrix<S> {
    assert_eq!(
        adj.rows(),
        adj.cols(),
        "Floyd–Warshall needs a square matrix"
    );
    let n = adj.rows();
    let mut d = adj.clone();
    for k in 0..n {
        for i in 0..n {
            let d_ik = d.get(i, k);
            for j in 0..n {
                d.set(i, j, d.get(i, j).add(d_ik.mul(d.get(k, j))));
            }
        }
    }
    d
}

/// The generalized base kernel: relax every cell of the block `rows × cols`
/// through every via-vertex `k ∈ via`, `k` outermost:
///
/// ```text
/// D[i][j] ← D[i][j] ⊕ (D[i][k] ⊗ D[k][j])    for k ∈ via, i ∈ rows, j ∈ cols
/// ```
///
/// The `k`-outermost order is what makes the in-place update correct when the
/// block overlaps row `k` or column `k` of the table (the A/B/C roles of the
/// recursion); for fully disjoint blocks (the D role) it is simply a blocked
/// semiring matmul-accumulate.
pub fn relax<S: IdempotentSemiring, T: Tracker + ?Sized>(
    table: &FwTable<S>,
    rows: Range<usize>,
    cols: Range<usize>,
    via: Range<usize>,
    tracker: &mut T,
    addr: &FwAddr,
) {
    let grid = table.grid();
    // Fast path: when nothing observes the per-element accesses
    // (`T::TRACKING` is false, i.e. the production `NullTracker`), relax whole
    // rows through the semiring's `SpecializedKernel` hooks.  Same `k`-then-
    // `i`-then-`j` order and the same hoisted `d_ik`, so results are
    // bit-identical to the generic loop below (`tests/kernel_agreement.rs`
    // runs both and compares).  The `i == k` row aliases source and
    // destination and gets the dedicated aliased hook.
    if !T::TRACKING && !cols.is_empty() {
        let len = cols.len();
        for k in via {
            for i in rows.clone() {
                let d_ik = grid.get(i, k);
                // SAFETY: `cell_ptr` is in bounds (`cols.end <= n`, checked by
                // the grid's debug asserts), rows are contiguous with stride
                // `n`, and the wavefront discipline of `paco_core::shared`
                // gives this task exclusive write access to its block; the
                // source row `k` is only read concurrently, never written
                // (the aliased `i == k` case never builds `src`).
                let handled = if i == k {
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(grid.cell_ptr(i, cols.start), len)
                    };
                    S::relax_row_aliased(dst, d_ik)
                } else {
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(grid.cell_ptr(i, cols.start), len)
                    };
                    let src = unsafe {
                        std::slice::from_raw_parts(grid.cell_ptr(k, cols.start).cast_const(), len)
                    };
                    S::relax_row(dst, d_ik, src)
                };
                if !handled {
                    for j in cols.clone() {
                        let relaxed = grid.get(i, j).add(d_ik.mul(grid.get(k, j)));
                        grid.set(i, j, relaxed);
                    }
                }
            }
        }
        kernel_metrics::record_fw_leaf(S::SPECIALIZED);
        return;
    }
    for k in via {
        for i in rows.clone() {
            tracker.read(addr.dist.addr(i, k));
            let d_ik = grid.get(i, k);
            for j in cols.clone() {
                tracker.read(addr.dist.addr(k, j));
                tracker.read(addr.dist.addr(i, j));
                let relaxed = grid.get(i, j).add(d_ik.mul(grid.get(k, j)));
                grid.set(i, j, relaxed);
                tracker.write(addr.dist.addr(i, j));
            }
        }
    }
    kernel_metrics::record_fw_leaf(false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_cache_sim::NullTracker;
    use paco_core::semiring::{BoolSemiring, MinPlus};
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn reference_on_a_known_instance() {
        // 0 →(3) 1 →(1) 2, plus a direct 0 →(7) 2 edge: shortest 0→2 is 4.
        let inf = MinPlus::zero();
        let one = MinPlus::one();
        let adj = Matrix::from_vec(
            3,
            3,
            vec![
                one,
                MinPlus(3.0),
                MinPlus(7.0),
                inf,
                one,
                MinPlus(1.0),
                inf,
                inf,
                one,
            ],
        );
        let d = fw_reference(&adj);
        assert_eq!(d.get(0, 2), MinPlus(4.0));
        assert_eq!(d.get(0, 1), MinPlus(3.0));
        assert_eq!(d.get(1, 0), inf);
        assert_eq!(d.get(2, 2), one);
    }

    #[test]
    fn reference_transitive_closure_of_a_cycle() {
        // A directed 4-cycle reaches everything.
        let adj = Matrix::from_fn(4, 4, |i, j| BoolSemiring(i == j || (i + 1) % 4 == j));
        let c = fw_reference(&adj);
        for i in 0..4 {
            for j in 0..4 {
                assert!(c.get(i, j).0, "{i} must reach {j}");
            }
        }
    }

    #[test]
    fn full_range_relax_equals_reference() {
        let adj = random_digraph(24, 0.25, 20, 1);
        let table = FwTable::from_matrix(&adj);
        let addr = FwAddr::new(24);
        relax(&table, 0..24, 0..24, 0..24, &mut NullTracker, &addr);
        assert_eq!(table.to_matrix(), fw_reference(&adj));
    }

    #[test]
    fn bool_full_range_relax_equals_reference() {
        let adj = random_adjacency(20, 0.15, 2);
        let table = FwTable::from_matrix(&adj);
        let addr = FwAddr::new(20);
        relax(&table, 0..20, 0..20, 0..20, &mut NullTracker, &addr);
        assert_eq!(table.to_matrix(), fw_reference(&adj));
    }

    #[test]
    #[should_panic]
    fn non_square_input_is_rejected() {
        let adj: Matrix<MinPlus> = Matrix::filled(2, 3, MinPlus::one());
        let _ = FwTable::from_matrix(&adj);
    }

    #[test]
    fn table_round_trip() {
        let adj = random_digraph(8, 0.5, 9, 3);
        let table = FwTable::from_matrix(&adj);
        assert_eq!(table.n(), 8);
        assert_eq!(table.to_matrix(), adj);
    }
}
