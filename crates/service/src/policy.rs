//! The [`BatchPolicy`]: how an [`Engine`](crate::Engine) coalesces and
//! routes concurrent submissions.

use std::time::Duration;

/// How submissions are routed across an engine's shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Deal submissions out in arrival order, one shard after the next.
    /// Cheapest and fair for uniform request sizes.
    #[default]
    RoundRobin,
    /// Route each submission to the shard with the smallest outstanding
    /// work, measured in compiled plan steps.  Worth its extra bookkeeping
    /// when request sizes are wildly mixed — it keeps one giant request from
    /// queueing small ones behind it while other shards idle.
    SizeBalanced,
}

/// The coalescing policy of an [`Engine`](crate::Engine): when an executor
/// wakes to work, how greedily it gathers a batch, and how submissions are
/// spread across shards.
///
/// An executor that finds its queue non-empty starts a *gathering window*:
/// it drains the queue into a batch once [`max_batch`](Self::max_batch)
/// requests are available **or** [`max_wait`](Self::max_wait) has elapsed
/// since the window opened, whichever comes first (shutdown also closes the
/// window immediately).  The batch then executes as one merged pool pass with
/// max-of-waves barriers, so everything gathered into one window shares the
/// schedule.
///
/// ```
/// use paco_service::{BatchPolicy, Routing};
/// use std::time::Duration;
///
/// // Low-latency ingress: never dawdle, take what's there.
/// let greedy = BatchPolicy { max_wait: Duration::ZERO, ..BatchPolicy::default() };
///
/// // Throughput ingress: two pools, wait up to 1ms to fill big batches.
/// let wide = BatchPolicy {
///     max_batch: 128,
///     max_wait: Duration::from_millis(1),
///     shards: 2,
///     routing: Routing::SizeBalanced,
/// };
/// assert!(greedy.max_batch == wide.max_batch / 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests one executor pass may coalesce.  `1` disables
    /// coalescing entirely: every request runs as its own pass.
    pub max_batch: usize,
    /// How long a gathering window stays open waiting for the batch to fill
    /// after the first request arrives.  `Duration::ZERO` is the greedy
    /// policy: drain whatever is queued right now and run it.
    pub max_wait: Duration,
    /// Number of executor shards; each owns its own worker pool (of the
    /// engine's `p` processors) and its own queue, and runs passes
    /// independently of — and concurrently with — its siblings.
    pub shards: usize,
    /// How submissions pick a shard.
    pub routing: Routing,
}

impl Default for BatchPolicy {
    /// One shard, round-robin (trivially), batches of up to 64, and a 200µs
    /// gathering window — enough for a burst of producers to coalesce
    /// without a human-visible latency cost.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            shards: 1,
            routing: Routing::RoundRobin,
        }
    }
}

impl BatchPolicy {
    /// Validate the policy at engine construction.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `shards` is zero.
    pub(crate) fn validate(&self) {
        assert!(self.max_batch >= 1, "BatchPolicy::max_batch must be >= 1");
        assert!(self.shards >= 1, "BatchPolicy::shards must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        BatchPolicy::default().validate();
        assert_eq!(BatchPolicy::default().routing, Routing::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        BatchPolicy {
            max_batch: 0,
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn zero_shards_is_rejected() {
        BatchPolicy {
            shards: 0,
            ..BatchPolicy::default()
        }
        .validate();
    }
}
