//! The [`BatchPolicy`]: how an [`Engine`](crate::Engine) admits, coalesces
//! and routes concurrent submissions, plus the per-request [`Priority`]
//! classes its queues drain by.

use std::time::Duration;

/// How submissions are routed across an engine's shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Deal submissions out in arrival order, one shard after the next.
    /// Cheapest and fair for uniform request sizes.
    #[default]
    RoundRobin,
    /// Route each submission to the shard with the smallest outstanding
    /// work, measured in compiled plan steps.  Worth its extra bookkeeping
    /// when request sizes are wildly mixed — it keeps one giant request from
    /// queueing small ones behind it while other shards idle.  Under a
    /// [`capacity`](BatchPolicy::capacity) bound, shards whose queues are
    /// full are skipped while any shard still has space.
    SizeBalanced,
}

/// Urgency class of a submitted request.
///
/// Executors drain strictly by class: when a gathering window closes, every
/// queued [`High`](Priority::High) request enters the pass before any
/// [`Normal`](Priority::Normal) one, which enters before any
/// [`Low`](Priority::Low) one (FIFO within a class).  Classes never starve
/// completely — a lower class runs as soon as no higher-class request is
/// queued on the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: drained only when nothing more urgent is queued.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work: always drained first.
    High,
}

impl Priority {
    /// Number of priority classes (one drain lane each).
    pub const CLASSES: usize = 3;

    /// Drain-lane index: lane 0 drains first.
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// The admission and coalescing policy of an [`Engine`](crate::Engine):
/// how many requests each shard may hold, when an executor wakes to work,
/// how greedily it gathers a batch, and how submissions are spread across
/// shards.
///
/// An executor that finds its queue non-empty starts a *gathering window*:
/// it drains the queue into a batch once [`max_batch`](Self::max_batch)
/// requests are available **or** the window has been open for
/// [`max_wait`](Self::max_wait), whichever comes first (shutdown also closes
/// the window immediately).  With [`adaptive`](Self::adaptive) set, the
/// window length is retuned from the observed arrival rate instead of
/// staying pinned at `max_wait` — see the field docs.  The batch then
/// executes as one merged pool pass with max-of-waves barriers, so
/// everything gathered into one window shares the schedule.
///
/// [`capacity`](Self::capacity) bounds each shard's ingress queue, which is
/// what turns the engine from "accepts everything, may hoard unbounded
/// memory behind a stalled shard" into an admission-controlled front door:
/// [`Client::try_submit`](crate::Client::try_submit) fails fast with
/// [`Overloaded`](crate::Overloaded) when the routed shard is full, and
/// [`Client::submit`](crate::Client::submit) blocks (backpressure) until the
/// executor drains.
///
/// ```
/// use paco_service::{BatchPolicy, Routing};
/// use std::time::Duration;
///
/// // Low-latency ingress: never dawdle, take what's there.
/// let greedy = BatchPolicy { max_wait: Duration::ZERO, ..BatchPolicy::default() };
///
/// // Throughput ingress: two bounded pools, windows tuned from the
/// // arrival rate (up to 1ms), overload shed at 256 queued per shard.
/// let wide = BatchPolicy {
///     max_batch: 128,
///     max_wait: Duration::from_millis(1),
///     adaptive: true,
///     capacity: Some(256),
///     shards: 2,
///     routing: Routing::SizeBalanced,
/// };
/// assert!(greedy.max_batch == wide.max_batch / 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests one executor pass may coalesce.  `1` disables
    /// coalescing entirely: every request runs as its own pass.
    pub max_batch: usize,
    /// How long a gathering window stays open waiting for the batch to fill
    /// after the first request arrives.  `Duration::ZERO` is the greedy
    /// policy: drain whatever is queued right now and run it.  With
    /// [`adaptive`](Self::adaptive) set this is the window *ceiling*.
    pub max_wait: Duration,
    /// Retune the gathering window from the observed per-shard arrival rate
    /// (Little's-law style): with `λ` requests/s arriving, a window of
    /// `max_batch / λ` seconds is what it takes to gather a full batch, so
    /// the executor waits `min(max_wait, max_batch / λ)` — long windows when
    /// traffic is sparse (coalesce what little arrives), near-zero windows
    /// under overload (don't add latency the queue already provides).
    /// Default `false`: the window is always exactly `max_wait`.
    pub adaptive: bool,
    /// Bound on each shard's ingress queue (requests queued but not yet
    /// drained into a pass).  `None` is the legacy unbounded behaviour: no
    /// submission is ever refused for load, and a stalled shard can hoard
    /// memory without limit — fine for trusted closed-loop callers, a
    /// footgun for open-loop traffic.  `Some(n)` caps outstanding work:
    /// admission beyond it fails fast ([`try_submit`](crate::Client::try_submit))
    /// or blocks ([`submit`](crate::Client::submit)).  `Some(0)` is rejected
    /// by validation: a queue nothing can enter would deadlock every
    /// blocking submit.
    pub capacity: Option<usize>,
    /// Number of executor shards; each owns its own worker pool (of the
    /// engine's `p` processors) and its own queue, and runs passes
    /// independently of — and concurrently with — its siblings.
    pub shards: usize,
    /// How submissions pick a shard.
    pub routing: Routing,
}

impl Default for BatchPolicy {
    /// One shard, round-robin (trivially), batches of up to 64, a static
    /// 200µs gathering window — enough for a burst of producers to coalesce
    /// without a human-visible latency cost — and an **unbounded** queue
    /// (the legacy pre-admission-control behaviour; set
    /// [`capacity`](Self::capacity) for open-loop traffic).
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            adaptive: false,
            capacity: None,
            shards: 1,
            routing: Routing::RoundRobin,
        }
    }
}

impl BatchPolicy {
    /// Validate the policy at engine construction.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `shards` is zero, or if `capacity` is
    /// `Some(0)` (a queue nothing can enter; for "no queueing" use
    /// `Some(1)`, for the legacy unbounded queue use `None`).
    pub(crate) fn validate(&self) {
        assert!(self.max_batch >= 1, "BatchPolicy::max_batch must be >= 1");
        assert!(self.shards >= 1, "BatchPolicy::shards must be >= 1");
        assert!(
            self.capacity != Some(0),
            "BatchPolicy::capacity must be >= 1 when bounded (use None for unbounded)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        BatchPolicy::default().validate();
        assert_eq!(BatchPolicy::default().routing, Routing::RoundRobin);
        // The legacy default stays unbounded and non-adaptive so PR-5-era
        // configurations keep their exact semantics.
        assert_eq!(BatchPolicy::default().capacity, None);
        assert!(!BatchPolicy::default().adaptive);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        BatchPolicy {
            max_batch: 0,
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn zero_shards_is_rejected() {
        BatchPolicy {
            shards: 0,
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        // `Some(0)` would silently deadlock every blocking submit; the
        // unbounded spelling is `None`, not a zero bound.
        BatchPolicy {
            capacity: Some(0),
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    fn bounded_capacity_validates() {
        BatchPolicy {
            capacity: Some(1),
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    fn priority_classes_order_and_lanes() {
        // Ord follows urgency (High > Normal > Low); lanes drain inversely.
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.lane(), 0);
        assert_eq!(Priority::Normal.lane(), 1);
        assert_eq!(Priority::Low.lane(), 2);
    }
}
