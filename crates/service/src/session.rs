//! The [`Session`]: one worker pool, one tuning config, three verbs.

use crate::backend::Backend;
use crate::cache::{PlanCacheStats, SkeletonCache};
use crate::exec::{PassCore, PendingRequest};
use crate::solve::{Prepared, Solve};
use crate::ticket::{self, decode, Ticket};
use paco_core::arena::{ArenaStats, ScratchArena};
use paco_core::machine::available_processors;
use paco_core::tuning::Tuning;
use paco_dist::{LowerCache, LowerStats};
use paco_incr::HandleRegistry;
use parking_lot::Mutex;
use std::sync::Arc;

/// Scheduling cost of the most recent [`Session::run`],
/// [`Session::run_batch`] or [`Session::flush`], read off the
/// [`paco_core::metrics::sched`] counters (recorded while
/// [`Tuning::trace`] is on, the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Requests executed by the pass.
    pub requests: u64,
    /// Plan waves executed — for a batch this is the *maximum* of the
    /// constituent wave counts, the whole point of batching.
    pub plan_waves: u64,
    /// Plan steps (placed tasks) executed.
    pub plan_steps: u64,
    /// Worker-pool barriers (spawn/join round-trips) issued.
    pub pool_barriers: u64,
}

/// The synchronous front door: owns one pinned
/// [`WorkerPool`](paco_runtime::WorkerPool) plus a [`Tuning`] config, and
/// executes every PACO workload through three verbs — [`Session::run`],
/// [`Session::run_batch`] and [`Session::submit`]/[`Session::flush`].
///
/// Every verb compiles through the session's **plan cache**: the shape-only
/// [`Skeleton`](crate::Skeleton) phase of [`Solve`] is cached keyed on
/// `(shape_key, p, tuning epoch)`, so repeated same-shaped requests pay the
/// pruned-BFS planning cost once and only re-bind their buffers
/// ([`Session::cache_stats`] shows the hits).  Mutating knobs through
/// [`Session::update_tuning`] bumps the epoch and invalidates every cached
/// skeleton.
///
/// A session is the single-shard, caller-driven special case of the same
/// executor core the concurrent [`Engine`](crate::Engine) shards run:
/// `flush()` is exactly one engine pass, executed on the calling thread
/// instead of a dedicated executor.  Reach for the engine when requests
/// arrive from many threads or should execute without the owner calling
/// back in; stay with the session when one thread drives everything and
/// wants zero background threads.
///
/// ```
/// use paco_service::{Session, Sort};
///
/// let session = Session::builder().procs(2).build();
/// let sorted = session.run(Sort { keys: vec![3.0, 1.0, 2.0] });
/// assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
/// ```
pub struct Session {
    core: PassCore,
    cache: SkeletonCache,
    queue: Mutex<Vec<PendingRequest>>,
    /// The scratch pool every bind checks its temporary buffers out of;
    /// buffers return at finish, so warm same-shaped passes recycle their
    /// tables/temps instead of hitting the allocator.
    arena: Arc<ScratchArena>,
    backend: Backend,
    /// Lowered communication schedules, keyed per (skeleton payload,
    /// placement) — the distributed analogue of the skeleton cache.
    lower: LowerCache,
    /// Closed-graph handles of the incremental subsystem: `IncClose`
    /// registers state here, `IncUpdate`/`IncSnapshot`/`IncDrop` look it up.
    registry: Arc<HandleRegistry>,
}

impl Session {
    /// A session on `p` pinned processors with environment-derived tuning
    /// ([`Tuning::from_env`]).
    pub fn new(p: usize) -> Self {
        Self::builder().procs(p).build()
    }

    /// A session sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::builder().build()
    }

    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The processor count every request is compiled for.
    pub fn p(&self) -> usize {
        self.core.p()
    }

    /// The tuning config every request is compiled with.
    pub fn tuning(&self) -> &Tuning {
        self.core.tuning()
    }

    /// Mutate the tuning knobs for subsequent requests.  Bumps the
    /// [`Tuning::epoch`], so every skeleton cached under the old knobs is
    /// invalidated — the next request of each shape recompiles.
    pub fn update_tuning(&mut self, mutate: impl FnOnce(&mut Tuning)) {
        self.core.update_tuning(mutate);
    }

    /// Scheduling counters of the most recent `run`/`run_batch`/`flush`
    /// (all-zero until one executed with [`Tuning::trace`] on).
    pub fn last_stats(&self) -> RunStats {
        self.core.last_stats()
    }

    /// This session's plan-cache counters: skeleton hits, misses and
    /// evictions, plus the current entry count.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// The backend this session executes on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The session's closed-graph handle registry.  Construct the
    /// incremental requests ([`IncClose`](crate::IncClose),
    /// [`IncUpdate`](crate::IncUpdate), …) against this registry so their
    /// handles resolve when the session executes them.
    pub fn registry(&self) -> Arc<HandleRegistry> {
        Arc::clone(&self.registry)
    }

    /// This session's lowering-cache counters: communication schedules
    /// served from cache vs. lowered fresh.  Always zero on
    /// [`Backend::Local`].  Per-run traffic itself is on the global
    /// [`paco_core::metrics::comm`] counters — snapshot them around a run
    /// to see words/messages per rank.
    pub fn lower_stats(&self) -> LowerStats {
        self.lower.stats()
    }

    /// This session's scratch-arena counters: buffer checkouts served from
    /// the pool (hits) vs. fresh allocations (misses).  The first pass of a
    /// shape is all misses; warm re-runs should show hits — the
    /// `service/arena-reuse-ratio` gauge in the bench harness tracks
    /// [`ArenaStats::reuse_ratio`] of exactly these counters.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Compile `req` through the plan cache: reuse the cached skeleton for
    /// its shape (or compile and insert one), then bind the request's data.
    ///
    /// On [`Backend::Distributed`] the skeleton is compiled for `ranks`
    /// processors and bound through [`Solve::bind_dist`]; requests without
    /// a distributed binding fall back to a local skeleton and bind (the
    /// cache keys the two by their differing processor counts).
    fn compile_cached<R: Solve>(&self, req: R) -> Box<dyn Prepared> {
        let tuning = self.core.tuning();
        let req = match self.backend {
            Backend::Local => req,
            Backend::Distributed { ranks } => {
                let skeleton =
                    self.cache
                        .get_or_compile(req.shape_key(), ranks, tuning.epoch, || {
                            req.skeleton(tuning, ranks)
                        });
                match req.bind_dist(&skeleton, tuning, ranks, &self.arena, &self.lower) {
                    Ok(compiled) => return compiled.inner,
                    Err(req) => req,
                }
            }
        };
        let p = self.p();
        let skeleton = self
            .cache
            .get_or_compile(req.shape_key(), p, tuning.epoch, || req.skeleton(tuning, p));
        req.bind(&skeleton, tuning, p, &self.arena).inner
    }

    /// Execute one request and return its output.
    pub fn run<R: Solve>(&self, req: R) -> R::Output {
        let mut prepared = self.compile_cached(req);
        decode(self.core.run_one(&mut prepared))
    }

    /// Execute a homogeneous batch of requests through **one** pool pass.
    ///
    /// The compiled plans are merged wave-by-wave
    /// ([`Plan::batch`](paco_runtime::schedule::Plan::batch)), so the pass
    /// costs as many barriers as the *deepest* constituent — not the sum —
    /// across every workload type, including the MM, Strassen and sort paths
    /// that had no batched entry point before this crate.  Same-shaped
    /// requests share one cached skeleton: the batch compiles the plan once
    /// and binds it `N` times.  Outputs come back in request order.
    pub fn run_batch<R: Solve>(&self, reqs: impl IntoIterator<Item = R>) -> Vec<R::Output> {
        let mut prepared: Vec<_> = reqs.into_iter().map(|r| self.compile_cached(r)).collect();
        let refs: Vec<&dyn Prepared> = prepared.iter().map(|p| &**p).collect();
        self.core.execute_merged(&refs);
        prepared
            .iter_mut()
            .map(|p| decode(p.take_output()))
            .collect()
    }

    /// Queue a request for the next [`Session::flush`]; the request is
    /// compiled now (under the current tuning, through the plan cache) and
    /// executed later.  Queued submissions may mix workload types freely.
    pub fn submit<R: Solve>(&self, req: R) -> Ticket<R::Output> {
        let prepared = self.compile_cached(req);
        let slot = ticket::new_slot();
        // Session submissions carry default admission metadata: `flush`
        // executes everything queued, so deadlines and priorities (engine
        // concepts) never apply here.
        self.queue.lock().push(PendingRequest::new(
            prepared,
            slot.clone(),
            crate::client::SubmitOptions::default(),
        ));
        Ticket::new(slot)
    }

    /// Number of submissions waiting for a flush.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }

    /// Execute every queued submission — a heterogeneous mix compiles to one
    /// merged wave plan — through one pool pass, resolving their
    /// [`Ticket`]s.  Returns the number of requests flushed.
    ///
    /// If a workload step panics mid-pass, every request of the pass is
    /// *poisoned* (their shared state may be half-written, so no output can
    /// be salvaged): the tickets report the loss explicitly instead of
    /// pretending the flush never happened, and the panic is re-thrown.
    /// This is the same pass the concurrent [`Engine`](crate::Engine) runs —
    /// the only difference is that an engine executor swallows the re-throw
    /// and keeps serving.
    pub fn flush(&self) -> usize {
        let mut pending = std::mem::take(&mut *self.queue.lock());
        match self.core.run_pass(&mut pending) {
            Ok(n) => n,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Configures and builds a [`Session`].
#[derive(Debug, Default)]
pub struct SessionBuilder {
    procs: Option<usize>,
    tuning: Option<Tuning>,
    base: Option<usize>,
    backend: Backend,
}

impl SessionBuilder {
    /// Pin the session to `p` processors (default: the machine's available
    /// parallelism).
    pub fn procs(mut self, p: usize) -> Self {
        assert!(p >= 1, "a session needs at least one processor");
        self.procs = Some(p);
        self
    }

    /// Use an explicit tuning config (default: [`Tuning::from_env`], which
    /// honours the `PACO_BASE` override).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Convenience: set every base/grain-size knob at once
    /// ([`Tuning::with_base`]) on top of whatever tuning the builder ends up
    /// with.
    pub fn base(mut self, base: usize) -> Self {
        self.base = Some(base);
        self
    }

    /// Execute requests on `backend` (default: [`Backend::Local`]).  With
    /// [`Backend::Distributed`], eligible requests (LCS, closure/APSP, MM,
    /// Strassen) run as `ranks` shared-nothing message-passing ranks with
    /// exact communication metering; everything else falls back to the
    /// local pool transparently.
    pub fn backend(mut self, backend: Backend) -> Self {
        if let Backend::Distributed { ranks } = backend {
            assert!(ranks >= 1, "a distributed session needs at least one rank");
        }
        self.backend = backend;
        self
    }

    /// Spin up the worker pool and finish the session.
    pub fn build(self) -> Session {
        let mut tuning = self.tuning.unwrap_or_else(Tuning::from_env);
        if let Some(base) = self.base {
            tuning = tuning.with_base(base);
        }
        let p = self.procs.unwrap_or_else(available_processors);
        Session {
            core: PassCore::new(p, tuning),
            cache: SkeletonCache::new(SkeletonCache::DEFAULT_CAP),
            queue: Mutex::new(Vec::new()),
            arena: Arc::new(ScratchArena::new()),
            backend: self.backend,
            lower: LowerCache::new(),
            registry: Arc::new(HandleRegistry::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{Compiled, Prepared, ShapeKey, Skeleton};
    use crate::ticket::TicketError;
    use crate::Lcs;
    use paco_runtime::schedule::{Plan, Step};
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// A request whose single step panics, for exercising the flush
    /// poisoning path.
    struct Exploding {
        skeleton: Arc<Plan<usize>>,
    }

    impl Prepared for Exploding {
        fn skeleton(&self) -> &Plan<usize> {
            &self.skeleton
        }
        fn run_step(&self, _proc: usize, _idx: usize) {
            panic!("exploding step");
        }
        fn take_output(&mut self) -> Box<dyn Any + Send> {
            Box::new(())
        }
    }

    pub(crate) struct ExplodingReq;

    impl Solve for ExplodingReq {
        type Output = ();
        fn shape_key(&self) -> ShapeKey {
            ShapeKey::new("test-exploding", std::iter::empty())
        }
        fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
            let plan = Arc::new(Plan::single_wave(p, vec![Step { proc: 0, job: 0 }]));
            Skeleton::new(Arc::clone(&plan), &plan)
        }
        fn bind(
            self,
            skeleton: &Skeleton,
            _tuning: &Tuning,
            _p: usize,
            _arena: &Arc<ScratchArena>,
        ) -> Compiled<()> {
            Compiled::from_prepared(Box::new(Exploding {
                skeleton: Arc::clone(skeleton.index()),
            }))
        }
    }

    #[test]
    fn panicking_flush_poisons_every_ticket_of_the_pass() {
        let session = Session::new(2);
        let good = session.submit(Lcs {
            a: vec![1, 2, 3],
            b: vec![2, 3],
        });
        let bad = session.submit(ExplodingReq);

        // The flush re-throws the step panic...
        let outcome = catch_unwind(AssertUnwindSafe(|| session.flush()));
        assert!(outcome.is_err(), "the step panic must propagate");
        // ...the queue is drained (nothing half-executed can be re-driven)...
        assert_eq!(session.pending(), 0);
        // ...and both tickets report the loss instead of "flush me first".
        assert!(!good.ready());
        assert_eq!(good.try_wait(), Err(TicketError::Poisoned));
        assert_eq!(good.wait(), Err(TicketError::Poisoned));
        let take = catch_unwind(AssertUnwindSafe(|| good.take()));
        let payload = take.expect_err("poisoned take must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .expect("panic message is a str literal");
        assert!(
            msg.contains("pass executing this request panicked"),
            "{msg}"
        );
        assert_eq!(bad.try_wait(), Err(TicketError::Poisoned));

        // The session stays usable for new work.
        assert_eq!(
            session.run(Lcs {
                a: vec![7],
                b: vec![7]
            }),
            1
        );
    }

    #[test]
    fn repeated_shapes_hit_the_cache_and_update_tuning_invalidates() {
        let mut session = Session::new(2);
        let req = || Lcs {
            a: vec![1, 2, 3, 4],
            b: vec![2, 3, 4, 5],
        };
        for _ in 0..4 {
            assert_eq!(session.run(req()), 3);
        }
        let stats = session.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 3));

        // A knob change must recompile: the old skeleton is unreachable.
        session.update_tuning(|t| t.lcs_base = 2);
        assert_eq!(session.run(req()), 3);
        let stats = session.cache_stats();
        assert_eq!((stats.misses, stats.hits), (2, 3));
    }
}
