//! The [`Session`]: one worker pool, one tuning config, three verbs.

use crate::solve::{Prepared, Solve};
use paco_core::machine::available_processors;
use paco_core::metrics::sched;
use paco_core::tuning::Tuning;
use paco_runtime::schedule::Plan;
use paco_runtime::WorkerPool;
use parking_lot::Mutex;
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// Scheduling cost of the most recent [`Session::run`],
/// [`Session::run_batch`] or [`Session::flush`], read off the
/// [`paco_core::metrics::sched`] counters (recorded while
/// [`Tuning::trace`] is on, the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Requests executed by the pass.
    pub requests: u64,
    /// Plan waves executed — for a batch this is the *maximum* of the
    /// constituent wave counts, the whole point of batching.
    pub plan_waves: u64,
    /// Plan steps (placed tasks) executed.
    pub plan_steps: u64,
    /// Worker-pool barriers (spawn/join round-trips) issued.
    pub pool_barriers: u64,
}

/// Lifecycle of a submitted request's output slot.
enum SlotState {
    /// Submitted, not yet flushed.
    Pending,
    /// Flushed successfully; the output is waiting.
    Done(Box<dyn Any + Send>),
    /// The output was taken.
    Taken,
    /// The flush panicked mid-pass: the request's shared state may be
    /// half-written, so the output is unrecoverable.
    Poisoned,
}

type Slot = Arc<Mutex<SlotState>>;

struct PendingRequest {
    prepared: Box<dyn Prepared>,
    slot: Slot,
}

/// A handle to the output of a [`Session::submit`]ted request; resolved by
/// the next [`Session::flush`].
pub struct Ticket<O> {
    slot: Slot,
    _out: PhantomData<fn() -> O>,
}

impl<O: Send + 'static> Ticket<O> {
    /// Whether the request has been flushed (and the output not yet taken).
    pub fn ready(&self) -> bool {
        matches!(*self.slot.lock(), SlotState::Done(_))
    }

    /// Take the output if the request has been flushed (and neither taken
    /// before nor lost to a panicking flush).
    pub fn try_take(&self) -> Option<O> {
        let mut slot = self.slot.lock();
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Done(out) => Some(decode(out)),
            other => {
                *slot = other;
                None
            }
        }
    }

    /// Take the output.
    ///
    /// # Panics
    ///
    /// Panics if the session has not been flushed since the submission, if
    /// the output was already taken, or if the flush panicked (the request
    /// was lost with it).
    pub fn take(&self) -> O {
        let mut slot = self.slot.lock();
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Done(out) => decode(out),
            SlotState::Pending => {
                panic!("ticket not resolved: call Session::flush() before Ticket::take()")
            }
            SlotState::Taken => panic!("ticket output already taken"),
            SlotState::Poisoned => {
                panic!("ticket lost: the flush executing this request panicked")
            }
        }
    }
}

fn decode<O: Send + 'static>(out: Box<dyn Any + Send>) -> O {
    *out.downcast::<O>()
        .expect("request output type mismatch — Solve::Output is wired to the wrong run type")
}

/// The front door: owns one pinned [`WorkerPool`] plus a [`Tuning`] config,
/// and executes every PACO workload through three verbs — [`Session::run`],
/// [`Session::run_batch`] and [`Session::submit`]/[`Session::flush`].
///
/// ```
/// use paco_service::{Session, Sort};
///
/// let session = Session::builder().procs(2).build();
/// let sorted = session.run(Sort { keys: vec![3.0, 1.0, 2.0] });
/// assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
/// ```
pub struct Session {
    pool: WorkerPool,
    tuning: Tuning,
    queue: Mutex<Vec<PendingRequest>>,
    last: Mutex<RunStats>,
}

impl Session {
    /// A session on `p` pinned processors with environment-derived tuning
    /// ([`Tuning::from_env`]).
    pub fn new(p: usize) -> Self {
        Self::builder().procs(p).build()
    }

    /// A session sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::builder().build()
    }

    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The processor count every request is compiled for.
    pub fn p(&self) -> usize {
        self.pool.p()
    }

    /// The tuning config every request is compiled with.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Scheduling counters of the most recent `run`/`run_batch`/`flush`
    /// (all-zero until one executed with [`Tuning::trace`] on).
    pub fn last_stats(&self) -> RunStats {
        *self.last.lock()
    }

    /// Execute one request and return its output.
    pub fn run<R: Solve>(&self, req: R) -> R::Output {
        let mut prepared = req.compile(self.p(), &self.tuning).inner;
        self.record(1, || {
            prepared
                .skeleton()
                .execute(&self.pool, |proc, &idx| prepared.run_step(proc, idx));
        });
        decode(prepared.take_output())
    }

    /// Execute a homogeneous batch of requests through **one** pool pass.
    ///
    /// The compiled plans are merged wave-by-wave
    /// ([`Plan::batch`]), so the pass costs as many
    /// barriers as the *deepest* constituent — not the sum — across every
    /// workload type, including the MM, Strassen and sort paths that had no
    /// batched entry point before this crate.  Outputs come back in request
    /// order.
    pub fn run_batch<R: Solve>(&self, reqs: impl IntoIterator<Item = R>) -> Vec<R::Output> {
        let mut prepared: Vec<Box<dyn Prepared>> = reqs
            .into_iter()
            .map(|r| r.compile(self.p(), &self.tuning).inner)
            .collect();
        self.execute_merged(&prepared);
        prepared
            .iter_mut()
            .map(|p| decode(p.take_output()))
            .collect()
    }

    /// Queue a request for the next [`Session::flush`]; the request is
    /// compiled now (under the current tuning) and executed later.  Queued
    /// submissions may mix workload types freely.
    pub fn submit<R: Solve>(&self, req: R) -> Ticket<R::Output> {
        let prepared = req.compile(self.p(), &self.tuning).inner;
        let slot = Arc::new(Mutex::new(SlotState::Pending));
        self.queue.lock().push(PendingRequest {
            prepared,
            slot: slot.clone(),
        });
        Ticket {
            slot,
            _out: PhantomData,
        }
    }

    /// Number of submissions waiting for a flush.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }

    /// Execute every queued submission — a heterogeneous mix compiles to one
    /// merged wave plan — through one pool pass, resolving their
    /// [`Ticket`]s.  Returns the number of requests flushed.
    ///
    /// If a workload step panics mid-pass, every request of the pass is
    /// *poisoned* (their shared state may be half-written, so no output can
    /// be salvaged): the tickets report the loss explicitly instead of
    /// pretending the flush never happened, and the panic is re-thrown.
    pub fn flush(&self) -> usize {
        let mut pending = std::mem::take(&mut *self.queue.lock());
        if pending.is_empty() {
            return 0;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let prepared: Vec<&dyn Prepared> = pending.iter().map(|p| &*p.prepared).collect();
            self.execute_merged_refs(&prepared);
        }));
        if let Err(payload) = outcome {
            for p in &pending {
                *p.slot.lock() = SlotState::Poisoned;
            }
            std::panic::resume_unwind(payload);
        }
        for p in &mut pending {
            *p.slot.lock() = SlotState::Done(p.prepared.take_output());
        }
        pending.len()
    }

    fn execute_merged(&self, prepared: &[Box<dyn Prepared>]) {
        let refs: Vec<&dyn Prepared> = prepared.iter().map(|p| &**p).collect();
        self.execute_merged_refs(&refs);
    }

    /// One pool pass over many compiled requests: zip their skeletons
    /// wave-by-wave and tag every step with its request index.
    fn execute_merged_refs(&self, prepared: &[&dyn Prepared]) {
        let plans: Vec<Plan<usize>> = prepared.iter().map(|p| p.skeleton().clone()).collect();
        let merged = Plan::batch(plans);
        self.record(prepared.len() as u64, || {
            merged.execute(&self.pool, |proc, &(inst, idx)| {
                prepared[inst].run_step(proc, idx);
            });
        });
    }

    fn record(&self, requests: u64, execute: impl FnOnce()) {
        if !self.tuning.trace {
            execute();
            return;
        }
        let before = sched::snapshot();
        execute();
        let delta = sched::snapshot().since(&before);
        *self.last.lock() = RunStats {
            requests,
            plan_waves: delta.plan_waves,
            plan_steps: delta.plan_steps,
            pool_barriers: delta.pool_barriers,
        };
    }
}

/// Configures and builds a [`Session`].
#[derive(Debug, Default)]
pub struct SessionBuilder {
    procs: Option<usize>,
    tuning: Option<Tuning>,
    base: Option<usize>,
}

impl SessionBuilder {
    /// Pin the session to `p` processors (default: the machine's available
    /// parallelism).
    pub fn procs(mut self, p: usize) -> Self {
        assert!(p >= 1, "a session needs at least one processor");
        self.procs = Some(p);
        self
    }

    /// Use an explicit tuning config (default: [`Tuning::from_env`], which
    /// honours the `PACO_BASE` override).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Convenience: set every base/grain-size knob at once
    /// ([`Tuning::with_base`]) on top of whatever tuning the builder ends up
    /// with.
    pub fn base(mut self, base: usize) -> Self {
        self.base = Some(base);
        self
    }

    /// Spin up the worker pool and finish the session.
    pub fn build(self) -> Session {
        let mut tuning = self.tuning.unwrap_or_else(Tuning::from_env);
        if let Some(base) = self.base {
            tuning = tuning.with_base(base);
        }
        let p = self.procs.unwrap_or_else(available_processors);
        Session {
            pool: WorkerPool::new(p),
            tuning,
            queue: Mutex::new(Vec::new()),
            last: Mutex::new(RunStats::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::Compiled;
    use crate::Lcs;
    use paco_runtime::schedule::{Plan, Step};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A request whose single step panics, for exercising the flush
    /// poisoning path.
    struct Exploding {
        skeleton: Plan<usize>,
    }

    impl Prepared for Exploding {
        fn skeleton(&self) -> &Plan<usize> {
            &self.skeleton
        }
        fn run_step(&self, _proc: usize, _idx: usize) {
            panic!("exploding step");
        }
        fn take_output(&mut self) -> Box<dyn Any + Send> {
            Box::new(())
        }
    }

    struct ExplodingReq;

    impl Solve for ExplodingReq {
        type Output = ();
        fn compile(self, p: usize, _tuning: &Tuning) -> Compiled<()> {
            Compiled::from_prepared(Box::new(Exploding {
                skeleton: Plan::single_wave(p, vec![Step { proc: 0, job: 0 }]),
            }))
        }
    }

    #[test]
    fn panicking_flush_poisons_every_ticket_of_the_pass() {
        let session = Session::new(2);
        let good = session.submit(Lcs {
            a: vec![1, 2, 3],
            b: vec![2, 3],
        });
        let bad = session.submit(ExplodingReq);

        // The flush re-throws the step panic...
        let outcome = catch_unwind(AssertUnwindSafe(|| session.flush()));
        assert!(outcome.is_err(), "the step panic must propagate");
        // ...the queue is drained (nothing half-executed can be re-driven)...
        assert_eq!(session.pending(), 0);
        // ...and both tickets report the loss instead of "flush me first".
        assert!(!good.ready());
        assert_eq!(good.try_take(), None);
        let take = catch_unwind(AssertUnwindSafe(|| good.take()));
        let payload = take.expect_err("poisoned take must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .expect("panic message is a str literal");
        assert!(
            msg.contains("flush executing this request panicked"),
            "{msg}"
        );
        let take = catch_unwind(AssertUnwindSafe(|| bad.take()));
        assert!(take.is_err());

        // The session stays usable for new work.
        assert_eq!(
            session.run(Lcs {
                a: vec![7],
                b: vec![7]
            }),
            1
        );
    }
}
