//! The incremental/compositional request family: typed [`Solve`] wiring of
//! `paco_incr` (closed-graph handles + edge updates) and the Hirschberg
//! traceback.
//!
//! The family is *stateful* where every other request is one-shot:
//!
//! * [`IncClose`] closes an adjacency through the stock parallel FW plan —
//!   sharing the `"closure"` skeleton cache entries with
//!   [`Closure`](crate::Closure) — and **registers** the result in a
//!   [`HandleRegistry`], resolving to a `Copy` [`ClosedGraph`] handle;
//! * [`IncUpdate`] applies an [`EdgeUpdate`] batch to the handle's state by
//!   dirty-block re-propagation (full re-closure fallback per
//!   [`Tuning::incr_fallback_percent`]), resolving to the batch's exact
//!   [`UpdateStats`];
//! * [`IncSnapshot`] reads the current closed matrix out of a handle;
//! * [`IncDrop`] retires a handle;
//! * [`LcsTrace`] is stateless but compositional: it turns the LCS *length*
//!   answer into an actual edit script via Hirschberg's linear-space
//!   traceback.
//!
//! The stateful requests implement [`Solve::route_hint`] with their handle
//! id, so a multi-shard [`Engine`](crate::Engine) keeps one graph's
//! updates on one shard (queue/cache/arena affinity).  Correctness never
//! rides on that routing: the state sits behind a mutex in the shared
//! registry, and each update batch is applied atomically under one lock
//! acquisition inside its single plan step.
//!
//! Handles resolve at **bind time**: submitting an update for a dropped (or
//! foreign-registry) handle panics on the submitting thread with a clear
//! message, not inside an executor pass.  Handles are only obtainable from
//! a resolved [`IncClose`] ticket, so the ordinary lifecycle — close, then
//! update — cannot race itself.

use crate::solve::{Compiled, ShapeKey, Skeleton, Solve, WorkloadRun};
use paco_core::arena::ScratchArena;
use paco_core::matrix::Matrix;
use paco_core::metrics;
use paco_core::proc_list::ProcId;
use paco_core::semiring::IdempotentSemiring;
use paco_core::tuning::Tuning;
use paco_dp::lcs::trace::{hirschberg, EditOp};
use paco_graph::{plan_fw, FwRun};
use paco_incr::{ClosedGraph, ClosedState, EdgeUpdate, HandleRegistry, UpdateStats};
use paco_runtime::schedule::{Plan, Step};
use parking_lot::Mutex;
use std::sync::Arc;

/// One-step skeleton shared by every constant-shape incremental request:
/// the work happens inside a single job on processor 0, so requests of this
/// family batched with real multi-wave workloads ride along in wave 0.
fn single_step_skeleton(p: usize) -> Skeleton {
    let plan: Arc<Plan<usize>> =
        Arc::new(Plan::single_wave(p.max(1), vec![Step { proc: 0, job: 0 }]));
    Skeleton::new(Arc::clone(&plan), &plan)
}

/// Close an adjacency matrix and register the result as a reusable
/// [`ClosedGraph`] handle; resolves to the handle.
///
/// The closure itself runs the same parallel FW plan as
/// [`Closure`](crate::Closure) (they deliberately share skeleton cache
/// entries); the only difference is where the output goes — into `registry`
/// instead of back to the caller.  Obtain `registry` from
/// [`Session::registry`](crate::Session::registry) or
/// [`Engine::registry`](crate::Engine::registry).
#[derive(Debug, Clone)]
pub struct IncClose<S: IdempotentSemiring> {
    /// The adjacency matrix to close and retain.
    pub adj: Matrix<S>,
    /// The registry the closed state is stored in.
    pub registry: Arc<HandleRegistry>,
}

struct IncCloseRun<S: IdempotentSemiring> {
    adj: Matrix<S>,
    run: FwRun<S>,
    registry: Arc<HandleRegistry>,
}

impl<S: IdempotentSemiring> WorkloadRun for IncCloseRun<S> {
    type Job = paco_graph::LeafCall;
    type Out = ClosedGraph<S>;
    fn typed_plan(&self) -> &Plan<Self::Job> {
        self.run.plan()
    }
    fn step(&self, proc: ProcId, job: &Self::Job) {
        FwRun::step(&self.run, proc, job)
    }
    fn finish(self) -> ClosedGraph<S> {
        let closed = self.run.finish();
        metrics::incr::record_close();
        self.registry
            .insert(ClosedState::from_parts(self.adj, closed))
    }
}

impl<S: IdempotentSemiring> Solve for IncClose<S> {
    type Output = ClosedGraph<S>;
    fn shape_key(&self) -> ShapeKey {
        // Same kind as `Closure`: the FW schedule is identical, so the two
        // request types share cached skeletons.
        ShapeKey::new("closure", [self.adj.rows() as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let compiled = Arc::new(plan_fw(self.adj.rows(), p.max(1), tuning.fw_base));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<ClosedGraph<S>> {
        let compiled = skeleton.payload().expect("skeleton compiled by IncClose");
        let run = FwRun::from_plan(&self.adj, compiled, tuning.fw_base);
        Compiled::bound(
            skeleton,
            IncCloseRun {
                adj: self.adj,
                run,
                registry: self.registry,
            },
        )
    }
}

/// Apply a batch of edge assignments to a [`ClosedGraph`]'s state; resolves
/// to the batch's exact [`UpdateStats`] (and feeds the process-wide
/// `incr/*` metrics counters).
///
/// The batch is applied atomically — one lock acquisition over the whole
/// slice, in submission order — inside the request's single plan step.
/// Distinct `IncUpdate` requests for the same handle may interleave in any
/// order across passes; improving updates over an idempotent semiring
/// commute, and a worsening update re-closes from scratch, so every
/// interleaving converges to the closure of the final adjacency.
///
/// # Panics
///
/// Binding (i.e. submitting) panics if `handle` is unknown to `registry` —
/// already dropped, or created through a different session/engine.
#[derive(Debug, Clone)]
pub struct IncUpdate<S: IdempotentSemiring> {
    /// The graph to update.
    pub handle: ClosedGraph<S>,
    /// Edge assignments, applied in order.
    pub updates: Vec<EdgeUpdate<S>>,
    /// The registry that owns `handle`.
    pub registry: Arc<HandleRegistry>,
}

struct IncUpdateRun<S: IdempotentSemiring> {
    plan: Arc<Plan<usize>>,
    state: Arc<Mutex<ClosedState<S>>>,
    updates: Vec<EdgeUpdate<S>>,
    block: usize,
    fallback_percent: usize,
    fw_base: usize,
    result: Mutex<Option<UpdateStats>>,
}

impl<S: IdempotentSemiring> WorkloadRun for IncUpdateRun<S> {
    type Job = usize;
    type Out = UpdateStats;
    fn typed_plan(&self) -> &Plan<usize> {
        &self.plan
    }
    fn step(&self, _proc: ProcId, _job: &usize) {
        let stats = self.state.lock().apply_batch(
            &self.updates,
            self.block,
            self.fallback_percent,
            self.fw_base,
        );
        *self.result.lock() = Some(stats);
    }
    fn finish(self) -> UpdateStats {
        self.result
            .into_inner()
            .expect("IncUpdate step did not run")
    }
}

impl<S: IdempotentSemiring> Solve for IncUpdate<S> {
    type Output = UpdateStats;
    fn shape_key(&self) -> ShapeKey {
        // Every constant-shape incremental request shares one cached
        // single-step skeleton (same kind, same — empty — dims).
        ShapeKey::new("incr-step", [])
    }
    fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
        single_step_skeleton(p)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<UpdateStats> {
        let plan = skeleton.payload().expect("skeleton compiled by incr-step");
        let state = self
            .registry
            .get(self.handle)
            .expect("IncUpdate on an unknown or dropped ClosedGraph handle");
        Compiled::bound(
            skeleton,
            IncUpdateRun {
                plan,
                state,
                updates: self.updates,
                block: tuning.incr_block,
                fallback_percent: tuning.incr_fallback_percent,
                fw_base: tuning.fw_base,
                result: Mutex::new(None),
            },
        )
    }
    fn route_hint(&self) -> Option<u64> {
        Some(self.handle.id())
    }
}

/// Read the current closed matrix of a [`ClosedGraph`]; resolves to a copy
/// of the closure (reflecting every update applied so far).
///
/// # Panics
///
/// Binding panics if `handle` is unknown to `registry` (see [`IncUpdate`]).
#[derive(Debug, Clone)]
pub struct IncSnapshot<S: IdempotentSemiring> {
    /// The graph to read.
    pub handle: ClosedGraph<S>,
    /// The registry that owns `handle`.
    pub registry: Arc<HandleRegistry>,
}

struct IncSnapshotRun<S: IdempotentSemiring> {
    plan: Arc<Plan<usize>>,
    state: Arc<Mutex<ClosedState<S>>>,
    result: Mutex<Option<Matrix<S>>>,
}

impl<S: IdempotentSemiring> WorkloadRun for IncSnapshotRun<S> {
    type Job = usize;
    type Out = Matrix<S>;
    fn typed_plan(&self) -> &Plan<usize> {
        &self.plan
    }
    fn step(&self, _proc: ProcId, _job: &usize) {
        *self.result.lock() = Some(self.state.lock().closed().clone());
    }
    fn finish(self) -> Matrix<S> {
        self.result
            .into_inner()
            .expect("IncSnapshot step did not run")
    }
}

impl<S: IdempotentSemiring> Solve for IncSnapshot<S> {
    type Output = Matrix<S>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("incr-step", [])
    }
    fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
        single_step_skeleton(p)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        _tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<Matrix<S>> {
        let plan = skeleton.payload().expect("skeleton compiled by incr-step");
        let state = self
            .registry
            .get(self.handle)
            .expect("IncSnapshot on an unknown or dropped ClosedGraph handle");
        Compiled::bound(
            skeleton,
            IncSnapshotRun {
                plan,
                state,
                result: Mutex::new(None),
            },
        )
    }
    fn route_hint(&self) -> Option<u64> {
        Some(self.handle.id())
    }
}

/// Retire a [`ClosedGraph`] handle, releasing its matrices; resolves to
/// whether the handle was still live (`false` means it was already
/// dropped — dropping is idempotent, not an error).
#[derive(Debug, Clone)]
pub struct IncDrop<S: IdempotentSemiring> {
    /// The graph to retire.
    pub handle: ClosedGraph<S>,
    /// The registry that owns `handle`.
    pub registry: Arc<HandleRegistry>,
}

struct IncDropRun {
    plan: Arc<Plan<usize>>,
    registry: Arc<HandleRegistry>,
    id: u64,
    result: Mutex<Option<bool>>,
}

impl WorkloadRun for IncDropRun {
    type Job = usize;
    type Out = bool;
    fn typed_plan(&self) -> &Plan<usize> {
        &self.plan
    }
    fn step(&self, _proc: ProcId, _job: &usize) {
        *self.result.lock() = Some(self.registry.remove(self.id));
    }
    fn finish(self) -> bool {
        self.result.into_inner().expect("IncDrop step did not run")
    }
}

impl<S: IdempotentSemiring> Solve for IncDrop<S> {
    type Output = bool;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("incr-step", [])
    }
    fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
        single_step_skeleton(p)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        _tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<bool> {
        let plan = skeleton.payload().expect("skeleton compiled by incr-step");
        Compiled::bound(
            skeleton,
            IncDropRun {
                plan,
                registry: self.registry,
                id: self.handle.id(),
                result: Mutex::new(None),
            },
        )
    }
    fn route_hint(&self) -> Option<u64> {
        Some(self.handle.id())
    }
}

/// Longest-common-subsequence **traceback**: resolves to an [`EditOp`]
/// script that replays `a` into `b`, whose `Keep` count is the exact LCS
/// length — the alignment itself, where [`Lcs`](crate::Lcs) answers only
/// the length.
///
/// Runs Hirschberg's linear-space recovery as a single sequential step
/// (costing ≈ 2× the DP cells of the length-only computation — the
/// `incr/traceback-overhead` gauge); batch several `LcsTrace` requests to
/// overlap them across processors.
#[derive(Debug, Clone)]
pub struct LcsTrace {
    /// First sequence (the script's `Keep`/`Delete` source).
    pub a: Vec<u32>,
    /// Second sequence (the replay target).
    pub b: Vec<u32>,
}

struct LcsTraceRun {
    plan: Arc<Plan<usize>>,
    a: Vec<u32>,
    b: Vec<u32>,
    result: Mutex<Option<Vec<EditOp>>>,
}

impl WorkloadRun for LcsTraceRun {
    type Job = usize;
    type Out = Vec<EditOp>;
    fn typed_plan(&self) -> &Plan<usize> {
        &self.plan
    }
    fn step(&self, _proc: ProcId, _job: &usize) {
        *self.result.lock() = Some(hirschberg(&self.a, &self.b));
    }
    fn finish(self) -> Vec<EditOp> {
        self.result.into_inner().expect("LcsTrace step did not run")
    }
}

impl Solve for LcsTrace {
    type Output = Vec<EditOp>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("incr-step", [])
    }
    fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
        single_step_skeleton(p)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        _tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<Vec<EditOp>> {
        let plan = skeleton.payload().expect("skeleton compiled by incr-step");
        Compiled::bound(
            skeleton,
            LcsTraceRun {
                plan,
                a: self.a,
                b: self.b,
                result: Mutex::new(None),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Closure, Engine, Session};
    use paco_core::semiring::MinPlus;
    use paco_core::workload::{random_digraph, related_sequences};
    use paco_dp::lcs::{lcs_reference, replay};
    use paco_graph::fw_reference;

    #[test]
    fn close_update_snapshot_drop_lifecycle_through_a_session() {
        let session = Session::new(2);
        let registry = session.registry();
        let adj = random_digraph(45, 0.15, 50, 3); // non-power-of-two
        let handle = session.run(IncClose {
            adj: adj.clone(),
            registry: Arc::clone(&registry),
        });

        // The registered closure matches the one-shot Closure request.
        let via_closure = session.run(Closure { adj: adj.clone() });
        assert_eq!(
            session.run(IncSnapshot {
                handle,
                registry: Arc::clone(&registry)
            }),
            via_closure
        );

        let stats = session.run(IncUpdate {
            handle,
            updates: vec![
                EdgeUpdate::new(0, 44, MinPlus(1.0)),
                EdgeUpdate::new(44, 13, MinPlus(2.0)),
            ],
            registry: Arc::clone(&registry),
        });
        assert_eq!(stats.updates, 2);

        // Snapshot equals a from-scratch closure of the updated adjacency.
        let mut updated = adj;
        updated[(0, 44)] = MinPlus(1.0);
        updated[(44, 13)] = MinPlus(2.0);
        assert_eq!(
            session.run(IncSnapshot {
                handle,
                registry: Arc::clone(&registry)
            }),
            fw_reference(&updated)
        );

        assert!(session.run(IncDrop {
            handle,
            registry: Arc::clone(&registry)
        }));
        assert!(!session.run(IncDrop { handle, registry }));
    }

    #[test]
    fn engine_routes_a_graphs_updates_to_one_shard() {
        let engine = Engine::builder().procs(1).shards(2).build();
        let registry = engine.registry();
        let client = engine.client();
        let adj = random_digraph(24, 0.2, 30, 7);
        let handle = client
            .submit(IncClose {
                adj: adj.clone(),
                registry: Arc::clone(&registry),
            })
            .wait()
            .expect("close resolves");

        // Distinct improving edges commute, so any cross-pass order works.
        let tickets: Vec<_> = (0..6u32)
            .map(|i| {
                client.submit(IncUpdate {
                    handle,
                    updates: vec![EdgeUpdate::new(i as usize, 23 - i as usize, MinPlus(1.0))],
                    registry: Arc::clone(&registry),
                })
            })
            .collect();
        for t in tickets {
            t.wait().expect("update resolves");
        }

        let mut updated = adj;
        for i in 0..6u32 {
            updated[(i as usize, 23 - i as usize)] = MinPlus(1.0);
        }
        let snapshot = client
            .submit(IncSnapshot {
                handle,
                registry: Arc::clone(&registry),
            })
            .wait()
            .expect("snapshot resolves");
        assert_eq!(snapshot, fw_reference(&updated));

        // All hinted requests (1 close is unhinted, 6 updates + 1 snapshot
        // are hinted) landed on handle.id() % 2.
        let stats = engine.shutdown();
        let hinted_shard = (handle.id() % 2) as usize;
        assert!(
            stats.shards[hinted_shard].requests >= 7,
            "hinted shard ran {} requests",
            stats.shards[hinted_shard].requests
        );
    }

    #[test]
    fn lcs_trace_scripts_replay_to_the_exact_length() {
        let session = Session::new(2);
        let (a, b) = related_sequences(180, 4, 0.3, 17);
        let script = session.run(LcsTrace {
            a: a.clone(),
            b: b.clone(),
        });
        assert_eq!(replay(&script, &a), b);
        assert_eq!(paco_dp::lcs::lcs_of_script(&script), lcs_reference(&a, &b));
    }

    #[test]
    #[should_panic(expected = "unknown or dropped ClosedGraph handle")]
    fn updating_a_dropped_handle_panics_at_submission() {
        let session = Session::new(1);
        let registry = session.registry();
        let handle = session.run(IncClose {
            adj: random_digraph(6, 0.3, 5, 1),
            registry: Arc::clone(&registry),
        });
        assert!(session.run(IncDrop {
            handle,
            registry: Arc::clone(&registry)
        }));
        let _ = session.run(IncUpdate {
            handle,
            updates: vec![EdgeUpdate::new(0, 1, MinPlus(1.0))],
            registry,
        });
    }
}
