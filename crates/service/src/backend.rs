//! Execution backend selection and the distributed bridge.
//!
//! [`Backend::Distributed`] reroutes eligible requests through
//! [`paco_dist`]'s shared-nothing superstep executor instead of the shared
//! worker pool.  The two-phase [`Solve`](crate::Solve) contract is
//! unchanged: the skeleton is compiled (and cached) for `ranks` processors
//! exactly as a local skeleton would be for `p`, the lowering of that
//! skeleton into a communication schedule is cached right next to it
//! ([`LowerCache`]), and the bound result is a perfectly ordinary
//! [`Prepared`] whose single step runs the whole scatter → superstep →
//! gather pipeline — so sessions, batches, tickets and engine shards all
//! work identically on either backend.

use crate::solve::{Compiled, Prepared};
use paco_core::machine::Placement;
use paco_dist::{run_lowered, DistWorkload, LowerCache, SuperstepPlan};
use paco_runtime::schedule::{Plan, Step};
use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

/// Where a session or engine executes its requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// The shared-memory worker pool (the default): every request runs its
    /// plan on `p` pinned workers over shared tables.
    #[default]
    Local,
    /// The shared-nothing superstep emulation: every eligible request runs
    /// its plan as `ranks` message-passing ranks with private memory and
    /// exact communication accounting (`paco_core::metrics::comm`).
    /// Requests without a distributed binding (sort, 1-D DP, GAP,
    /// heterogeneous MM, degenerate shapes) transparently fall back to the
    /// local pool.
    Distributed {
        /// Number of ranks to emulate; plans are compiled for this count.
        ranks: usize,
    },
}

/// The bridge from a lowered distributed run to the [`Prepared`] contract:
/// a one-step skeleton whose single step executes the entire superstep
/// pipeline.  This is what lets distributed requests ride the existing
/// session/engine machinery (batching, tickets, poisoning) untouched.
struct DistPrepared<W: DistWorkload, P> {
    skeleton: Arc<Plan<usize>>,
    payload: Arc<P>,
    plan_of: fn(&P) -> &Plan<W::Job>,
    placement: Placement,
    sp: Arc<SuperstepPlan>,
    workload: Mutex<Option<W>>,
    out: Mutex<Option<W::Output>>,
}

impl<W, P> Prepared for DistPrepared<W, P>
where
    W: DistWorkload + Send + 'static,
    W::Output: Send + 'static,
    P: Send + Sync + 'static,
{
    fn skeleton(&self) -> &Plan<usize> {
        &self.skeleton
    }

    fn run_step(&self, _proc: usize, _idx: usize) {
        let w = self
            .workload
            .lock()
            .take()
            .expect("distributed run already executed");
        let plan = (self.plan_of)(&self.payload);
        let (out, _stats) = run_lowered(&w, plan, &self.placement, &self.sp);
        *self.out.lock() = Some(out);
    }

    fn take_output(&mut self) -> Box<dyn Any + Send> {
        Box::new(
            self.out
                .lock()
                .take()
                .expect("distributed output already taken"),
        )
    }
}

/// Compile a distributed workload into a [`Compiled`] value: fetch (or
/// lower and cache) the communication schedule for the skeleton payload
/// under a block-cyclic placement over `ranks`, then wrap the run behind a
/// one-step bridge skeleton.  `plan_of` projects the typed wave plan out of
/// the payload (`&MmPlan -> &Plan<MmJob>`, …) so the bridge never clones
/// the cached plan.
pub(crate) fn compile_dist<W, P>(
    workload: W,
    payload: Arc<P>,
    plan_of: fn(&P) -> &Plan<W::Job>,
    ranks: usize,
    lower: &LowerCache,
) -> Compiled<W::Output>
where
    W: DistWorkload + Send + 'static,
    W::Output: Send + 'static,
    P: Send + Sync + 'static,
{
    let placement = Placement::new(ranks, Placement::DEFAULT_BLOCK);
    let sp = lower.get_or_lower(
        Arc::clone(&payload) as Arc<dyn Any + Send + Sync>,
        &workload,
        plan_of(&payload),
        &placement,
    );
    Compiled::from_prepared(Box::new(DistPrepared {
        skeleton: Arc::new(Plan::single_wave(1, vec![Step { proc: 0, job: 0 }])),
        payload,
        plan_of,
        placement,
        sp,
        workload: Mutex::new(Some(workload)),
        out: Mutex::new(None),
    }))
}
