//! The executor core shared by the synchronous [`Session`](crate::Session)
//! and the concurrent [`Engine`](crate::Engine).
//!
//! A [`PassCore`] owns one pinned [`WorkerPool`] plus the [`Tuning`] every
//! request is compiled with, and knows how to run a *pass*: merge a batch of
//! compiled requests wave-by-wave ([`Plan::batch`]), execute the merged plan
//! through one pool traversal, and settle each request's output slot —
//! [`Done`](SlotState::Done) on success, [`Poisoned`](SlotState::Poisoned)
//! for the whole pass if any step panicked.  `Session::flush` is exactly one
//! such pass on the caller's thread; an `Engine` shard is the same core
//! driven by its own executor thread under a coalescing policy.

use crate::client::SubmitOptions;
use crate::policy::Priority;
use crate::session::RunStats;
use crate::solve::Prepared;
use crate::ticket::{self, Slot, SlotState};
use paco_core::metrics::sched;
use paco_core::tuning::Tuning;
use paco_runtime::schedule::Plan;
use paco_runtime::WorkerPool;
use parking_lot::Mutex;
use std::any::Any;
use std::time::Instant;

/// A compiled request waiting for a pass, paired with the slot its output
/// will be delivered through and the admission metadata the engine's
/// queues honour (priority class, optional deadline, submission time for
/// the latency gauges).
pub(crate) struct PendingRequest {
    pub(crate) prepared: Box<dyn Prepared>,
    pub(crate) slot: Slot,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Instant>,
    pub(crate) submitted_at: Instant,
}

impl PendingRequest {
    pub(crate) fn new(prepared: Box<dyn Prepared>, slot: Slot, opts: SubmitOptions) -> Self {
        Self {
            prepared,
            slot,
            priority: opts.priority,
            deadline: opts.deadline,
            submitted_at: Instant::now(),
        }
    }

    /// The compiled request's step count — the size measure the
    /// size-balanced router weighs shards by.
    pub(crate) fn steps(&self) -> usize {
        self.prepared.skeleton().steps()
    }

    /// Whether the request's deadline has passed as of `now`.  Checked when
    /// an executor dequeues the request — the one place every queued request
    /// flows through — never mid-pass.
    pub(crate) fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

/// One pool, one tuning, one pass at a time.
pub(crate) struct PassCore {
    pool: WorkerPool,
    tuning: Tuning,
    last: Mutex<RunStats>,
}

impl PassCore {
    pub(crate) fn new(p: usize, tuning: Tuning) -> Self {
        Self {
            pool: WorkerPool::new(p),
            tuning,
            last: Mutex::new(RunStats::default()),
        }
    }

    pub(crate) fn p(&self) -> usize {
        self.pool.p()
    }

    pub(crate) fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Mutate the tuning and bump its [`Tuning::epoch`] so skeletons cached
    /// under the old knobs can never be replayed.
    pub(crate) fn update_tuning(&mut self, mutate: impl FnOnce(&mut Tuning)) {
        mutate(&mut self.tuning);
        self.tuning.bump_epoch();
    }

    pub(crate) fn last_stats(&self) -> RunStats {
        *self.last.lock()
    }

    /// Gracefully drain and join the pool's workers (loud version of what
    /// dropping the core would do silently).
    pub(crate) fn shutdown(self) {
        self.pool.shutdown();
    }

    /// Execute one already-compiled request on the pool (the `Session::run`
    /// fast path: no slot, no type erasure of the output).
    pub(crate) fn run_one(&self, prepared: &mut Box<dyn Prepared>) -> Box<dyn Any + Send> {
        self.record(1, || {
            prepared
                .skeleton()
                .execute(&self.pool, |proc, &idx| prepared.run_step(proc, idx));
        });
        prepared.take_output()
    }

    /// One pool pass over many compiled requests: zip their skeletons
    /// wave-by-wave and tag every step with its request index.  The merge
    /// borrows the skeletons ([`Plan::batch_refs`]) — they are usually
    /// shared with the plan cache, and a coalesced pass must not deep-copy
    /// what caching just avoided compiling.
    pub(crate) fn execute_merged(&self, prepared: &[&dyn Prepared]) {
        let plans: Vec<&Plan<usize>> = prepared.iter().map(|p| p.skeleton()).collect();
        let merged = Plan::batch_refs(&plans);
        self.record(prepared.len() as u64, || {
            merged.execute(&self.pool, |proc, &(inst, idx)| {
                prepared[inst].run_step(proc, idx);
            });
        });
    }

    /// Run one pass over a batch of pending requests and settle every slot.
    ///
    /// On success each slot becomes [`SlotState::Done`] and the request
    /// count is returned.  If any step panics, *every* slot of the pass is
    /// poisoned (the requests' shared state may be half-written, so no
    /// output can be salvaged) and the panic payload is handed back — the
    /// synchronous caller re-throws it, the engine executor records it and
    /// keeps serving.
    pub(crate) fn run_pass(
        &self,
        pending: &mut [PendingRequest],
    ) -> Result<usize, Box<dyn Any + Send>> {
        if pending.is_empty() {
            return Ok(0);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let prepared: Vec<&dyn Prepared> = pending.iter().map(|p| &*p.prepared).collect();
            self.execute_merged(&prepared);
        }));
        if let Err(payload) = outcome {
            for p in pending.iter() {
                ticket::resolve(&p.slot, SlotState::Poisoned);
            }
            return Err(payload);
        }
        for p in pending.iter_mut() {
            let out = p.prepared.take_output();
            ticket::resolve(&p.slot, SlotState::Done(out));
        }
        Ok(pending.len())
    }

    /// Run `execute` and record the scheduling-counter delta it produced as
    /// the core's latest [`RunStats`] (skipped when tracing is off).
    pub(crate) fn record(&self, requests: u64, execute: impl FnOnce()) {
        if !self.tuning.trace {
            execute();
            return;
        }
        let before = sched::snapshot();
        execute();
        let delta = sched::snapshot().since(&before);
        *self.last.lock() = RunStats {
            requests,
            plan_waves: delta.plan_waves,
            plan_steps: delta.plan_steps,
            pool_barriers: delta.pool_barriers,
        };
    }
}
