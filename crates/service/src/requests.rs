//! The typed request structs — one per workload — and their [`Solve`]
//! wiring onto the workload crates' prepared-run machinery.

use crate::solve::{Compiled, Solve, WorkloadRun};
use paco_core::matrix::Matrix;
use paco_core::proc_list::ProcId;
use paco_core::semiring::{IdempotentSemiring, MinPlus, Ring, Semiring};
use paco_core::tuning::Tuning;
use paco_dp::gap::{GapCost, GapRun};
use paco_dp::lcs::LcsRun;
use paco_dp::one_d::{OneDJob, OneDRun, Weight};
use paco_graph::{FwRun, LeafCall};
use paco_matmul::{MmConfig, MmJob, MmRun, StrassenOptions, StrassenRun};
use paco_runtime::hetero::ThrottleSpec;
use paco_runtime::schedule::Plan;
use paco_sort::{SortJob, SortKey, SortRun};

/// Longest common subsequence of two sequences (Sect. III-B); resolves to
/// the LCS length.
#[derive(Debug, Clone)]
pub struct Lcs {
    /// First sequence.
    pub a: Vec<u32>,
    /// Second sequence.
    pub b: Vec<u32>,
}

impl WorkloadRun for LcsRun {
    type Job = usize;
    type Out = u32;
    fn typed_plan(&self) -> &Plan<usize> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &usize) {
        LcsRun::step(self, proc, job)
    }
    fn finish(self) -> u32 {
        LcsRun::finish(self)
    }
}

impl Solve for Lcs {
    type Output = u32;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        Compiled::new(LcsRun::prepare(self.a, self.b, p, tuning.lcs_base))
    }
}

/// Path closure of a square matrix over a closed semiring with idempotent
/// `⊕` (the Floyd–Warshall A/B/C/D recursion, Sect. III-E applied to graphs);
/// resolves to the closed matrix.
#[derive(Debug, Clone)]
pub struct Closure<S: IdempotentSemiring> {
    /// The adjacency matrix to close; it is left untouched and the closed
    /// matrix is returned as the output.
    pub adj: Matrix<S>,
}

/// All-pairs shortest paths: [`Closure`] over the tropical `(min, +)`
/// semiring.  Entry `(i, j)` of the result is the weight of the shortest
/// directed path from `i` to `j`.
pub type Apsp = Closure<MinPlus>;

impl<S: IdempotentSemiring> WorkloadRun for FwRun<S> {
    type Job = LeafCall;
    type Out = Matrix<S>;
    fn typed_plan(&self) -> &Plan<LeafCall> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &LeafCall) {
        FwRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<S> {
        FwRun::finish(self)
    }
}

impl<S: IdempotentSemiring> Solve for Closure<S> {
    type Output = Matrix<S>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        Compiled::new(FwRun::prepare(&self.adj, p, tuning.fw_base))
    }
}

/// Rectangular semiring matrix multiplication `C = A ⊗ B` with the
/// MM-1-PIECE partitioning (Corollary 10); resolves to the product matrix.
#[derive(Debug, Clone)]
pub struct MatMul<S: Semiring> {
    /// Left operand (`n × k`).
    pub a: Matrix<S>,
    /// Right operand (`k × m`).
    pub b: Matrix<S>,
}

impl<S: Semiring> WorkloadRun for MmRun<S> {
    type Job = MmJob;
    type Out = Matrix<S>;
    fn typed_plan(&self) -> &Plan<MmJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &MmJob) {
        MmRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<S> {
        MmRun::finish(self)
    }
}

impl<S: Semiring> Solve for MatMul<S> {
    type Output = Matrix<S>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        let cfg = MmConfig {
            cutoff: tuning.mm_cutoff,
            ..MmConfig::default()
        };
        Compiled::new(MmRun::prepare(self.a, self.b, p, cfg))
    }
}

/// Matrix multiplication on an (emulated) heterogeneous machine
/// (Corollary 12 / Sect. IV-A): work is split in proportion to the
/// throttle's throughput ratios when `aware`, evenly when not — both run on
/// the same emulated slow/fast cores, which is the Fig. 9b comparison.
///
/// The throttle must cover exactly the session's `p` processors.
#[derive(Debug, Clone)]
pub struct HeteroMatMul<S: Semiring> {
    /// Left operand (`n × k`).
    pub a: Matrix<S>,
    /// Right operand (`k × m`).
    pub b: Matrix<S>,
    /// The emulated machine: per-processor slowdown factors.
    pub throttle: ThrottleSpec,
    /// `true` = throughput-aware split ([`paco_matmul::hetero_mm`]'s
    /// behaviour), `false` = heterogeneity-unaware even split.
    pub aware: bool,
}

impl<S: Semiring> Solve for HeteroMatMul<S> {
    type Output = Matrix<S>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        let cfg = MmConfig {
            fractions: self.aware.then(|| self.throttle.spec().fractions()),
            throttle: Some(self.throttle),
            cutoff: tuning.mm_cutoff,
        };
        Compiled::new(MmRun::prepare(self.a, self.b, p, cfg))
    }
}

/// Square ring matrix multiplication with Strassen's algorithm placed by the
/// pruned BFS of the 7-ary tree (Theorem 13; set
/// [`Tuning::strassen_gamma`] for CONST-PIECES); resolves to the product.
#[derive(Debug, Clone)]
pub struct Strassen<R: Ring> {
    /// Left operand (`n × n`).
    pub a: Matrix<R>,
    /// Right operand (`n × n`).
    pub b: Matrix<R>,
}

impl<R: Ring> WorkloadRun for StrassenRun<R> {
    type Job = usize;
    type Out = Matrix<R>;
    fn typed_plan(&self) -> &Plan<usize> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &usize) {
        StrassenRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<R> {
        StrassenRun::finish(self)
    }
}

impl<R: Ring> Solve for Strassen<R> {
    type Output = Matrix<R>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        let opts = StrassenOptions {
            cutoff: tuning.strassen_cutoff,
            parallel_base: tuning.strassen_parallel_base,
            gamma: tuning.strassen_gamma,
        };
        Compiled::new(StrassenRun::prepare(self.a, self.b, p, opts))
    }
}

/// Comparison sort of a key vector with PACO SORT (Theorem 16); resolves to
/// the sorted vector.
#[derive(Debug, Clone)]
pub struct Sort<T: SortKey> {
    /// The keys to sort.
    pub keys: Vec<T>,
}

impl<T: SortKey + 'static> WorkloadRun for SortRun<T> {
    type Job = SortJob;
    type Out = Vec<T>;
    fn typed_plan(&self) -> &Plan<SortJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &SortJob) {
        SortRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<T> {
        SortRun::finish(self)
    }
}

impl<T: SortKey + 'static> Solve for Sort<T> {
    type Output = Vec<T>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        let k = tuning.sort_k(self.keys.len());
        Compiled::new(SortRun::prepare(self.keys, p, k))
    }
}

/// The 1D / least-weight-subsequence problem (Sect. III-C): compute
/// `D[j] = min_i D[i] + w(i, j)` for `j = 1..=n` from `D[0] = d0`; resolves
/// to the full `D[0..=n]` array.
#[derive(Debug, Clone)]
pub struct OneD<W: Weight> {
    /// Number of breakpoints (the table has `n + 1` entries).
    pub n: usize,
    /// The O(1), memory-free weight function.
    pub weight: W,
    /// The initial value `D[0]`.
    pub d0: f64,
}

impl<W: Weight + Send + 'static> WorkloadRun for OneDRun<W> {
    type Job = OneDJob;
    type Out = Vec<f64>;
    fn typed_plan(&self) -> &Plan<OneDJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &OneDJob) {
        OneDRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<f64> {
        OneDRun::finish(self)
    }
}

impl<W: Weight + Send + 'static> Solve for OneD<W> {
    type Output = Vec<f64>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        Compiled::new(OneDRun::prepare(
            self.n,
            self.weight,
            self.d0,
            p,
            tuning.one_d_base,
        ))
    }
}

/// The GAP problem (Sect. III-D): edit distance with general gap penalties
/// over an `(n+1) × (n+1)` table; resolves to the table in row-major order.
#[derive(Debug, Clone)]
pub struct Gap<C: GapCost> {
    /// The table is `(n + 1) × (n + 1)`.
    pub n: usize,
    /// The O(1), memory-free cost functions.
    pub costs: C,
}

impl<C: GapCost + Send + 'static> WorkloadRun for GapRun<C> {
    type Job = (usize, usize);
    type Out = Vec<f64>;
    fn typed_plan(&self) -> &Plan<(usize, usize)> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &(usize, usize)) {
        GapRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<f64> {
        GapRun::finish(self)
    }
}

impl<C: GapCost + Send + 'static> Solve for Gap<C> {
    type Output = Vec<f64>;
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output> {
        let blocks = tuning.gap_grid(p);
        Compiled::new(GapRun::prepare(self.n, self.costs, p, blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use paco_core::workload::{
        random_digraph, random_keys, random_matrix_wrapping, related_sequences, GapCosts,
        ParagraphWeight,
    };
    use paco_dp::gap::gap_reference;
    use paco_dp::lcs::lcs_reference;
    use paco_dp::one_d::one_d_reference;
    use paco_graph::fw_reference;
    use paco_matmul::mm_reference;

    #[test]
    fn every_request_type_matches_its_reference() {
        let session = Session::new(3);

        let (a, b) = related_sequences(150, 4, 0.25, 11);
        assert_eq!(
            session.run(Lcs {
                a: a.clone(),
                b: b.clone()
            }),
            lcs_reference(&a, &b)
        );

        let g = random_digraph(48, 0.2, 40, 5);
        assert_eq!(session.run(Apsp { adj: g.clone() }), fw_reference(&g));

        let ma = random_matrix_wrapping(40, 24, 1);
        let mb = random_matrix_wrapping(24, 32, 2);
        assert_eq!(
            session.run(MatMul {
                a: ma.clone(),
                b: mb.clone()
            }),
            mm_reference(&ma, &mb)
        );

        let sa = random_matrix_wrapping(96, 96, 3);
        let sb = random_matrix_wrapping(96, 96, 4);
        assert_eq!(
            session.run(Strassen {
                a: sa.clone(),
                b: sb.clone()
            }),
            mm_reference(&sa, &sb)
        );

        let keys = random_keys(500, 9);
        let mut expect = keys.clone();
        expect.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(session.run(Sort { keys }), expect);

        let w = ParagraphWeight { ideal: 9.0 };
        let got = session.run(OneD {
            n: 130,
            weight: w,
            d0: 0.0,
        });
        let expect = one_d_reference(130, &w, 0.0);
        assert!(got.iter().zip(&expect).all(|(x, y)| (x - y).abs() < 1e-9));

        let costs = GapCosts::default();
        let got = session.run(Gap { n: 40, costs });
        let expect = gap_reference(40, &costs);
        assert!(got.iter().zip(&expect).all(|(x, y)| (x - y).abs() < 1e-9));
    }

    #[test]
    fn degenerate_requests_resolve() {
        let session = Session::new(2);
        assert_eq!(
            session.run(Lcs {
                a: vec![],
                b: vec![1, 2]
            }),
            0
        );
        assert_eq!(session.run(Sort::<f64> { keys: vec![] }), Vec::<f64>::new());
        let empty: Matrix<MinPlus> = Matrix::from_fn(0, 0, |_, _| unreachable!());
        assert_eq!(session.run(Apsp { adj: empty }).rows(), 0);
    }
}
