//! The typed request structs — one per workload — and their two-phase
//! [`Solve`] wiring onto the workload crates' prepared-run machinery.
//!
//! Every impl follows the same split: [`Solve::shape_key`] lists the
//! request-derived dimensions the plan depends on, [`Solve::skeleton`]
//! compiles the workload's shape-only plan (`plan_paco_lcs`, `plan_fw`,
//! `plan_mm_1piece`, …) and wraps it in a [`Skeleton`], and [`Solve::bind`]
//! recovers that plan from the skeleton's payload and attaches the
//! request's buffers through the workload's `from_plan` constructor.
//! Tuning knobs are read in both phases but never keyed — the skeleton
//! cache covers them with [`Tuning::epoch`].

use crate::backend::compile_dist;
use crate::solve::{Compiled, ShapeKey, Skeleton, Solve, WorkloadRun};
use paco_core::arena::ScratchArena;
use paco_core::matrix::Matrix;
use paco_core::proc_list::ProcId;
use paco_core::semiring::{IdempotentSemiring, MinPlus, Ring, Semiring};
use paco_core::tuning::Tuning;
use paco_dist::{FwDist, LcsDist, LowerCache, MmDist, StrassenDist};
use paco_dp::gap::{plan_gap, GapCost, GapRun};
use paco_dp::lcs::{plan_paco_lcs, LcsRun};
use paco_dp::one_d::{plan_one_d, OneDJob, OneDRun, Weight};
use paco_graph::{plan_fw, FwRun, LeafCall};
use paco_matmul::{
    plan_mm_1piece, plan_strassen, MmConfig, MmJob, MmRun, StrassenOptions, StrassenRun,
};
use paco_runtime::hetero::ThrottleSpec;
use paco_runtime::schedule::Plan;
use paco_sort::{plan_sort, SortJob, SortKey, SortRun};
use std::sync::Arc;

/// Longest common subsequence of two sequences (Sect. III-B); resolves to
/// the LCS length.
#[derive(Debug, Clone)]
pub struct Lcs {
    /// First sequence.
    pub a: Vec<u32>,
    /// Second sequence.
    pub b: Vec<u32>,
}

impl WorkloadRun for LcsRun {
    type Job = usize;
    type Out = u32;
    fn typed_plan(&self) -> &Plan<usize> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &usize) {
        LcsRun::step(self, proc, job)
    }
    fn finish(self) -> u32 {
        LcsRun::finish(self)
    }
}

impl Solve for Lcs {
    type Output = u32;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("lcs", [self.a.len() as u64, self.b.len() as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let compiled = Arc::new(plan_paco_lcs(
            self.a.len(),
            self.b.len(),
            p.max(1),
            tuning.lcs_base,
        ));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<u32> {
        let compiled = skeleton.payload().expect("skeleton compiled by Lcs");
        Compiled::bound(
            skeleton,
            LcsRun::from_plan_in(self.a, self.b, compiled, tuning.lcs_base, Arc::clone(arena)),
        )
    }
    fn bind_dist(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        ranks: usize,
        _arena: &Arc<ScratchArena>,
        lower: &LowerCache,
    ) -> Result<Compiled<u32>, Self> {
        if self.a.is_empty() || self.b.is_empty() {
            return Err(self);
        }
        let compiled = skeleton.payload().expect("skeleton compiled by Lcs");
        let w = LcsDist::new(self.a, self.b, Arc::clone(&compiled), tuning.lcs_base);
        Ok(compile_dist(w, compiled, |p| &p.plan, ranks, lower))
    }
}

/// Path closure of a square matrix over a closed semiring with idempotent
/// `⊕` (the Floyd–Warshall A/B/C/D recursion, Sect. III-E applied to graphs);
/// resolves to the closed matrix.
#[derive(Debug, Clone)]
pub struct Closure<S: IdempotentSemiring> {
    /// The adjacency matrix to close; it is left untouched and the closed
    /// matrix is returned as the output.
    pub adj: Matrix<S>,
}

/// All-pairs shortest paths: [`Closure`] over the tropical `(min, +)`
/// semiring.  Entry `(i, j)` of the result is the weight of the shortest
/// directed path from `i` to `j`.
pub type Apsp = Closure<MinPlus>;

impl<S: IdempotentSemiring> WorkloadRun for FwRun<S> {
    type Job = LeafCall;
    type Out = Matrix<S>;
    fn typed_plan(&self) -> &Plan<LeafCall> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &LeafCall) {
        FwRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<S> {
        FwRun::finish(self)
    }
}

impl<S: IdempotentSemiring> Solve for Closure<S> {
    type Output = Matrix<S>;
    fn shape_key(&self) -> ShapeKey {
        // The FW schedule is semiring-independent, so closures over
        // different element types deliberately share cache entries.
        ShapeKey::new("closure", [self.adj.rows() as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let compiled = Arc::new(plan_fw(self.adj.rows(), p.max(1), tuning.fw_base));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<Matrix<S>> {
        let compiled = skeleton.payload().expect("skeleton compiled by Closure");
        Compiled::bound(
            skeleton,
            FwRun::from_plan(&self.adj, compiled, tuning.fw_base),
        )
    }
    fn bind_dist(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        ranks: usize,
        _arena: &Arc<ScratchArena>,
        lower: &LowerCache,
    ) -> Result<Compiled<Matrix<S>>, Self> {
        if self.adj.rows() == 0 {
            return Err(self);
        }
        let compiled = skeleton.payload().expect("skeleton compiled by Closure");
        let w = FwDist::new(self.adj, Arc::clone(&compiled), tuning.fw_base);
        Ok(compile_dist(w, compiled, |p| &p.plan, ranks, lower))
    }
}

/// Rectangular semiring matrix multiplication `C = A ⊗ B` with the
/// MM-1-PIECE partitioning (Corollary 10); resolves to the product matrix.
#[derive(Debug, Clone)]
pub struct MatMul<S: Semiring> {
    /// Left operand (`n × k`).
    pub a: Matrix<S>,
    /// Right operand (`k × m`).
    pub b: Matrix<S>,
}

impl<S: Semiring> WorkloadRun for MmRun<S> {
    type Job = MmJob;
    type Out = Matrix<S>;
    fn typed_plan(&self) -> &Plan<MmJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &MmJob) {
        MmRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<S> {
        MmRun::finish(self)
    }
}

impl<S: Semiring> Solve for MatMul<S> {
    type Output = Matrix<S>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new(
            "mm",
            [
                self.a.rows() as u64,
                self.a.cols() as u64,
                self.b.cols() as u64,
            ],
        )
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        assert_eq!(self.a.cols(), self.b.rows(), "inner dimensions must agree");
        let cfg = MmConfig {
            cutoff: tuning.mm_cutoff,
            ..MmConfig::default()
        };
        let (n, m, k) = (self.a.rows(), self.b.cols(), self.a.cols());
        let compiled = Arc::new(plan_mm_1piece(n, m, k, p, &cfg));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<Matrix<S>> {
        let compiled = skeleton.payload().expect("skeleton compiled by MatMul");
        let cfg = MmConfig {
            cutoff: tuning.mm_cutoff,
            ..MmConfig::default()
        };
        Compiled::bound(skeleton, MmRun::from_plan(self.a, self.b, compiled, cfg))
    }
    fn bind_dist(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        ranks: usize,
        _arena: &Arc<ScratchArena>,
        lower: &LowerCache,
    ) -> Result<Compiled<Matrix<S>>, Self> {
        if self.a.rows() == 0 || self.a.cols() == 0 || self.b.cols() == 0 {
            return Err(self);
        }
        let compiled = skeleton.payload().expect("skeleton compiled by MatMul");
        let cfg = MmConfig {
            cutoff: tuning.mm_cutoff,
            ..MmConfig::default()
        };
        let w = MmDist::new(self.a, self.b, Arc::clone(&compiled), cfg);
        Ok(compile_dist(w, compiled, |p| &p.plan, ranks, lower))
    }
}

/// Matrix multiplication on an (emulated) heterogeneous machine
/// (Corollary 12 / Sect. IV-A): work is split in proportion to the
/// throttle's throughput ratios when `aware`, evenly when not — both run on
/// the same emulated slow/fast cores, which is the Fig. 9b comparison.
///
/// The throttle must cover exactly the session's `p` processors.
#[derive(Debug, Clone)]
pub struct HeteroMatMul<S: Semiring> {
    /// Left operand (`n × k`).
    pub a: Matrix<S>,
    /// Right operand (`k × m`).
    pub b: Matrix<S>,
    /// The emulated machine: per-processor slowdown factors.
    pub throttle: ThrottleSpec,
    /// `true` = throughput-aware split ([`paco_matmul::hetero_mm`]'s
    /// behaviour), `false` = heterogeneity-unaware even split.
    pub aware: bool,
}

impl<S: Semiring> HeteroMatMul<S> {
    /// The cuboid-splitting fractions the schedule depends on: the
    /// throttle's throughput shares when `aware`, `None` (even split)
    /// otherwise.  The throttle's *slowdowns* are an execution-time knob
    /// and never shape the plan.
    fn plan_fractions(&self) -> Option<Vec<f64>> {
        self.aware.then(|| self.throttle.spec().fractions())
    }
}

impl<S: Semiring> Solve for HeteroMatMul<S> {
    type Output = Matrix<S>;
    fn shape_key(&self) -> ShapeKey {
        let mut dims = vec![
            self.a.rows() as u64,
            self.a.cols() as u64,
            self.b.cols() as u64,
        ];
        // The split fractions shape the plan, so they are part of the
        // request's shape — as exact bit patterns, because `f64` is not
        // `Eq`/`Hash` and two requests only share a skeleton when their
        // splits are *identical*.
        if let Some(fractions) = self.plan_fractions() {
            dims.extend(fractions.iter().map(|f| f.to_bits()));
        }
        ShapeKey::new("hetero-mm", dims)
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        assert_eq!(self.a.cols(), self.b.rows(), "inner dimensions must agree");
        let cfg = MmConfig {
            fractions: self.plan_fractions(),
            throttle: None,
            cutoff: tuning.mm_cutoff,
        };
        let (n, m, k) = (self.a.rows(), self.b.cols(), self.a.cols());
        let compiled = Arc::new(plan_mm_1piece(n, m, k, p, &cfg));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        _arena: &Arc<ScratchArena>,
    ) -> Compiled<Matrix<S>> {
        let compiled = skeleton
            .payload()
            .expect("skeleton compiled by HeteroMatMul");
        let cfg = MmConfig {
            fractions: self.plan_fractions(),
            throttle: Some(self.throttle),
            cutoff: tuning.mm_cutoff,
        };
        Compiled::bound(skeleton, MmRun::from_plan(self.a, self.b, compiled, cfg))
    }
}

/// Square ring matrix multiplication with Strassen's algorithm placed by the
/// pruned BFS of the 7-ary tree (Theorem 13; set
/// [`Tuning::strassen_gamma`] for CONST-PIECES); resolves to the product.
#[derive(Debug, Clone)]
pub struct Strassen<R: Ring> {
    /// Left operand (`n × n`).
    pub a: Matrix<R>,
    /// Right operand (`n × n`).
    pub b: Matrix<R>,
}

impl<R: Ring> WorkloadRun for StrassenRun<R> {
    type Job = usize;
    type Out = Matrix<R>;
    fn typed_plan(&self) -> &Plan<usize> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &usize) {
        StrassenRun::step(self, proc, job)
    }
    fn finish(self) -> Matrix<R> {
        StrassenRun::finish(self)
    }
}

fn strassen_options(tuning: &Tuning) -> StrassenOptions {
    StrassenOptions {
        cutoff: tuning.strassen_cutoff,
        parallel_base: tuning.strassen_parallel_base,
        gamma: tuning.strassen_gamma,
    }
}

impl<R: Ring> Solve for Strassen<R> {
    type Output = Matrix<R>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("strassen", [self.a.rows() as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let compiled = Arc::new(plan_strassen(self.a.rows(), p, strassen_options(tuning)));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<Matrix<R>> {
        let compiled = skeleton.payload().expect("skeleton compiled by Strassen");
        Compiled::bound(
            skeleton,
            StrassenRun::from_plan_in(
                self.a,
                self.b,
                compiled,
                tuning.strassen_cutoff,
                Arc::clone(arena),
            ),
        )
    }
    fn bind_dist(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        ranks: usize,
        arena: &Arc<ScratchArena>,
        lower: &LowerCache,
    ) -> Result<Compiled<Matrix<R>>, Self> {
        if self.a.rows() == 0 {
            return Err(self);
        }
        let compiled: Arc<paco_matmul::StrassenPlan> =
            skeleton.payload().expect("skeleton compiled by Strassen");
        let run = StrassenRun::from_plan_in(
            self.a,
            self.b,
            Arc::clone(&compiled),
            tuning.strassen_cutoff,
            Arc::clone(arena),
        );
        let w = StrassenDist::new(run, tuning.strassen_cutoff);
        Ok(compile_dist(w, compiled, |p| &p.plan, ranks, lower))
    }
}

/// Comparison sort of a key vector with PACO SORT (Theorem 16); resolves to
/// the sorted vector.
#[derive(Debug, Clone)]
pub struct Sort<T: SortKey> {
    /// The keys to sort.
    pub keys: Vec<T>,
}

impl<T: SortKey + 'static> WorkloadRun for SortRun<T> {
    type Job = SortJob;
    type Out = Vec<T>;
    fn typed_plan(&self) -> &Plan<SortJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &SortJob) {
        SortRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<T> {
        SortRun::finish(self)
    }
}

impl<T: SortKey + 'static> Solve for Sort<T> {
    type Output = Vec<T>;
    fn shape_key(&self) -> ShapeKey {
        // Like the FW closure, the sort schedule is element-type
        // independent (pivot *selection* is data-dependent but happens at
        // bind time), so sorts of different key types share entries.
        ShapeKey::new("sort", [self.keys.len() as u64])
    }
    fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
        let plan = Arc::new(plan_sort(self.keys.len(), p));
        Skeleton::new(Arc::clone(&plan), &plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<Vec<T>> {
        let plan = skeleton.payload().expect("skeleton compiled by Sort");
        let k = tuning.sort_k(self.keys.len());
        Compiled::bound(
            skeleton,
            SortRun::from_plan_in(self.keys, plan, p, k, Arc::clone(arena)),
        )
    }
}

/// The 1D / least-weight-subsequence problem (Sect. III-C): compute
/// `D[j] = min_i D[i] + w(i, j)` for `j = 1..=n` from `D[0] = d0`; resolves
/// to the full `D[0..=n]` array.
#[derive(Debug, Clone)]
pub struct OneD<W: Weight> {
    /// Number of breakpoints (the table has `n + 1` entries).
    pub n: usize,
    /// The O(1), memory-free weight function.
    pub weight: W,
    /// The initial value `D[0]`.
    pub d0: f64,
}

impl<W: Weight + Send + 'static> WorkloadRun for OneDRun<W> {
    type Job = OneDJob;
    type Out = Vec<f64>;
    fn typed_plan(&self) -> &Plan<OneDJob> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &OneDJob) {
        OneDRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<f64> {
        OneDRun::finish(self)
    }
}

impl<W: Weight + Send + 'static> Solve for OneD<W> {
    type Output = Vec<f64>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("one-d", [self.n as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let compiled = Arc::new(plan_one_d(self.n, p, tuning.one_d_base.max(2)));
        Skeleton::new(Arc::clone(&compiled), &compiled.plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        _p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<Vec<f64>> {
        let compiled = skeleton.payload().expect("skeleton compiled by OneD");
        Compiled::bound(
            skeleton,
            OneDRun::from_plan_in(
                self.n,
                self.weight,
                self.d0,
                compiled,
                tuning.one_d_base,
                Arc::clone(arena),
            ),
        )
    }
}

/// The GAP problem (Sect. III-D): edit distance with general gap penalties
/// over an `(n+1) × (n+1)` table; resolves to the table in row-major order.
#[derive(Debug, Clone)]
pub struct Gap<C: GapCost> {
    /// The table is `(n + 1) × (n + 1)`.
    pub n: usize,
    /// The O(1), memory-free cost functions.
    pub costs: C,
}

impl<C: GapCost + Send + 'static> WorkloadRun for GapRun<C> {
    type Job = (usize, usize);
    type Out = Vec<f64>;
    fn typed_plan(&self) -> &Plan<(usize, usize)> {
        self.plan()
    }
    fn step(&self, proc: ProcId, job: &(usize, usize)) {
        GapRun::step(self, proc, job)
    }
    fn finish(self) -> Vec<f64> {
        GapRun::finish(self)
    }
}

impl<C: GapCost + Send + 'static> Solve for Gap<C> {
    type Output = Vec<f64>;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("gap", [self.n as u64])
    }
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton {
        let blocks = tuning.gap_grid(p).clamp(1, self.n + 1);
        let plan = Arc::new(plan_gap(self.n, p, blocks));
        Skeleton::new(Arc::clone(&plan), &plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<Vec<f64>> {
        let plan = skeleton.payload().expect("skeleton compiled by Gap");
        let blocks = tuning.gap_grid(p).clamp(1, self.n + 1);
        Compiled::bound(
            skeleton,
            GapRun::from_plan_in(self.n, self.costs, plan, blocks, arena),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use paco_core::workload::{
        random_digraph, random_keys, random_matrix_wrapping, related_sequences, GapCosts,
        ParagraphWeight,
    };
    use paco_dp::gap::gap_reference;
    use paco_dp::lcs::lcs_reference;
    use paco_dp::one_d::one_d_reference;
    use paco_graph::fw_reference;
    use paco_matmul::mm_reference;

    #[test]
    fn every_request_type_matches_its_reference() {
        let session = Session::new(3);

        let (a, b) = related_sequences(150, 4, 0.25, 11);
        assert_eq!(
            session.run(Lcs {
                a: a.clone(),
                b: b.clone()
            }),
            lcs_reference(&a, &b)
        );

        let g = random_digraph(48, 0.2, 40, 5);
        assert_eq!(session.run(Apsp { adj: g.clone() }), fw_reference(&g));

        let ma = random_matrix_wrapping(40, 24, 1);
        let mb = random_matrix_wrapping(24, 32, 2);
        assert_eq!(
            session.run(MatMul {
                a: ma.clone(),
                b: mb.clone()
            }),
            mm_reference(&ma, &mb)
        );

        let sa = random_matrix_wrapping(96, 96, 3);
        let sb = random_matrix_wrapping(96, 96, 4);
        assert_eq!(
            session.run(Strassen {
                a: sa.clone(),
                b: sb.clone()
            }),
            mm_reference(&sa, &sb)
        );

        let keys = random_keys(500, 9);
        let mut expect = keys.clone();
        expect.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(session.run(Sort { keys }), expect);

        let w = ParagraphWeight { ideal: 9.0 };
        let got = session.run(OneD {
            n: 130,
            weight: w,
            d0: 0.0,
        });
        let expect = one_d_reference(130, &w, 0.0);
        assert!(got.iter().zip(&expect).all(|(x, y)| (x - y).abs() < 1e-9));

        let costs = GapCosts::default();
        let got = session.run(Gap { n: 40, costs });
        let expect = gap_reference(40, &costs);
        assert!(got.iter().zip(&expect).all(|(x, y)| (x - y).abs() < 1e-9));
    }

    #[test]
    fn degenerate_requests_resolve() {
        let session = Session::new(2);
        assert_eq!(
            session.run(Lcs {
                a: vec![],
                b: vec![1, 2]
            }),
            0
        );
        assert_eq!(session.run(Sort::<f64> { keys: vec![] }), Vec::<f64>::new());
        let empty: Matrix<MinPlus> = Matrix::from_fn(0, 0, |_, _| unreachable!());
        assert_eq!(session.run(Apsp { adj: empty }).rows(), 0);
    }

    #[test]
    fn shape_keys_separate_workloads_and_dimensions() {
        let lcs = Lcs {
            a: vec![1, 2],
            b: vec![3],
        };
        assert_eq!(lcs.shape_key(), lcs.clone().shape_key());
        assert_ne!(
            lcs.shape_key(),
            Lcs {
                a: vec![1],
                b: vec![3]
            }
            .shape_key()
        );
        // Same dims, different workload kind: distinct keys.
        assert_ne!(
            Sort::<f64> { keys: vec![1.0] }.shape_key(),
            OneD {
                n: 1,
                weight: ParagraphWeight { ideal: 1.0 },
                d0: 0.0
            }
            .shape_key()
        );
        // Hetero MM: the split fractions are part of the shape.
        let ma = random_matrix_wrapping(8, 8, 1);
        let throttle = ThrottleSpec::homogeneous(2);
        let aware = HeteroMatMul {
            a: ma.clone(),
            b: ma.clone(),
            throttle: throttle.clone(),
            aware: true,
        };
        let unaware = HeteroMatMul {
            a: ma.clone(),
            b: ma,
            throttle,
            aware: false,
        };
        assert_ne!(aware.shape_key(), unaware.shape_key());
    }
}
