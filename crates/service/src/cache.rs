//! The keyed `SkeletonCache`: one per [`Session`](crate::Session) and one
//! per [`Engine`](crate::Engine) shard.
//!
//! Cached [`Skeleton`]s are keyed on `(ShapeKey, p, Tuning::epoch)`.  The
//! shape key carries every request-derived dimension the plan depends on;
//! `p` is fixed per cache owner but keyed anyway so an entry can never leak
//! across differently-sized pools; and the tuning epoch makes knob changes
//! (`Session::update_tuning`) invalidate wholesale — stale entries under an
//! old epoch become unreachable and age out through the LRU bound, no
//! scanning required.
//!
//! Each cache keeps exact per-instance hit/miss/eviction counters (what the
//! tests assert on) and mirrors every event into the process-wide
//! [`paco_core::metrics::sched::plan_cache`] counters (what the benches
//! gauge).

use crate::solve::{ShapeKey, Skeleton};
use paco_core::metrics::sched::plan_cache;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time copy of one cache's counters — per-instance and exact,
/// unlike the process-wide [`plan_cache`] aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from a cached skeleton (no plan compiled).
    pub hits: u64,
    /// Lookups that compiled a fresh skeleton and inserted it.
    pub misses: u64,
    /// Cached skeletons dropped to respect the capacity bound.
    pub evictions: u64,
    /// Skeletons currently cached.
    pub entries: usize,
}

impl PlanCacheStats {
    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum — how an engine aggregates its shard caches.
    pub(crate) fn merge(self, other: PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
        }
    }
}

struct Entry {
    skeleton: Skeleton,
    /// Last-touch stamp; the entry with the smallest stamp is evicted first.
    stamp: u64,
}

/// A bounded, LRU-evicting map from `(ShapeKey, p, epoch)` to [`Skeleton`].
pub(crate) struct SkeletonCache {
    map: Mutex<HashMap<(ShapeKey, usize, u64), Entry>>,
    cap: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SkeletonCache {
    /// Default capacity bound: generous for real request mixes (a workload
    /// shape is one entry regardless of how many requests reuse it) while
    /// keeping worst-case retained plan memory proportional to shapes seen,
    /// not requests served.
    pub(crate) const DEFAULT_CAP: usize = 128;

    pub(crate) fn new(cap: usize) -> Self {
        assert!(cap >= 1, "a skeleton cache needs room for one entry");
        Self {
            map: Mutex::new(HashMap::new()),
            cap,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up the skeleton for `(key, p, epoch)`, compiling and inserting
    /// it on a miss.  The compile runs under the cache lock: concurrent
    /// same-shaped requests then compile once and hit `N−1` times instead
    /// of racing to `N` compiles — for this workload (compile is pure CPU,
    /// no I/O) blocking the second requester on the first's compile *is*
    /// the fast path.
    pub(crate) fn get_or_compile(
        &self,
        key: ShapeKey,
        p: usize,
        epoch: u64,
        compile: impl FnOnce() -> Skeleton,
    ) -> Skeleton {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        if let Some(entry) = map.get_mut(&(key.clone(), p, epoch)) {
            entry.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            plan_cache::record_hit();
            return entry.skeleton.clone();
        }
        let skeleton = compile();
        self.misses.fetch_add(1, Ordering::Relaxed);
        plan_cache::record_miss();
        if map.len() >= self.cap {
            // Evict the least-recently-touched entry (stale-epoch entries
            // are never touched again, so they drain out first in practice).
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                plan_cache::record_eviction();
            }
        }
        map.insert(
            (key, p, epoch),
            Entry {
                skeleton: skeleton.clone(),
                stamp,
            },
        );
        skeleton
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_runtime::schedule::{Plan, Step};
    use std::sync::Arc;

    fn skeleton(steps: usize) -> Skeleton {
        let plan = Arc::new(Plan::single_wave(
            1,
            (0..steps).map(|j| Step { proc: 0, job: j }).collect(),
        ));
        Skeleton::new(Arc::clone(&plan), &plan)
    }

    #[test]
    fn hits_share_one_compile_and_epoch_changes_miss() {
        let cache = SkeletonCache::new(8);
        let key = ShapeKey::new("t", [3]);
        let mut compiles = 0;
        for _ in 0..5 {
            let s = cache.get_or_compile(key.clone(), 2, 0, || {
                compiles += 1;
                skeleton(3)
            });
            assert_eq!(s.steps(), 3);
        }
        assert_eq!(compiles, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (4, 1, 1));
        assert!((stats.hit_ratio() - 0.8).abs() < 1e-12);

        // Same shape, new epoch: a fresh compile.
        cache.get_or_compile(key.clone(), 2, 1, || {
            compiles += 1;
            skeleton(3)
        });
        assert_eq!(compiles, 2);
        // Different p: also a fresh compile.
        cache.get_or_compile(key, 3, 1, || {
            compiles += 1;
            skeleton(3)
        });
        assert_eq!(compiles, 3);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used() {
        let cache = SkeletonCache::new(2);
        let key = |i: u64| ShapeKey::new("t", [i]);
        cache.get_or_compile(key(0), 1, 0, || skeleton(1));
        cache.get_or_compile(key(1), 1, 0, || skeleton(1));
        // Touch 0 so 1 becomes the LRU entry...
        cache.get_or_compile(key(0), 1, 0, || unreachable!("0 is cached"));
        // ...then inserting 2 must evict 1, not 0.
        cache.get_or_compile(key(2), 1, 0, || skeleton(1));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        cache.get_or_compile(key(0), 1, 0, || unreachable!("0 survived"));
        let mut recompiled = false;
        cache.get_or_compile(key(1), 1, 0, || {
            recompiled = true;
            skeleton(1)
        });
        assert!(recompiled, "1 was evicted");
    }
}
