//! The [`Engine`]: concurrent, admission-controlled ingress over the PACO
//! executor core.
//!
//! Where a [`Session`](crate::Session) queues submissions on its owner's
//! thread and executes nothing until that same thread calls `flush()`, an
//! engine accepts requests **from any thread at any time** — including while
//! a pass is in flight — through cheap [`Client`] handles,
//! and executes them on its own dedicated executor threads.  Each *shard*
//! owns a pinned [`WorkerPool`](paco_runtime::WorkerPool) plus the engine's
//! [`Tuning`] (one pass core per shard, the same core `Session::flush`
//! drives synchronously), drains its multi-producer queue under the
//! engine's [`BatchPolicy`], merges whatever it gathered through
//! [`Plan::batch`](paco_runtime::schedule::Plan::batch) (max-of-waves
//! barriers), and resolves tickets as passes complete — producers never call
//! `flush`; they [`Ticket::wait`](crate::Ticket::wait).
//!
//! Submissions are routed to a shard *first* and then compiled through
//! that shard's `SkeletonCache`: same-shaped requests pay the pruned-BFS
//! planning once and only re-bind their buffers, and the size-balanced
//! router's load measure (outstanding plan steps) reads off the cached
//! skeleton instead of a fresh compile.
//!
//! Admission control is the engine's open-loop story: with
//! [`BatchPolicy::capacity`] set, each shard's queue is bounded —
//! [`Client::try_submit`] sheds load
//! ([`Overloaded`](crate::Overloaded)) while [`Client::submit`] applies
//! backpressure (blocks for space).  Queues hold one FIFO lane per
//! [`Priority`] class and drain strictly by class; requests whose
//! deadline passed while queued resolve to
//! [`TicketError::Expired`](crate::TicketError::Expired) instead of
//! occupying a slot in the pass.

use crate::backend::Backend;
use crate::cache::{PlanCacheStats, SkeletonCache};
use crate::client::Client;
use crate::exec::{PassCore, PendingRequest};
use crate::policy::{BatchPolicy, Priority, Routing};
use crate::solve::{Prepared, Solve};
use crate::ticket::{self, SlotState};
use paco_core::arena::{ArenaStats, ScratchArena};
use paco_core::machine::available_processors;
use paco_core::metrics::sched::ingress::{self, LatencyHistogram, LatencySnapshot};
use paco_core::tuning::Tuning;
use paco_dist::LowerCache;
use paco_incr::HandleRegistry;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a shard's executor sees when it locks its queue: one FIFO lane per
/// [`Priority`] class, drained strictly by class.
struct ShardQueue {
    lanes: [VecDeque<PendingRequest>; Priority::CLASSES],
    /// Once set, no further submissions are accepted; the executor drains
    /// what is queued and exits.
    shutdown: bool,
}

impl ShardQueue {
    fn new() -> Self {
        Self {
            lanes: Default::default(),
            shutdown: false,
        }
    }

    /// Requests queued across every lane — the depth the capacity bound
    /// applies to.
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    fn push(&mut self, request: PendingRequest) {
        self.lanes[request.priority.lane()].push_back(request);
    }

    /// Dequeue up to `max_batch` live requests — higher classes first, FIFO
    /// within a class.  Requests whose deadline has passed are diverted into
    /// the second vector instead; they do not count against `max_batch`
    /// (an expired request never costs a live one its slot in the pass).
    fn drain_batch(
        &mut self,
        max_batch: usize,
        now: Instant,
    ) -> (Vec<PendingRequest>, Vec<PendingRequest>) {
        let mut batch = Vec::new();
        let mut expired = Vec::new();
        'lanes: for lane in &mut self.lanes {
            while let Some(request) = lane.pop_front() {
                if request.expired(now) {
                    expired.push(request);
                } else {
                    batch.push(request);
                    if batch.len() == max_batch {
                        break 'lanes;
                    }
                }
            }
        }
        (batch, expired)
    }
}

/// One shard's shared half: the queue producers push into and the counters
/// its executor maintains.
struct Shard {
    queue: Mutex<ShardQueue>,
    /// Signalled on every enqueue and on shutdown — wakes the executor.
    wake: Condvar,
    /// Signalled when a drain frees queue space and on shutdown — wakes
    /// producers blocked in [`Client::submit`] backpressure.
    space: Condvar,
    /// Mirror of the queue's current length, maintained under the queue
    /// lock but readable without it — the advisory signal capacity-aware
    /// routing peeks at.  The authoritative bound check happens under the
    /// lock.
    depth: AtomicUsize,
    /// High-water mark of `depth` over the shard's lifetime: the proof the
    /// capacity bound held.
    max_depth: AtomicUsize,
    /// Submissions admitted to this shard, ever — the arrival counter the
    /// adaptive gathering window estimates its rate from.
    arrivals: AtomicU64,
    /// Compiled plan steps enqueued-or-executing on this shard; the
    /// size-balanced router picks the shard minimizing this.
    outstanding_steps: AtomicU64,
    /// Passes this shard's executor ran.
    passes: AtomicU64,
    /// Requests this shard executed (resolved or poisoned).
    requests: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            queue: Mutex::new(ShardQueue::new()),
            wake: Condvar::new(),
            space: Condvar::new(),
            depth: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            arrivals: AtomicU64::new(0),
            outstanding_steps: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }
}

/// State shared between the engine, its clients and its executor threads.
pub(crate) struct EngineShared {
    p: usize,
    tuning: Tuning,
    policy: BatchPolicy,
    backend: Backend,
    /// Lowered communication schedules for [`Backend::Distributed`], shared
    /// across shards: lowering depends only on the (payload, placement)
    /// pair, so one cache serves every shard without re-lowering.
    lower: LowerCache,
    shards: Vec<Shard>,
    /// One plan cache per shard (same indexing as `shards`): a shard's
    /// executor and the producers routed to it share skeletons without
    /// contending with the other shards' caches.
    caches: Vec<SkeletonCache>,
    /// One scratch arena per shard (same indexing): binds routed to a shard
    /// check their temporary buffers out of its pool and return them at
    /// finish, so a shard's steady-state traffic recycles allocations
    /// without contending with the other shards' pools.
    arenas: Vec<Arc<ScratchArena>>,
    /// Closed-graph handles of the incremental subsystem, shared by every
    /// shard: routing gives each graph's traffic *affinity* to one shard,
    /// but the state is reachable (behind its mutex) from all of them.
    registry: Arc<HandleRegistry>,
    /// Round-robin cursor.
    next_shard: AtomicUsize,
    /// Advisory fast-path flag; the per-shard `ShardQueue::shutdown` (under
    /// the queue lock) stays the authoritative word on whether an enqueue
    /// is accepted.
    shutting_down: std::sync::atomic::AtomicBool,
    enqueued: AtomicU64,
    rejected: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    poisoned: AtomicU64,
    /// Queueing + execution latency of every request this engine completed
    /// (resolved `Done`; rejected/expired/poisoned requests are not mixed
    /// in).
    latency: LatencyHistogram,
}

impl EngineShared {
    pub(crate) fn p(&self) -> usize {
        self.p
    }

    /// Advisory: has shutdown begun?  Lets `Client::submit` skip compiling
    /// a request whose enqueue would be rejected anyway; a stale `false` is
    /// harmless (the locked per-shard check still rejects).
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Count one rejected submission and resolve its slot accordingly.
    pub(crate) fn reject(&self, slot: &crate::ticket::Slot) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        ingress::record_rejected();
        ticket::resolve(slot, SlotState::Rejected);
    }

    /// Compile `req` for shard `shard`, reusing that shard's cached
    /// skeleton for the request's shape when one exists (the
    /// [`Routing::SizeBalanced`] load measure — outstanding plan steps —
    /// then comes off the cache too, via
    /// [`Skeleton::steps`](crate::Skeleton::steps), instead of a fresh
    /// compile).  Runs on the producer's thread: executors never compile.
    pub(crate) fn compile_on<R: Solve>(&self, shard: usize, req: R) -> Box<dyn Prepared> {
        let req = match self.backend {
            Backend::Local => req,
            Backend::Distributed { ranks } => {
                let skeleton = self.caches[shard].get_or_compile(
                    req.shape_key(),
                    ranks,
                    self.tuning.epoch,
                    || req.skeleton(&self.tuning, ranks),
                );
                match req.bind_dist(
                    &skeleton,
                    &self.tuning,
                    ranks,
                    &self.arenas[shard],
                    &self.lower,
                ) {
                    Ok(compiled) => return compiled.inner,
                    // No distributed binding for this request: fall back to
                    // a local skeleton (cached separately — the processor
                    // counts differ).
                    Err(req) => req,
                }
            }
        };
        let skeleton =
            self.caches[shard].get_or_compile(req.shape_key(), self.p, self.tuning.epoch, || {
                req.skeleton(&self.tuning, self.p)
            });
        req.bind(&skeleton, &self.tuning, self.p, &self.arenas[shard])
            .inner
    }

    pub(crate) fn registry(&self) -> Arc<HandleRegistry> {
        Arc::clone(&self.registry)
    }

    /// Route a submission that may carry a [`Solve::route_hint`]: a hinted
    /// request goes to `hint % shards` — a *stable* mapping, so every
    /// update/snapshot of one closed graph shares a shard queue, plan cache
    /// and arena — while unhinted requests fall through to the policy
    /// routing.
    pub(crate) fn route_for(&self, hint: Option<u64>) -> usize {
        match hint {
            Some(h) => (h % self.shards.len() as u64) as usize,
            None => self.route(),
        }
    }

    /// Pick the shard a new submission goes to.  Routing happens *before*
    /// compilation so the submission can compile against the routed
    /// shard's plan cache.
    pub(crate) fn route(&self) -> usize {
        match self.policy.routing {
            Routing::RoundRobin => {
                self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len()
            }
            Routing::SizeBalanced => {
                // Prefer the least-loaded shard *with queue space*; only
                // when every queue is at capacity fall back to the global
                // minimum (and let admission block or shed there).  The
                // depth reads are advisory — a racing admit can still fill
                // the chosen shard first — but the capacity bound itself is
                // enforced under that shard's lock, never here.
                let least_loaded = |shards: &mut dyn Iterator<Item = (usize, &Shard)>| {
                    shards
                        .min_by_key(|(_, s)| s.outstanding_steps.load(Ordering::Relaxed))
                        .map(|(i, _)| i)
                };
                let mut with_space = self.shards.iter().enumerate().filter(|(_, s)| {
                    self.policy
                        .capacity
                        .is_none_or(|cap| s.depth.load(Ordering::Relaxed) < cap)
                });
                least_loaded(&mut with_space)
                    .or_else(|| least_loaded(&mut self.shards.iter().enumerate()))
                    .unwrap_or(0)
            }
        }
    }

    /// Finish an admission whose capacity/shutdown checks already passed:
    /// queue the request and maintain every counter, all under the shard's
    /// queue lock an executor cannot drain past — so observers never see
    /// `executed > enqueued` and the depth gauges never overshoot the
    /// bound.
    fn admit(
        &self,
        shard: &Shard,
        queue: &mut MutexGuard<'_, ShardQueue>,
        request: PendingRequest,
    ) {
        shard
            .outstanding_steps
            .fetch_add(request.steps() as u64, Ordering::Relaxed);
        queue.push(request);
        let depth = queue.len();
        shard.depth.store(depth, Ordering::Relaxed);
        shard.max_depth.fetch_max(depth, Ordering::Relaxed);
        shard.arrivals.fetch_add(1, Ordering::Relaxed);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        ingress::record_enqueued();
        ingress::record_queue_depth(depth);
    }

    /// Fail-fast admission ([`Client::try_submit`]): admit the request
    /// unless the routed shard is at capacity, in which case count the
    /// overload and return `false` with nothing queued.  A shut-down engine
    /// resolves the slot `Rejected` and returns `true` — shutdown is the
    /// ticket's verdict, not an overload.
    pub(crate) fn try_enqueue(&self, shard: usize, request: PendingRequest) -> bool {
        let shard = &self.shards[shard];
        let mut queue = shard.queue.lock();
        if queue.shutdown {
            drop(queue);
            self.reject(&request.slot);
            return true;
        }
        if self.policy.capacity.is_some_and(|cap| queue.len() >= cap) {
            drop(queue);
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            ingress::record_overloaded();
            return false;
        }
        self.admit(shard, &mut queue, request);
        drop(queue);
        shard.wake.notify_one();
        true
    }

    /// Backpressure admission ([`Client::submit`]): if the routed shard is
    /// at capacity, park until an executor drains below the bound or
    /// shutdown begins — then admit (or resolve the slot `Rejected`).  On
    /// an unbounded engine this never waits.
    pub(crate) fn enqueue_blocking(&self, shard: usize, request: PendingRequest) {
        let shard = &self.shards[shard];
        let mut queue = shard.queue.lock();
        if let Some(cap) = self.policy.capacity {
            shard
                .space
                .wait_while(&mut queue, |q| !q.shutdown && q.len() >= cap);
        }
        if queue.shutdown {
            drop(queue);
            self.reject(&request.slot);
            return;
        }
        self.admit(shard, &mut queue, request);
        drop(queue);
        shard.wake.notify_one();
    }
}

/// A snapshot of one shard's occupancy and work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Executor passes this shard ran.
    pub passes: u64,
    /// Requests this shard executed (resolved or poisoned).
    pub requests: u64,
    /// Requests currently queued on this shard (not yet drained by a pass).
    pub queued: usize,
    /// High-water mark of `queued` over the shard's lifetime.  On a
    /// [`capacity`](BatchPolicy::capacity)-bounded engine this never
    /// exceeds the bound — the invariant `tests/engine_admission.rs` holds
    /// the engine to.
    pub max_depth: usize,
    /// Compiled plan steps currently enqueued-or-executing on this shard —
    /// the load measure size-balanced routing works from.
    pub outstanding_steps: u64,
    /// This shard's plan-cache counters (skeleton hits/misses/evictions).
    pub plan_cache: PlanCacheStats,
    /// This shard's scratch-arena counters (pooled-buffer hits/misses).
    pub arena: ArenaStats,
}

/// A snapshot of an engine's ingress counters (per-engine; the process-wide
/// twins live in [`paco_core::metrics::sched::ingress`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a shard queue.
    pub enqueued: u64,
    /// Requests refused because the engine was shutting down.
    pub rejected: u64,
    /// Fail-fast submissions refused because the routed shard was at
    /// capacity ([`Client::try_submit`](crate::Client::try_submit) returned
    /// [`Overloaded`](crate::Overloaded)); nothing was queued for these.
    pub overloaded: u64,
    /// Requests whose deadline passed while queued; resolved
    /// [`Expired`](crate::TicketError::Expired) without executing.
    pub expired: u64,
    /// Requests lost to panicking passes.
    pub poisoned: u64,
    /// Queueing + execution latency of completed requests, log₂-bucketed.
    pub latency: LatencySnapshot,
    /// Per-shard occupancy and work.
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Total executor passes across all shards.
    pub fn passes(&self) -> u64 {
        self.shards.iter().map(|s| s.passes).sum()
    }

    /// Total requests executed across all shards.
    pub fn executed(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Mean requests per pass — the coalescing win (1.0 means no request
    /// ever shared a pass).
    pub fn coalesce_ratio(&self) -> f64 {
        let passes = self.passes();
        if passes == 0 {
            1.0
        } else {
            self.executed() as f64 / passes as f64
        }
    }

    /// Highest queue depth any shard ever reached.  On a
    /// [`capacity`](BatchPolicy::capacity)-bounded engine this is `<=` the
    /// bound; unbounded, it is the "memory hoarding" gauge the load
    /// generator watches grow.
    pub fn max_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.max_depth).max().unwrap_or(0)
    }

    /// Plan-cache counters aggregated across every shard's cache.
    pub fn plan_cache(&self) -> PlanCacheStats {
        self.shards
            .iter()
            .map(|s| s.plan_cache)
            .fold(PlanCacheStats::default(), PlanCacheStats::merge)
    }

    /// Scratch-arena counters aggregated across every shard's pool; feed
    /// [`ArenaStats::reuse_ratio`] for the engine-wide reuse gauge.
    pub fn arena(&self) -> ArenaStats {
        self.shards
            .iter()
            .map(|s| s.arena)
            .fold(ArenaStats::default(), ArenaStats::merge)
    }

    /// Fraction of admission attempts refused (shutdown `rejected` plus
    /// capacity `overloaded`) out of all attempts that reached admission.
    /// `0.0` when nothing was attempted.
    pub fn reject_ratio(&self) -> f64 {
        let refused = self.rejected + self.overloaded;
        let attempts = self.enqueued + refused;
        if attempts == 0 {
            0.0
        } else {
            refused as f64 / attempts as f64
        }
    }
}

/// The concurrent front door: a set of executor shards (each owning its own
/// pinned worker pool) serving a multi-producer submission queue under a
/// [`BatchPolicy`].
///
/// Construction spawns the executor threads; [`Engine::client`] hands out
/// `Clone + Send` [`Client`]s whose `submit`/`try_submit` can be called from
/// any thread at any time.  [`Engine::shutdown`] (or dropping the engine)
/// stops intake, drains every queued request through final passes, and joins
/// the executors and their pools — no admitted work is silently dropped.
///
/// ```
/// use paco_service::{Engine, Sort};
///
/// let engine = Engine::builder().procs(2).build();
/// let client = engine.client();
/// let ticket = client.submit(Sort { keys: vec![3.0, 1.0, 2.0] });
/// assert_eq!(ticket.wait().unwrap(), vec![1.0, 2.0, 3.0]);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<EngineShared>,
    executors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(p={}, shards={})",
            self.shared.p,
            self.shared.shards.len()
        )
    }
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with `p` processors per shard and an otherwise default
    /// configuration ([`Tuning::from_env`], [`BatchPolicy::default`]).
    pub fn new(p: usize) -> Self {
        Self::builder().procs(p).build()
    }

    /// The processor count of each shard's pool — every request is compiled
    /// for this `p`.
    pub fn p(&self) -> usize {
        self.shared.p
    }

    /// The tuning config every request is compiled with.
    pub fn tuning(&self) -> &Tuning {
        &self.shared.tuning
    }

    /// The admission and coalescing policy the executors run under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.shared.policy
    }

    /// A cheap, `Clone + Send` submission handle.  Clients outlive the
    /// engine gracefully: submissions after shutdown resolve to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected) instead of
    /// blocking forever.
    pub fn client(&self) -> Client {
        Client::new(Arc::clone(&self.shared))
    }

    /// The engine's closed-graph handle registry, shared across shards.
    /// Construct the incremental requests ([`IncClose`](crate::IncClose),
    /// [`IncUpdate`](crate::IncUpdate), …) against this registry; their
    /// [`Solve::route_hint`] then pins each
    /// graph's traffic to the shard owning its state.
    pub fn registry(&self) -> Arc<HandleRegistry> {
        self.shared.registry()
    }

    /// This engine's ingress counters (exact for this engine, unlike the
    /// process-wide [`sched::ingress`](paco_core::metrics::sched::ingress)
    /// counters which aggregate every engine in the process).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            enqueued: self.shared.enqueued.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            poisoned: self.shared.poisoned.load(Ordering::Relaxed),
            latency: self.shared.latency.snapshot(),
            shards: self
                .shared
                .shards
                .iter()
                .zip(self.shared.caches.iter().zip(&self.shared.arenas))
                .map(|(s, (cache, arena))| ShardStats {
                    passes: s.passes.load(Ordering::Relaxed),
                    requests: s.requests.load(Ordering::Relaxed),
                    queued: s.queue.lock().len(),
                    max_depth: s.max_depth.load(Ordering::Relaxed),
                    outstanding_steps: s.outstanding_steps.load(Ordering::Relaxed),
                    plan_cache: cache.stats(),
                    arena: arena.stats(),
                })
                .collect(),
        }
    }

    /// Stop intake, drain, and tear down.
    ///
    /// Every request admitted before this call still executes (the
    /// executors run final passes over their remaining queues — the
    /// gathering window is cut short, not the work; deadlines are still
    /// honoured, so an already-expired request resolves `Expired` rather
    /// than running).  Producers blocked in [`Client::submit`]
    /// backpressure wake up and their tickets resolve to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected), as do
    /// requests submitted after this call.  Returns the engine's final
    /// stats once every executor thread and every worker pool has been
    /// joined — unlike a mid-flight [`Engine::stats`] call, the returned
    /// counters can no longer move.
    pub fn shutdown(mut self) -> EngineStats {
        // Executor threads catch pass panics themselves; a dead executor
        // means the executor logic itself is broken.
        assert!(self.shutdown_impl(), "engine executor thread panicked");
        self.stats()
    }

    /// Returns whether every executor thread exited cleanly.
    fn shutdown_impl(&mut self) -> bool {
        self.shared
            .shutting_down
            .store(true, std::sync::atomic::Ordering::Relaxed);
        for shard in &self.shared.shards {
            shard.queue.lock().shutdown = true;
            shard.wake.notify_all();
            // Producers parked in backpressure must wake to learn the
            // engine is gone — their requests resolve Rejected, not hang.
            shard.space.notify_all();
        }
        let mut clean = true;
        for handle in self.executors.drain(..) {
            clean &= handle.join().is_ok();
        }
        clean
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Unlike the explicit `shutdown()`, drop must not panic: the engine
        // may be dropped while a test assertion is already unwinding the
        // stack, and a double panic would abort and eat the real failure.
        let _ = self.shutdown_impl();
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    procs: Option<usize>,
    tuning: Option<Tuning>,
    base: Option<usize>,
    policy: Option<BatchPolicy>,
    shards: Option<usize>,
    backend: Backend,
}

impl EngineBuilder {
    /// Pin each shard's pool to `p` processors (default: the machine's
    /// available parallelism).
    pub fn procs(mut self, p: usize) -> Self {
        assert!(p >= 1, "an engine needs at least one processor per shard");
        self.procs = Some(p);
        self
    }

    /// Use an explicit tuning config (default: [`Tuning::from_env`], which
    /// honours the `PACO_BASE` override).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Convenience: set every base/grain-size knob at once
    /// ([`Tuning::with_base`]) on top of whatever tuning the builder ends up
    /// with.
    pub fn base(mut self, base: usize) -> Self {
        self.base = Some(base);
        self
    }

    /// Use an explicit admission/coalescing policy (default:
    /// [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Convenience: set only the shard count on top of whatever policy the
    /// builder ends up with — applied at [`EngineBuilder::build`], so it
    /// composes with [`EngineBuilder::policy`] in either call order (like
    /// [`EngineBuilder::base`] over the tuning).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Execute requests on `backend` (default: [`Backend::Local`]) — same
    /// semantics as
    /// [`SessionBuilder::backend`](crate::SessionBuilder::backend), applied
    /// to every shard.
    pub fn backend(mut self, backend: Backend) -> Self {
        if let Backend::Distributed { ranks } = backend {
            assert!(ranks >= 1, "a distributed engine needs at least one rank");
        }
        self.backend = backend;
        self
    }

    /// Spawn the executor shard(s) and finish the engine.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid — see [`BatchPolicy`]'s validation
    /// rules (`max_batch >= 1`, `shards >= 1`, `capacity != Some(0)`).
    pub fn build(self) -> Engine {
        let mut tuning = self.tuning.unwrap_or_else(Tuning::from_env);
        if let Some(base) = self.base {
            tuning = tuning.with_base(base);
        }
        let p = self.procs.unwrap_or_else(available_processors);
        let mut policy = self.policy.unwrap_or_default();
        if let Some(shards) = self.shards {
            policy.shards = shards;
        }
        policy.validate();

        let shared = Arc::new(EngineShared {
            p,
            tuning: tuning.clone(),
            policy,
            backend: self.backend,
            lower: LowerCache::new(),
            shards: (0..policy.shards).map(|_| Shard::new()).collect(),
            caches: (0..policy.shards)
                .map(|_| SkeletonCache::new(SkeletonCache::DEFAULT_CAP))
                .collect(),
            arenas: (0..policy.shards)
                .map(|_| Arc::new(ScratchArena::new()))
                .collect(),
            registry: Arc::new(HandleRegistry::new()),
            next_shard: AtomicUsize::new(0),
            shutting_down: std::sync::atomic::AtomicBool::new(false),
            enqueued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        });

        let executors = (0..policy.shards)
            .map(|shard_id| {
                // The pool handoff: build each shard's pinned pool here and
                // move it into the executor thread that will own it.
                let core = PassCore::new(p, tuning.clone());
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("paco-engine-{shard_id}"))
                    .spawn(move || executor_loop(shard_id, core, shared))
                    .expect("failed to spawn engine executor thread")
            })
            .collect();

        Engine { shared, executors }
    }
}

/// EWMA estimate of a shard's arrival rate, feeding the
/// [`adaptive`](BatchPolicy::adaptive) gathering window.
struct RateEstimator {
    last_count: u64,
    last_at: Instant,
    /// Smoothed arrivals per second; `0.0` until the first sample.
    lambda: f64,
}

impl RateEstimator {
    /// Smoothing factor: ~0.4 weight on the newest sample reacts to a load
    /// shift within a few passes without chasing single-pass noise.
    const ALPHA: f64 = 0.4;

    fn new(now: Instant) -> Self {
        Self {
            last_count: 0,
            last_at: now,
            lambda: 0.0,
        }
    }

    /// Fold the shard's cumulative arrival count into the rate estimate.
    fn observe(&mut self, count: u64) {
        let now = Instant::now();
        let dt = now.duration_since(self.last_at).as_secs_f64();
        if dt < 1e-5 {
            // Too little wall clock since the last sample for the quotient
            // to mean anything; fold these arrivals into the next one.
            return;
        }
        let instantaneous = (count - self.last_count) as f64 / dt;
        self.lambda = if self.lambda == 0.0 {
            instantaneous
        } else {
            Self::ALPHA * instantaneous + (1.0 - Self::ALPHA) * self.lambda
        };
        self.last_count = count;
        self.last_at = now;
    }

    /// The Little's-law gathering window: at `lambda` arrivals/s, a full
    /// batch takes `max_batch / lambda` seconds to accumulate — waiting any
    /// longer buys nothing, waiting much less forfeits coalescing.  Capped
    /// at the policy `ceiling` (`max_wait`); before the first sample the
    /// ceiling itself is used.
    fn window(&self, max_batch: usize, ceiling: Duration) -> Duration {
        if self.lambda <= 0.0 {
            return ceiling;
        }
        ceiling.min(Duration::from_secs_f64(max_batch as f64 / self.lambda))
    }
}

/// One shard's executor: wait for work, gather a batch under the policy,
/// settle expired requests, run the pass, repeat; on shutdown, drain the
/// queue then join the pool.
fn executor_loop(shard_id: usize, core: PassCore, shared: Arc<EngineShared>) {
    let policy = shared.policy;
    let shard = &shared.shards[shard_id];
    let mut rate = RateEstimator::new(Instant::now());
    loop {
        let (mut batch, expired) = {
            let mut queue = shard.queue.lock();
            while queue.is_empty() && !queue.shutdown {
                shard.wake.wait(&mut queue);
            }
            if queue.is_empty() {
                // Shut down with nothing left to drain.
                break;
            }
            // The gathering window: wait (bounded by the window length) for
            // the batch to fill before draining.  Shutdown closes the
            // window early — drain now, don't dawdle.
            let window = if policy.adaptive {
                rate.window(policy.max_batch, policy.max_wait)
            } else {
                policy.max_wait
            };
            if policy.max_batch > 1 && window > Duration::ZERO {
                let deadline = Instant::now() + window;
                while queue.len() < policy.max_batch && !queue.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    shard.wake.wait_for(&mut queue, deadline - now);
                }
            }
            let drained = queue.drain_batch(policy.max_batch, Instant::now());
            shard.depth.store(queue.len(), Ordering::Relaxed);
            drained
        };
        // The drain freed queue space; producers parked in backpressure can
        // re-fill while this pass runs.
        shard.space.notify_all();
        rate.observe(shard.arrivals.load(Ordering::Relaxed));

        if !expired.is_empty() {
            let steps: u64 = expired.iter().map(|r| r.steps() as u64).sum();
            for request in &expired {
                ticket::resolve(&request.slot, SlotState::Expired);
            }
            shard.outstanding_steps.fetch_sub(steps, Ordering::Relaxed);
            shared
                .expired
                .fetch_add(expired.len() as u64, Ordering::Relaxed);
            ingress::record_expired(expired.len() as u64);
        }
        if batch.is_empty() {
            continue;
        }

        let requests = batch.len() as u64;
        let steps: u64 = batch.iter().map(|r| r.steps() as u64).sum();
        // Count the pass before resolving its tickets, so a producer that
        // observed its ticket resolve also observes the pass counted.
        shard.passes.fetch_add(1, Ordering::Relaxed);
        shard.requests.fetch_add(requests, Ordering::Relaxed);
        ingress::record_pass(shard_id, requests);
        if core.run_pass(&mut batch).is_err() {
            // The pass's tickets are already poisoned; the engine itself
            // survives and keeps serving subsequent submissions.
            shared.poisoned.fetch_add(requests, Ordering::Relaxed);
            ingress::record_poisoned(requests);
        } else {
            let now = Instant::now();
            for request in &batch {
                let latency = now.duration_since(request.submitted_at);
                shared.latency.record(latency);
                ingress::record_latency(latency);
            }
        }
        shard.outstanding_steps.fetch_sub(steps, Ordering::Relaxed);
    }
    core.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SubmitOptions;
    use paco_runtime::schedule::{Plan, Step};
    use proptest::prelude::*;
    use std::any::Any;

    #[test]
    fn builder_shards_composes_with_policy_in_either_order() {
        let policy = BatchPolicy {
            max_batch: 8,
            ..BatchPolicy::default()
        };
        let shards_first = Engine::builder().procs(1).shards(2).policy(policy).build();
        assert_eq!(shards_first.policy().shards, 2);
        assert_eq!(shards_first.policy().max_batch, 8);
        let policy_first = Engine::builder().procs(1).policy(policy).shards(2).build();
        assert_eq!(policy_first.policy().shards, 2);
        assert_eq!(policy_first.policy().max_batch, 8);
        shards_first.shutdown();
        policy_first.shutdown();
    }

    #[test]
    fn rate_estimator_window_is_capped_and_tracks_rate() {
        let mut rate = RateEstimator::new(Instant::now() - Duration::from_secs(1));
        // No sample yet: the ceiling is the window.
        assert_eq!(
            rate.window(64, Duration::from_millis(5)),
            Duration::from_millis(5)
        );
        // ~1000 arrivals over ~1s → λ ≈ 1000/s → a 64-batch gathers in
        // ~64ms, far above a 5ms ceiling → still the ceiling...
        rate.observe(1000);
        assert_eq!(
            rate.window(64, Duration::from_millis(5)),
            Duration::from_millis(5)
        );
        // ...but a 4-batch gathers in ~4ms, inside the ceiling.
        let window = rate.window(4, Duration::from_millis(5));
        assert!(window < Duration::from_millis(5), "window = {window:?}");
        assert!(window > Duration::ZERO);
    }

    /// A no-op compiled request carrying an id as its output, for driving
    /// `ShardQueue` directly.
    struct Tagged {
        id: usize,
        skeleton: Plan<usize>,
    }

    impl Prepared for Tagged {
        fn skeleton(&self) -> &Plan<usize> {
            &self.skeleton
        }
        fn run_step(&self, _proc: usize, _idx: usize) {}
        fn take_output(&mut self) -> Box<dyn Any + Send> {
            Box::new(self.id)
        }
    }

    fn tagged(id: usize, priority: Priority, expired: bool) -> PendingRequest {
        let opts = SubmitOptions {
            priority,
            // An already-elapsed deadline: guaranteed expired at any
            // subsequent drain.
            deadline: expired.then(|| Instant::now() - Duration::from_millis(1)),
        };
        PendingRequest::new(
            Box::new(Tagged {
                id,
                skeleton: Plan::single_wave(1, vec![Step { proc: 0, job: 0 }]),
            }),
            ticket::new_slot(),
            opts,
        )
    }

    fn id_of(request: &mut PendingRequest) -> usize {
        *request
            .prepared
            .take_output()
            .downcast::<usize>()
            .expect("Tagged outputs usize")
    }

    const LANES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Model check of the drain: strictly-by-class ordering, FIFO
        /// within a class, expired requests diverted without consuming
        /// batch slots, and nothing lost or duplicated.
        #[test]
        fn drain_batch_orders_by_class_and_diverts_expired(
            shape in proptest::collection::vec((0usize..3, any::<bool>()), 1..40),
            max_batch in 1usize..8,
        ) {
            let mut queue = ShardQueue::new();
            for (id, &(lane, expired)) in shape.iter().enumerate() {
                queue.push(tagged(id, LANES[lane], expired));
            }
            let total = shape.len();
            prop_assert_eq!(queue.len(), total);

            let mut drained = Vec::new();
            while !queue.is_empty() {
                let before = queue.len();
                let (mut batch, mut expired) = queue.drain_batch(max_batch, Instant::now());
                // Expired requests never consume a live request's slot.
                prop_assert!(batch.len() <= max_batch);
                prop_assert!(!batch.is_empty() || !expired.is_empty());
                prop_assert_eq!(before, queue.len() + batch.len() + expired.len());

                // Within one batch: priorities never invert.
                for pair in batch.windows(2) {
                    prop_assert!(pair[0].priority >= pair[1].priority);
                }
                for request in batch.iter_mut().chain(expired.iter_mut()) {
                    let id = id_of(request);
                    prop_assert_eq!(request.expired(Instant::now()), shape[id].1);
                    drained.push((id, request.priority));
                }
            }

            // Nothing lost, nothing duplicated.
            prop_assert_eq!(drained.len(), total);
            let mut seen: Vec<usize> = drained.iter().map(|&(id, _)| id).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());

            // FIFO within each class across the whole drain sequence: the
            // live ids of one lane come out in push order.
            for lane in LANES {
                let order: Vec<usize> = drained
                    .iter()
                    .filter(|&&(id, p)| p == lane && !shape[id].1)
                    .map(|&(id, _)| id)
                    .collect();
                let mut sorted = order.clone();
                sorted.sort_unstable();
                prop_assert_eq!(order, sorted);
            }
        }
    }
}
