//! The [`Engine`]: concurrent ingress over the PACO executor core.
//!
//! Where a [`Session`](crate::Session) queues submissions on its owner's
//! thread and executes nothing until that same thread calls `flush()`, an
//! engine accepts requests **from any thread at any time** — including while
//! a pass is in flight — through cheap [`Client`] handles,
//! and executes them on its own dedicated executor threads.  Each *shard*
//! owns a pinned [`WorkerPool`](paco_runtime::WorkerPool) plus the engine's
//! [`Tuning`] (one pass core per shard, the same core `Session::flush`
//! drives synchronously), drains its multi-producer queue under the
//! engine's [`BatchPolicy`], merges whatever it gathered through
//! [`Plan::batch`](paco_runtime::schedule::Plan::batch) (max-of-waves
//! barriers), and resolves tickets as passes complete — producers never call
//! `flush`; they [`Ticket::wait`](crate::Ticket::wait).

use crate::client::Client;
use crate::exec::{PassCore, PendingRequest};
use crate::policy::{BatchPolicy, Routing};
use crate::ticket::{self, SlotState};
use paco_core::machine::available_processors;
use paco_core::metrics::sched::ingress;
use paco_core::tuning::Tuning;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a shard's executor sees when it locks its queue.
struct ShardQueue {
    pending: VecDeque<PendingRequest>,
    /// Once set, no further submissions are accepted; the executor drains
    /// what is queued and exits.
    shutdown: bool,
}

/// One shard's shared half: the queue producers push into and the counters
/// its executor maintains.
struct Shard {
    queue: Mutex<ShardQueue>,
    /// Signalled on every enqueue and on shutdown.
    wake: Condvar,
    /// Compiled plan steps enqueued-or-executing on this shard; the
    /// size-balanced router picks the shard minimizing this.
    outstanding_steps: AtomicU64,
    /// Passes this shard's executor ran.
    passes: AtomicU64,
    /// Requests this shard executed (resolved or poisoned).
    requests: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            queue: Mutex::new(ShardQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            outstanding_steps: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }
}

/// State shared between the engine, its clients and its executor threads.
pub(crate) struct EngineShared {
    p: usize,
    tuning: Tuning,
    policy: BatchPolicy,
    shards: Vec<Shard>,
    /// Round-robin cursor.
    next_shard: AtomicUsize,
    /// Advisory fast-path flag; the per-shard `ShardQueue::shutdown` (under
    /// the queue lock) stays the authoritative word on whether an enqueue
    /// is accepted.
    shutting_down: std::sync::atomic::AtomicBool,
    enqueued: AtomicU64,
    rejected: AtomicU64,
    poisoned: AtomicU64,
}

impl EngineShared {
    pub(crate) fn p(&self) -> usize {
        self.p
    }

    pub(crate) fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Advisory: has shutdown begun?  Lets `Client::submit` skip compiling
    /// a request whose enqueue would be rejected anyway; a stale `false` is
    /// harmless (the locked per-shard check still rejects).
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Count one rejected submission and resolve its slot accordingly.
    pub(crate) fn reject(&self, slot: &crate::ticket::Slot) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        ticket::resolve(slot, SlotState::Rejected);
    }

    /// Route a compiled request to a shard and enqueue it, or reject it if
    /// the engine is shutting down (the slot is resolved either way, so the
    /// ticket never dangles).
    pub(crate) fn enqueue(&self, request: PendingRequest) {
        let steps = request.steps() as u64;
        let shard_id = match self.policy.routing {
            Routing::RoundRobin => {
                self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len()
            }
            Routing::SizeBalanced => self
                .shards
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.outstanding_steps.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        let shard = &self.shards[shard_id];
        let mut queue = shard.queue.lock();
        if queue.shutdown {
            drop(queue);
            self.reject(&request.slot);
            return;
        }
        shard.outstanding_steps.fetch_add(steps, Ordering::Relaxed);
        queue.pending.push_back(request);
        // Count while still holding the queue lock: an executor cannot drain
        // this request (and record its pass) before the enqueue is visible,
        // so observers never see `executed > enqueued`.
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        ingress::record_enqueued();
        drop(queue);
        shard.wake.notify_one();
    }
}

/// A snapshot of one shard's occupancy and work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Executor passes this shard ran.
    pub passes: u64,
    /// Requests this shard executed (resolved or poisoned).
    pub requests: u64,
    /// Requests currently queued on this shard (not yet drained by a pass).
    pub queued: usize,
    /// Compiled plan steps currently enqueued-or-executing on this shard —
    /// the load measure size-balanced routing works from.
    pub outstanding_steps: u64,
}

/// A snapshot of an engine's ingress counters (per-engine; the process-wide
/// twins live in [`paco_core::metrics::sched::ingress`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a shard queue.
    pub enqueued: u64,
    /// Requests refused because the engine was shutting down.
    pub rejected: u64,
    /// Requests lost to panicking passes.
    pub poisoned: u64,
    /// Per-shard occupancy and work.
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Total executor passes across all shards.
    pub fn passes(&self) -> u64 {
        self.shards.iter().map(|s| s.passes).sum()
    }

    /// Total requests executed across all shards.
    pub fn executed(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Mean requests per pass — the coalescing win (1.0 means no request
    /// ever shared a pass).
    pub fn coalesce_ratio(&self) -> f64 {
        let passes = self.passes();
        if passes == 0 {
            1.0
        } else {
            self.executed() as f64 / passes as f64
        }
    }
}

/// The concurrent front door: a set of executor shards (each owning its own
/// pinned worker pool) serving a multi-producer submission queue under a
/// [`BatchPolicy`].
///
/// Construction spawns the executor threads; [`Engine::client`] hands out
/// `Clone + Send` [`Client`]s whose `submit` can be called from any thread at
/// any time.  [`Engine::shutdown`] (or dropping the engine) stops intake,
/// drains every queued request through final passes, and joins the executors
/// and their pools — no submitted work is silently dropped.
///
/// ```
/// use paco_service::{Engine, Sort};
///
/// let engine = Engine::builder().procs(2).build();
/// let client = engine.client();
/// let ticket = client.submit(Sort { keys: vec![3.0, 1.0, 2.0] });
/// assert_eq!(ticket.wait().unwrap(), vec![1.0, 2.0, 3.0]);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<EngineShared>,
    executors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(p={}, shards={})",
            self.shared.p,
            self.shared.shards.len()
        )
    }
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with `p` processors per shard and an otherwise default
    /// configuration ([`Tuning::from_env`], [`BatchPolicy::default`]).
    pub fn new(p: usize) -> Self {
        Self::builder().procs(p).build()
    }

    /// The processor count of each shard's pool — every request is compiled
    /// for this `p`.
    pub fn p(&self) -> usize {
        self.shared.p
    }

    /// The tuning config every request is compiled with.
    pub fn tuning(&self) -> &Tuning {
        &self.shared.tuning
    }

    /// The coalescing policy the executors run under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.shared.policy
    }

    /// A cheap, `Clone + Send` submission handle.  Clients outlive the
    /// engine gracefully: submissions after shutdown resolve to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected) instead of
    /// blocking forever.
    pub fn client(&self) -> Client {
        Client::new(Arc::clone(&self.shared))
    }

    /// This engine's ingress counters (exact for this engine, unlike the
    /// process-wide [`sched::ingress`](paco_core::metrics::sched::ingress)
    /// counters which aggregate every engine in the process).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            enqueued: self.shared.enqueued.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            poisoned: self.shared.poisoned.load(Ordering::Relaxed),
            shards: self
                .shared
                .shards
                .iter()
                .map(|s| ShardStats {
                    passes: s.passes.load(Ordering::Relaxed),
                    requests: s.requests.load(Ordering::Relaxed),
                    queued: s.queue.lock().pending.len(),
                    outstanding_steps: s.outstanding_steps.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Stop intake, drain, and tear down.
    ///
    /// Every request enqueued before this call still executes (the
    /// executors run final passes over their remaining queues — the
    /// gathering window is cut short, not the work); requests submitted
    /// *after* resolve to `Rejected`.  Returns the engine's final stats
    /// once every executor thread and every worker pool has been joined —
    /// unlike a mid-flight [`Engine::stats`] call, the returned counters
    /// can no longer move.
    pub fn shutdown(mut self) -> EngineStats {
        // Executor threads catch pass panics themselves; a dead executor
        // means the executor logic itself is broken.
        assert!(self.shutdown_impl(), "engine executor thread panicked");
        self.stats()
    }

    /// Returns whether every executor thread exited cleanly.
    fn shutdown_impl(&mut self) -> bool {
        self.shared
            .shutting_down
            .store(true, std::sync::atomic::Ordering::Relaxed);
        for shard in &self.shared.shards {
            shard.queue.lock().shutdown = true;
            shard.wake.notify_all();
        }
        let mut clean = true;
        for handle in self.executors.drain(..) {
            clean &= handle.join().is_ok();
        }
        clean
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Unlike the explicit `shutdown()`, drop must not panic: the engine
        // may be dropped while a test assertion is already unwinding the
        // stack, and a double panic would abort and eat the real failure.
        let _ = self.shutdown_impl();
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    procs: Option<usize>,
    tuning: Option<Tuning>,
    base: Option<usize>,
    policy: Option<BatchPolicy>,
    shards: Option<usize>,
}

impl EngineBuilder {
    /// Pin each shard's pool to `p` processors (default: the machine's
    /// available parallelism).
    pub fn procs(mut self, p: usize) -> Self {
        assert!(p >= 1, "an engine needs at least one processor per shard");
        self.procs = Some(p);
        self
    }

    /// Use an explicit tuning config (default: [`Tuning::from_env`], which
    /// honours the `PACO_BASE` override).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Convenience: set every base/grain-size knob at once
    /// ([`Tuning::with_base`]) on top of whatever tuning the builder ends up
    /// with.
    pub fn base(mut self, base: usize) -> Self {
        self.base = Some(base);
        self
    }

    /// Use an explicit coalescing policy (default: [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Convenience: set only the shard count on top of whatever policy the
    /// builder ends up with — applied at [`EngineBuilder::build`], so it
    /// composes with [`EngineBuilder::policy`] in either call order (like
    /// [`EngineBuilder::base`] over the tuning).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Spawn the executor shard(s) and finish the engine.
    pub fn build(self) -> Engine {
        let mut tuning = self.tuning.unwrap_or_else(Tuning::from_env);
        if let Some(base) = self.base {
            tuning = tuning.with_base(base);
        }
        let p = self.procs.unwrap_or_else(available_processors);
        let mut policy = self.policy.unwrap_or_default();
        if let Some(shards) = self.shards {
            policy.shards = shards;
        }
        policy.validate();

        let shared = Arc::new(EngineShared {
            p,
            tuning: tuning.clone(),
            policy,
            shards: (0..policy.shards).map(|_| Shard::new()).collect(),
            next_shard: AtomicUsize::new(0),
            shutting_down: std::sync::atomic::AtomicBool::new(false),
            enqueued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        });

        let executors = (0..policy.shards)
            .map(|shard_id| {
                // The pool handoff: build each shard's pinned pool here and
                // move it into the executor thread that will own it.
                let core = PassCore::new(p, tuning.clone());
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("paco-engine-{shard_id}"))
                    .spawn(move || executor_loop(shard_id, core, shared))
                    .expect("failed to spawn engine executor thread")
            })
            .collect();

        Engine { shared, executors }
    }
}

/// One shard's executor: wait for work, gather a batch under the policy, run
/// the pass, repeat; on shutdown, drain the queue then join the pool.
fn executor_loop(shard_id: usize, core: PassCore, shared: Arc<EngineShared>) {
    let policy = shared.policy;
    let shard = &shared.shards[shard_id];
    loop {
        let mut batch = {
            let mut queue = shard.queue.lock();
            while queue.pending.is_empty() && !queue.shutdown {
                shard.wake.wait(&mut queue);
            }
            if queue.pending.is_empty() {
                // Shut down with nothing left to drain.
                break;
            }
            // The gathering window: wait (bounded by max_wait) for the batch
            // to fill before draining.  Shutdown closes the window early —
            // drain now, don't dawdle.
            if policy.max_batch > 1 && policy.max_wait > Duration::ZERO {
                let deadline = Instant::now() + policy.max_wait;
                while queue.pending.len() < policy.max_batch && !queue.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    shard.wake.wait_for(&mut queue, deadline - now);
                }
            }
            let take = queue.pending.len().min(policy.max_batch);
            queue.pending.drain(..take).collect::<Vec<_>>()
        };

        let requests = batch.len() as u64;
        let steps: u64 = batch.iter().map(|r| r.steps() as u64).sum();
        // Count the pass before resolving its tickets, so a producer that
        // observed its ticket resolve also observes the pass counted.
        shard.passes.fetch_add(1, Ordering::Relaxed);
        shard.requests.fetch_add(requests, Ordering::Relaxed);
        ingress::record_pass(shard_id, requests);
        if core.run_pass(&mut batch).is_err() {
            // The pass's tickets are already poisoned; the engine itself
            // survives and keeps serving subsequent submissions.
            shared.poisoned.fetch_add(requests, Ordering::Relaxed);
            ingress::record_poisoned(requests);
        }
        shard.outstanding_steps.fetch_sub(steps, Ordering::Relaxed);
    }
    core.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shards_composes_with_policy_in_either_order() {
        let policy = BatchPolicy {
            max_batch: 8,
            ..BatchPolicy::default()
        };
        let shards_first = Engine::builder().procs(1).shards(2).policy(policy).build();
        assert_eq!(shards_first.policy().shards, 2);
        assert_eq!(shards_first.policy().max_batch, 8);
        let policy_first = Engine::builder().procs(1).policy(policy).shards(2).build();
        assert_eq!(policy_first.policy().shards, 2);
        assert_eq!(policy_first.policy().max_batch, 8);
        shards_first.shutdown();
        policy_first.shutdown();
    }
}
