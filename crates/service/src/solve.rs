//! The [`Solve`] trait and the type-erased compiled form the session
//! schedules.
//!
//! A request compiles into a [`Compiled`] value: an *index skeleton* (the
//! workload's wave plan with every job replaced by its position in schedule
//! order) plus the shared state the steps interpret.  Erasing the job type at
//! the step level — rather than forcing every workload into one giant job
//! enum — lets the session batch arbitrary mixes of workloads with the stock
//! [`Plan::batch`] wave-zip while each workload keeps its own typed plan and
//! fully monomorphized kernels.

use paco_core::proc_list::ProcId;
use paco_core::tuning::Tuning;
use paco_runtime::schedule::{Plan, Step};
use std::any::Any;
use std::marker::PhantomData;

/// A typed request the [`Session`](crate::Session) can execute.
///
/// Implementations compile the request (partitioning, pivot selection, plan
/// building — everything except touching the pool) into a
/// [`Compiled<Self::Output>`]; the session then executes the skeleton alone
/// or batched with others and hands the output back as [`Solve::Output`].
pub trait Solve {
    /// The result type of the request.
    type Output: Send + 'static;

    /// Compile for `p` processors under the session's tuning.
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output>;
}

/// A compiled request: schedule skeleton + step interpreter + deferred
/// output.  All methods except [`Prepared::take_output`] take `&self` because
/// steps run concurrently from the pool's workers; the shared state inside
/// uses the same wave-discipline interior mutability as the workload crates.
pub trait Prepared: Send + Sync {
    /// The wave schedule; jobs are indices into the compiled step list.
    fn skeleton(&self) -> &Plan<usize>;

    /// Interpret step `idx` on processor `proc`.
    fn run_step(&self, proc: ProcId, idx: usize);

    /// Extract the output after the skeleton has executed.  Panics if called
    /// twice.
    fn take_output(&mut self) -> Box<dyn Any + Send>;
}

/// A type-erased compiled request whose output type is still tracked at the
/// type level, so [`Solve::Output`] cannot be wired to the wrong run: the
/// in-crate constructor requires a run whose `finish` really returns `O`.
pub struct Compiled<O> {
    pub(crate) inner: Box<dyn Prepared>,
    _out: PhantomData<fn() -> O>,
}

impl<O: Send + 'static> Compiled<O> {
    /// Wrap a workload run; the `Out = O` bound is the compile-time tie
    /// between the request's output type and the run's.
    pub(crate) fn new<R: WorkloadRun<Out = O>>(run: R) -> Self {
        Self::from_prepared(PreparedRun::boxed(run))
    }

    /// Wrap an already-erased prepared request.
    ///
    /// Escape hatch for [`Solve`] implementations outside this crate: the
    /// caller must guarantee that `take_output` yields a boxed `O` — a
    /// mismatch is only caught at runtime (the session panics when decoding
    /// the output).
    pub fn from_prepared(inner: Box<dyn Prepared>) -> Self {
        Self {
            inner,
            _out: PhantomData,
        }
    }
}

/// The uniform shape of a per-workload prepared run (`LcsRun`, `FwRun`, …):
/// a typed plan, a step interpreter, and a consuming finisher.  Implemented
/// in [`crate::requests`] by delegation to the workload crates' inherent
/// methods.
pub(crate) trait WorkloadRun: Send + Sync + 'static {
    /// The workload's plain-data job type.
    type Job: Send + Sync;
    /// The workload's result type.
    type Out: Send + 'static;

    fn typed_plan(&self) -> &Plan<Self::Job>;
    fn step(&self, proc: ProcId, job: &Self::Job);
    fn finish(self) -> Self::Out;
}

/// The generic [`Prepared`] adapter over any [`WorkloadRun`]: the skeleton
/// mirrors the typed plan with flat step indices, and a small index table
/// maps each flat index back to its `(wave, position)` in the run's own plan
/// — jobs are interpreted in place, never copied.
pub(crate) struct PreparedRun<R: WorkloadRun> {
    skeleton: Plan<usize>,
    /// `index[flat] = (wave, position)` into the run's typed plan.
    index: Vec<(usize, usize)>,
    run: Option<R>,
}

impl<R: WorkloadRun> PreparedRun<R> {
    pub(crate) fn boxed(run: R) -> Box<dyn Prepared> {
        let plan = run.typed_plan();
        let mut index = Vec::with_capacity(plan.steps());
        let waves = plan
            .waves()
            .iter()
            .enumerate()
            .map(|(w, wave)| {
                wave.iter()
                    .enumerate()
                    .map(|(i, step)| {
                        let flat = index.len();
                        index.push((w, i));
                        Step {
                            proc: step.proc,
                            job: flat,
                        }
                    })
                    .collect()
            })
            .collect();
        Box::new(Self {
            skeleton: Plan::from_waves(plan.p(), waves),
            index,
            run: Some(run),
        })
    }
}

impl<R: WorkloadRun> Prepared for PreparedRun<R> {
    fn skeleton(&self) -> &Plan<usize> {
        &self.skeleton
    }

    fn run_step(&self, proc: ProcId, idx: usize) {
        let run = self.run.as_ref().expect("request already finished");
        let (w, i) = self.index[idx];
        run.step(proc, &run.typed_plan().waves()[w][i].job);
    }

    fn take_output(&mut self) -> Box<dyn Any + Send> {
        Box::new(
            self.run
                .take()
                .expect("request output already taken")
                .finish(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        plan: Plan<char>,
        seen: parking_lot::Mutex<Vec<char>>,
    }

    impl WorkloadRun for Dummy {
        type Job = char;
        type Out = Vec<char>;
        fn typed_plan(&self) -> &Plan<char> {
            &self.plan
        }
        fn step(&self, _proc: ProcId, job: &char) {
            self.seen.lock().push(*job);
        }
        fn finish(self) -> Vec<char> {
            self.seen.into_inner()
        }
    }

    #[test]
    fn skeleton_indices_line_up_with_the_typed_plan() {
        let plan = Plan::from_waves(
            2,
            vec![
                vec![Step { proc: 0, job: 'a' }, Step { proc: 1, job: 'b' }],
                vec![Step { proc: 1, job: 'c' }],
            ],
        );
        let mut prepared = PreparedRun::boxed(Dummy {
            plan,
            seen: parking_lot::Mutex::new(Vec::new()),
        });
        assert_eq!(prepared.skeleton().barriers(), 2);
        assert_eq!(prepared.skeleton().steps(), 3);
        // Replay the skeleton sequentially: index i must map back to step i.
        let mut order = Vec::new();
        prepared.skeleton().for_each(|_, _, &idx| order.push(idx));
        assert_eq!(order, vec![0, 1, 2]);
        for idx in order {
            prepared.run_step(0, idx);
        }
        let out = prepared.take_output();
        assert_eq!(*out.downcast::<Vec<char>>().unwrap(), vec!['a', 'b', 'c']);
    }
}
