//! The two-phase [`Solve`] contract and the type-erased compiled form the
//! session schedules.
//!
//! Compilation is split along the paper's workload-independence claim: the
//! pruned-BFS assignment depends only on `(shape, p, tuning)`, never on the
//! request's data.  So a request first compiles a [`Skeleton`] — the
//! index-level wave plan plus the workload's shape-only plan payload — and
//! then *binds* its actual buffers to that skeleton to produce the runnable
//! [`Compiled`] value.  Skeletons are immutable and cheaply clonable
//! (`Arc`s all the way down), which is what makes the service layer's
//! keyed skeleton cache possible: `N` same-shaped requests compile once and
//! bind `N` times.
//!
//! A [`Compiled`] value pairs an *index skeleton* (the workload's wave plan
//! with every job replaced by its position in schedule order) with the
//! shared state the steps interpret.  Erasing the job type at the step
//! level — rather than forcing every workload into one giant job enum —
//! lets the session batch arbitrary mixes of workloads with the stock
//! [`Plan::batch`] wave-zip while each workload keeps its own typed plan
//! and fully monomorphized kernels.

use paco_core::arena::ScratchArena;
use paco_core::proc_list::ProcId;
use paco_core::tuning::Tuning;
use paco_runtime::schedule::{Plan, Step};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// The cacheable identity of a request's schedule: which workload it is
/// plus every data-independent dimension its plan depends on.
///
/// Two requests with equal shape keys compile to identical skeletons under
/// the same `(p, tuning)` — that is the contract [`Solve::shape_key`]
/// implementations must uphold, and the reason the service layer may serve
/// one request's [`Skeleton`] to another.  Tuning knobs are deliberately
/// *not* part of the key; the cache covers them with the
/// [`Tuning::epoch`] counter instead, so mutating a knob (which bumps the
/// epoch) invalidates every cached skeleton at once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    kind: &'static str,
    dims: Vec<u64>,
}

impl ShapeKey {
    /// A key for workload `kind` with the given data-independent
    /// dimensions.  `kind` must be unique per workload type (the request
    /// structs use their own names); `dims` must capture **every**
    /// request-derived value the plan depends on — lengths, matrix sides,
    /// and for heterogeneous MM the throughput fractions (as `f64` bits).
    pub fn new(kind: &'static str, dims: impl IntoIterator<Item = u64>) -> Self {
        Self {
            kind,
            dims: dims.into_iter().collect(),
        }
    }
}

/// A compiled, data-free schedule: the shape-only phase of a request.
///
/// Holds the index-level wave plan (jobs are flat step indices), the table
/// mapping each flat index back to `(wave, position)` of the workload's
/// typed plan, and the workload's own compiled plan (`PacoLcsPlan`,
/// `FwPlan`, `MmPlan`, …) as a type-erased payload.  Everything is behind
/// an `Arc`: cloning a skeleton is O(1), and binding never copies the
/// plan — which is exactly what lets a cached skeleton serve any number of
/// concurrent requests.
#[derive(Clone)]
pub struct Skeleton {
    index: Arc<Plan<usize>>,
    /// `lookup[flat] = (wave, position)` into the payload's typed plan.
    lookup: Arc<Vec<(usize, usize)>>,
    payload: Arc<dyn Any + Send + Sync>,
}

impl std::fmt::Debug for Skeleton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Skeleton(steps={}, waves={})",
            self.steps(),
            self.waves()
        )
    }
}

impl Skeleton {
    /// Build a skeleton from a workload's typed plan, flattening the waves
    /// into schedule-order step indices once.  `payload` is the workload's
    /// compiled plan; [`Solve::bind`] gets it back via
    /// [`Skeleton::payload`] to construct the bound run.
    pub fn new<J, P: Send + Sync + 'static>(payload: Arc<P>, plan: &Plan<J>) -> Self {
        let mut lookup = Vec::with_capacity(plan.steps());
        let waves = plan
            .waves()
            .iter()
            .enumerate()
            .map(|(w, wave)| {
                wave.iter()
                    .enumerate()
                    .map(|(i, step)| {
                        let flat = lookup.len();
                        lookup.push((w, i));
                        Step {
                            proc: step.proc,
                            job: flat,
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            index: Arc::new(Plan::from_waves(plan.p(), waves)),
            lookup: Arc::new(lookup),
            payload,
        }
    }

    /// The index-level wave plan (jobs are flat step indices).  Custom
    /// [`Prepared`] implementations built through
    /// [`Compiled::from_prepared`] can serve this as their skeleton.
    pub fn index(&self) -> &Arc<Plan<usize>> {
        &self.index
    }

    /// Total placed steps of the schedule — the size measure the engine's
    /// size-balanced router weighs shards by, read off the cache instead of
    /// compiling.
    pub fn steps(&self) -> usize {
        self.index.steps()
    }

    /// Wave (barrier) count of the schedule.
    pub fn waves(&self) -> usize {
        self.index.waves().len()
    }

    /// Recover the typed plan payload stashed by [`Skeleton::new`], or
    /// `None` if `P` is not the payload's type.  The request impls in this
    /// crate `expect` this — a mismatch means a [`Solve::bind`] was handed
    /// a skeleton compiled by a different workload, which the cache keying
    /// rules out.
    pub fn payload<P: Send + Sync + 'static>(&self) -> Option<Arc<P>> {
        Arc::downcast(Arc::clone(&self.payload)).ok()
    }
}

/// A typed request the [`Session`](crate::Session) can execute.
///
/// Compilation is two-phase:
///
/// 1. **Skeleton** ([`Solve::skeleton`]) — partitioning, pivot-free plan
///    building, pruned-BFS placement: everything that depends only on the
///    request's *shape* ([`Solve::shape_key`]), the processor count and the
///    tuning.  Expensive, and cached by the service layer keyed on
///    `(shape_key, p, tuning.epoch)`.
/// 2. **Bind** ([`Solve::bind`]) — attach the request's actual buffers
///    (sequences, matrices, keys) to the skeleton, producing the runnable
///    [`Compiled<Self::Output>`].  Cheap: allocates the output/table state
///    and clones `Arc`s, never re-plans.
///
/// The session then executes the compiled value alone or batched with
/// others and hands the output back as [`Solve::Output`].  Callers that
/// don't care about caching use the provided [`Solve::compile`], which is
/// exactly skeleton + bind.
pub trait Solve {
    /// The result type of the request.
    type Output: Send + 'static;

    /// The cache key: workload kind + every data-independent dimension the
    /// plan depends on.  Equal keys must yield identical skeletons under
    /// equal `(p, tuning)`.
    fn shape_key(&self) -> ShapeKey;

    /// Compile the shape-only skeleton for `p` processors under `tuning`
    /// (phase 1 — expensive, cacheable).
    fn skeleton(&self, tuning: &Tuning, p: usize) -> Skeleton;

    /// Bind this request's data to an already-compiled skeleton (phase 2 —
    /// cheap).  `skeleton` must have been produced by [`Solve::skeleton`]
    /// on a request with the same [`Solve::shape_key`] under the same
    /// `(p, tuning)` knobs — the skeleton cache's keying guarantees this.
    /// `arena` is the caller's scratch pool: binds are free to check their
    /// temporary buffers out of it (and return them at finish), so repeated
    /// binds through the same session/shard recycle allocations across
    /// passes.  Implementations may also ignore it entirely.
    fn bind(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        p: usize,
        arena: &Arc<ScratchArena>,
    ) -> Compiled<Self::Output>;

    /// Bind this request's data to an already-compiled skeleton for
    /// execution on the shared-nothing distributed backend
    /// ([`Backend::Distributed`](crate::Backend)) over `ranks` ranks.
    ///
    /// Returns `Err(self)` — the request back, untouched — when the
    /// workload has no distributed lowering (sort, 1-D DP, GAP,
    /// heterogeneous MM) or the instance is degenerate (empty sequences,
    /// zero-sized matrices); the session/engine then binds it on the local
    /// pool instead, so a distributed session never rejects a request.
    /// `skeleton` must have been compiled by [`Solve::skeleton`] with
    /// `p = ranks`.  `lower` caches the communication schedule per
    /// (skeleton payload, placement), exactly as the skeleton cache covers
    /// the plan.
    fn bind_dist(
        self,
        skeleton: &Skeleton,
        tuning: &Tuning,
        ranks: usize,
        arena: &Arc<ScratchArena>,
        lower: &paco_dist::LowerCache,
    ) -> Result<Compiled<Self::Output>, Self>
    where
        Self: Sized,
    {
        let _ = (skeleton, tuning, ranks, arena, lower);
        Err(self)
    }

    /// Routing affinity for multi-shard [`Engine`](crate::Engine)s: requests
    /// returning the same `Some(hint)` land on the same shard (`hint %
    /// shards`), so state-carrying requests (the incremental-closure
    /// family, which hints with its handle id) keep one graph's traffic on
    /// one shard's queue, cache and arena.  `None` — the default, and right
    /// for every stateless workload — defers to the engine's configured
    /// [`Routing`](crate::Routing) policy.  This is an *affinity*, not a
    /// correctness mechanism: shared state must stay safe wherever the
    /// request executes.
    fn route_hint(&self) -> Option<u64> {
        None
    }

    /// Compile for `p` processors under `tuning`: skeleton + bind, without
    /// a cache (and with a private single-use scratch arena).
    fn compile(self, p: usize, tuning: &Tuning) -> Compiled<Self::Output>
    where
        Self: Sized,
    {
        let skeleton = self.skeleton(tuning, p);
        self.bind(&skeleton, tuning, p, &Arc::new(ScratchArena::new()))
    }
}

/// A compiled request: schedule skeleton + step interpreter + deferred
/// output.  All methods except [`Prepared::take_output`] take `&self` because
/// steps run concurrently from the pool's workers; the shared state inside
/// uses the same wave-discipline interior mutability as the workload crates.
pub trait Prepared: Send + Sync {
    /// The wave schedule; jobs are indices into the compiled step list.
    fn skeleton(&self) -> &Plan<usize>;

    /// Interpret step `idx` on processor `proc`.
    fn run_step(&self, proc: ProcId, idx: usize);

    /// Extract the output after the skeleton has executed.  Panics if called
    /// twice.
    fn take_output(&mut self) -> Box<dyn Any + Send>;
}

/// A type-erased compiled request whose output type is still tracked at the
/// type level, so [`Solve::Output`] cannot be wired to the wrong run: the
/// in-crate constructor requires a run whose `finish` really returns `O`.
pub struct Compiled<O> {
    pub(crate) inner: Box<dyn Prepared>,
    _out: PhantomData<fn() -> O>,
}

impl<O: Send + 'static> Compiled<O> {
    /// Bind a workload run to its skeleton; the `Out = O` bound is the
    /// compile-time tie between the request's output type and the run's.
    pub(crate) fn bound<R: WorkloadRun<Out = O>>(skeleton: &Skeleton, run: R) -> Self {
        Self::from_prepared(Box::new(PreparedRun {
            skeleton: Arc::clone(&skeleton.index),
            index: Arc::clone(&skeleton.lookup),
            run: Some(run),
        }))
    }

    /// Wrap an already-erased prepared request.
    ///
    /// Escape hatch for [`Solve`] implementations outside this crate: the
    /// caller must guarantee that `take_output` yields a boxed `O` — a
    /// mismatch is only caught at runtime (the session panics when decoding
    /// the output).
    pub fn from_prepared(inner: Box<dyn Prepared>) -> Self {
        Self {
            inner,
            _out: PhantomData,
        }
    }
}

/// The uniform shape of a per-workload prepared run (`LcsRun`, `FwRun`, …):
/// a typed plan, a step interpreter, and a consuming finisher.  Implemented
/// in [`crate::requests`] by delegation to the workload crates' inherent
/// methods.
pub(crate) trait WorkloadRun: Send + Sync + 'static {
    /// The workload's plain-data job type.
    type Job: Send + Sync;
    /// The workload's result type.
    type Out: Send + 'static;

    fn typed_plan(&self) -> &Plan<Self::Job>;
    fn step(&self, proc: ProcId, job: &Self::Job);
    fn finish(self) -> Self::Out;
}

/// The generic [`Prepared`] adapter over any [`WorkloadRun`]: the skeleton
/// mirrors the typed plan with flat step indices, and a small index table
/// maps each flat index back to its `(wave, position)` in the run's own plan
/// — jobs are interpreted in place, never copied.  Both tables are shared
/// with (and usually cached through) the [`Skeleton`] they came from.
pub(crate) struct PreparedRun<R: WorkloadRun> {
    skeleton: Arc<Plan<usize>>,
    /// `index[flat] = (wave, position)` into the run's typed plan.
    index: Arc<Vec<(usize, usize)>>,
    run: Option<R>,
}

impl<R: WorkloadRun> Prepared for PreparedRun<R> {
    fn skeleton(&self) -> &Plan<usize> {
        &self.skeleton
    }

    fn run_step(&self, proc: ProcId, idx: usize) {
        let run = self.run.as_ref().expect("request already finished");
        let (w, i) = self.index[idx];
        run.step(proc, &run.typed_plan().waves()[w][i].job);
    }

    fn take_output(&mut self) -> Box<dyn Any + Send> {
        Box::new(
            self.run
                .take()
                .expect("request output already taken")
                .finish(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        plan: Arc<Plan<char>>,
        seen: parking_lot::Mutex<Vec<char>>,
    }

    impl WorkloadRun for Dummy {
        type Job = char;
        type Out = Vec<char>;
        fn typed_plan(&self) -> &Plan<char> {
            &self.plan
        }
        fn step(&self, _proc: ProcId, job: &char) {
            self.seen.lock().push(*job);
        }
        fn finish(self) -> Vec<char> {
            self.seen.into_inner()
        }
    }

    #[test]
    fn skeleton_indices_line_up_with_the_typed_plan() {
        let plan = Arc::new(Plan::from_waves(
            2,
            vec![
                vec![Step { proc: 0, job: 'a' }, Step { proc: 1, job: 'b' }],
                vec![Step { proc: 1, job: 'c' }],
            ],
        ));
        let skeleton = Skeleton::new(Arc::clone(&plan), &plan);
        assert_eq!(skeleton.steps(), 3);
        assert_eq!(skeleton.waves(), 2);
        let mut prepared = Compiled::<Vec<char>>::bound(
            &skeleton,
            Dummy {
                plan,
                seen: parking_lot::Mutex::new(Vec::new()),
            },
        )
        .inner;
        assert_eq!(prepared.skeleton().barriers(), 2);
        assert_eq!(prepared.skeleton().steps(), 3);
        // Replay the skeleton sequentially: index i must map back to step i.
        let mut order = Vec::new();
        prepared.skeleton().for_each(|_, _, &idx| order.push(idx));
        assert_eq!(order, vec![0, 1, 2]);
        for idx in order {
            prepared.run_step(0, idx);
        }
        let out = prepared.take_output();
        assert_eq!(*out.downcast::<Vec<char>>().unwrap(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn skeleton_payload_downcasts_to_the_stashed_plan_only() {
        let plan = Arc::new(Plan::single_wave(1, vec![Step { proc: 0, job: 7u8 }]));
        let skeleton = Skeleton::new(Arc::clone(&plan), &plan);
        // Binding clones Arcs, never the plan.
        let again = skeleton.clone();
        assert!(Arc::ptr_eq(again.index(), skeleton.index()));
        let payload: Arc<Plan<u8>> = skeleton.payload().expect("payload round-trips");
        assert!(Arc::ptr_eq(&payload, &plan));
        assert!(skeleton.payload::<Plan<char>>().is_none());
    }
}
