//! [`Ticket`]s: typed handles to the deferred output of a submitted request.
//!
//! A ticket is the producer half of a one-shot slot shared with whichever
//! executor runs the request — [`Session::flush`](crate::Session::flush) on
//! the caller's thread, or an [`Engine`](crate::Engine) shard's executor
//! thread.  Resolution wakes blocked [`Ticket::wait`]ers through a condvar
//! (no spinning), and the error surface is explicit: [`TicketError`]
//! distinguishes *not yet resolved* from *already taken* from *lost to a
//! panicking pass* from *rejected by a shut-down engine* from *expired in a
//! queue* (its deadline passed before an executor reached it).

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// Why a [`Ticket`] could not produce its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketError {
    /// The request has not been executed yet ([`Ticket::try_wait`] only;
    /// [`Ticket::wait`] blocks instead of returning this).
    Pending,
    /// The output was already taken out of this ticket.
    Taken,
    /// The pass executing this request panicked; its shared state may be
    /// half-written, so the output is unrecoverable.
    Poisoned,
    /// The request was submitted after the engine began shutting down and
    /// was never executed.
    Rejected,
    /// The request's deadline passed while it was queued; it was dequeued
    /// and discarded without occupying a pass.
    Expired,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::Pending => write!(f, "request not executed yet"),
            TicketError::Taken => write!(f, "ticket output already taken"),
            TicketError::Poisoned => write!(f, "the pass executing this request panicked"),
            TicketError::Rejected => write!(f, "request submitted after engine shutdown"),
            TicketError::Expired => write!(f, "request deadline passed before execution"),
        }
    }
}

impl std::error::Error for TicketError {}

/// Lifecycle of a submitted request's output slot.
pub(crate) enum SlotState {
    /// Submitted, not yet executed.
    Pending,
    /// Executed successfully; the output is waiting.
    Done(Box<dyn Any + Send>),
    /// The output was taken.
    Taken,
    /// The pass executing the request panicked: the request's shared state
    /// may be half-written, so the output is unrecoverable.
    Poisoned,
    /// Submitted after engine shutdown; never executed.
    Rejected,
    /// Deadline passed while queued; dequeued without executing.
    Expired,
}

/// The shared one-shot slot: state plus the condvar that resolution signals.
pub(crate) struct SlotInner {
    state: Mutex<SlotState>,
    resolved: Condvar,
}

pub(crate) type Slot = Arc<SlotInner>;

/// A fresh, pending slot.
pub(crate) fn new_slot() -> Slot {
    Arc::new(SlotInner {
        state: Mutex::new(SlotState::Pending),
        resolved: Condvar::new(),
    })
}

/// Transition a slot out of `Pending` and wake every waiter.  Used by the
/// executors to deliver `Done`, `Poisoned` or `Rejected`.
pub(crate) fn resolve(slot: &Slot, state: SlotState) {
    *slot.state.lock() = state;
    slot.resolved.notify_all();
}

/// A typed handle to the output of a submitted request; resolved by the next
/// [`Session::flush`](crate::Session::flush) (synchronous path) or by an
/// [`Engine`](crate::Engine) executor pass (concurrent path).
///
/// Dropping a ticket abandons the output (the request still executes); the
/// `#[must_use]` lint flags the accidental version of that.
#[must_use = "a Ticket is the only handle to the request's output — wait on it or the result is lost"]
pub struct Ticket<O> {
    slot: Slot,
    _out: PhantomData<fn() -> O>,
}

impl<O> std::fmt::Debug for Ticket<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match *self.slot.state.lock() {
            SlotState::Pending => "pending",
            SlotState::Done(_) => "done",
            SlotState::Taken => "taken",
            SlotState::Poisoned => "poisoned",
            SlotState::Rejected => "rejected",
            SlotState::Expired => "expired",
        };
        write!(f, "Ticket({state})")
    }
}

impl<O: Send + 'static> Ticket<O> {
    pub(crate) fn new(slot: Slot) -> Self {
        Self {
            slot,
            _out: PhantomData,
        }
    }

    /// Whether the request has executed (and the output not yet taken).
    pub fn ready(&self) -> bool {
        matches!(*self.slot.state.lock(), SlotState::Done(_))
    }

    /// Take the output if it is available *now*, without blocking.
    ///
    /// [`TicketError::Pending`] means "not yet": on the synchronous
    /// [`Session`](crate::Session) path call
    /// [`flush`](crate::Session::flush) first; on the concurrent
    /// [`Engine`](crate::Engine) path either poll again or block with
    /// [`Ticket::wait`].
    pub fn try_wait(&self) -> Result<O, TicketError> {
        Self::take_state(&mut self.slot.state.lock())
    }

    /// Block until the request resolves, then take the output.
    ///
    /// Blocking is condvar-based (the waiter parks; resolution notifies) —
    /// no spinning.  Never returns [`TicketError::Pending`]; it does return
    /// [`TicketError::Taken`], [`TicketError::Poisoned`] or
    /// [`TicketError::Rejected`] when the output is unrecoverable.
    ///
    /// On the synchronous [`Session`](crate::Session) path nothing resolves
    /// tickets until `flush()` runs on the owning thread, so `wait`ing there
    /// *before* flushing would deadlock; `wait` is meant for
    /// [`Client`](crate::Client) submissions, which an engine executor
    /// resolves without any further call from the producer.
    pub fn wait(&self) -> Result<O, TicketError> {
        let mut state = self.slot.state.lock();
        while matches!(*state, SlotState::Pending) {
            self.slot.resolved.wait(&mut state);
        }
        Self::take_state(&mut state)
    }

    /// Take the output, panicking on any error — the convenience wrapper
    /// over [`Ticket::try_wait`] for code that has already synchronized (it
    /// called [`Session::flush`](crate::Session::flush), or `wait`ed a
    /// sibling ticket of the same pass).
    ///
    /// # Panics
    ///
    /// Panics if the request has not executed yet, if the output was already
    /// taken, if the pass executing it panicked, or if the engine rejected
    /// the submission during shutdown.
    pub fn take(&self) -> O {
        match self.try_wait() {
            Ok(out) => out,
            Err(TicketError::Pending) => {
                panic!("ticket not resolved: call Session::flush() (or Ticket::wait()) before Ticket::take()")
            }
            Err(TicketError::Taken) => panic!("ticket output already taken"),
            Err(TicketError::Poisoned) => {
                panic!("ticket lost: the pass executing this request panicked")
            }
            Err(TicketError::Rejected) => {
                panic!("ticket rejected: the request was submitted after engine shutdown")
            }
            Err(TicketError::Expired) => {
                panic!("ticket expired: the request's deadline passed before it executed")
            }
        }
    }

    fn take_state(state: &mut SlotState) -> Result<O, TicketError> {
        match std::mem::replace(state, SlotState::Taken) {
            SlotState::Done(out) => Ok(decode(out)),
            SlotState::Pending => {
                *state = SlotState::Pending;
                Err(TicketError::Pending)
            }
            SlotState::Taken => Err(TicketError::Taken),
            SlotState::Poisoned => {
                *state = SlotState::Poisoned;
                Err(TicketError::Poisoned)
            }
            SlotState::Rejected => {
                *state = SlotState::Rejected;
                Err(TicketError::Rejected)
            }
            SlotState::Expired => {
                *state = SlotState::Expired;
                Err(TicketError::Expired)
            }
        }
    }
}

/// Unbox a type-erased output back to its typed form.
pub(crate) fn decode<O: Send + 'static>(out: Box<dyn Any + Send>) -> O {
    *out.downcast::<O>()
        .expect("request output type mismatch — Solve::Output is wired to the wrong run type")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_wait_distinguishes_every_terminal_state() {
        let slot = new_slot();
        let ticket: Ticket<u32> = Ticket::new(slot.clone());
        assert_eq!(ticket.try_wait(), Err(TicketError::Pending));
        // Pending is not sticky: asking again still reports Pending.
        assert_eq!(ticket.try_wait(), Err(TicketError::Pending));

        resolve(&slot, SlotState::Done(Box::new(7u32)));
        assert!(ticket.ready());
        assert_eq!(ticket.try_wait(), Ok(7));
        assert_eq!(ticket.try_wait(), Err(TicketError::Taken));

        let slot = new_slot();
        let ticket: Ticket<u32> = Ticket::new(slot.clone());
        resolve(&slot, SlotState::Poisoned);
        assert_eq!(ticket.try_wait(), Err(TicketError::Poisoned));
        // Poisoned is sticky.
        assert_eq!(ticket.try_wait(), Err(TicketError::Poisoned));

        let slot = new_slot();
        let ticket: Ticket<u32> = Ticket::new(slot.clone());
        resolve(&slot, SlotState::Rejected);
        assert_eq!(ticket.try_wait(), Err(TicketError::Rejected));
        assert_eq!(ticket.try_wait(), Err(TicketError::Rejected));

        let slot = new_slot();
        let ticket: Ticket<u32> = Ticket::new(slot.clone());
        resolve(&slot, SlotState::Expired);
        assert_eq!(ticket.try_wait(), Err(TicketError::Expired));
        // Expired is sticky, like Rejected and Poisoned.
        assert_eq!(ticket.try_wait(), Err(TicketError::Expired));
        assert_eq!(ticket.wait(), Err(TicketError::Expired));
    }

    #[test]
    fn wait_blocks_until_resolution() {
        let slot = new_slot();
        let ticket: Ticket<String> = Ticket::new(slot.clone());
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            resolve(&slot, SlotState::Done(Box::new("late".to_string())));
        });
        assert_eq!(ticket.wait().as_deref(), Ok("late"));
        resolver.join().unwrap();
    }
}
