//! The [`Client`]: a cheap, thread-safe submission handle onto an
//! [`Engine`](crate::Engine), with blocking ([`Client::submit`]) and
//! fail-fast ([`Client::try_submit`]) admission paths.

use crate::engine::EngineShared;
use crate::exec::PendingRequest;
use crate::policy::Priority;
use crate::solve::Solve;
use crate::ticket::{self, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request admission metadata: the priority class the shard queues
/// drain by and an optional deadline after which executing the request is
/// pointless.  Built fluently from [`SubmitOptions::new`].
///
/// An expired request is *not* executed — when the executor dequeues it
/// past its deadline, its ticket resolves to
/// [`TicketError::Expired`](crate::TicketError::Expired) and the request
/// does not occupy a slot in the pass.  Expiry is checked at dequeue time
/// (the single point every queued request flows through), so a deadline
/// bounds *queueing* delay: a request whose pass starts in time runs to
/// completion even if the pass itself outlives the deadline.
///
/// ```
/// use paco_service::{Priority, SubmitOptions};
/// use std::time::Duration;
///
/// let urgent = SubmitOptions::new()
///     .priority(Priority::High)
///     .deadline_in(Duration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Urgency class ([`Priority::Normal`] by default).
    pub(crate) priority: Priority,
    /// Latest instant at which starting the request's pass is still useful
    /// (`None`, the default, never expires).
    pub(crate) deadline: Option<Instant>,
}

impl SubmitOptions {
    /// The default options: [`Priority::Normal`], no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Expire the request if it has not started executing by `deadline`.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Expire the request if it has not started executing within `budget`
    /// from now.
    pub fn deadline_in(self, budget: Duration) -> Self {
        self.deadline(Instant::now() + budget)
    }
}

/// The shard a request was routed to is at its
/// [`capacity`](crate::BatchPolicy::capacity) bound — the fail-fast verdict
/// of [`Client::try_submit`].
///
/// This is *load shedding*, distinct from
/// [`TicketError::Rejected`](crate::TicketError::Rejected) (the engine shut
/// down — retrying is pointless): an `Overloaded` submission was never
/// admitted, nothing was queued, and retrying after backing off is exactly
/// what the caller should consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("engine shard queue at capacity")
    }
}

impl std::error::Error for Overloaded {}

/// A `Clone + Send + Sync` handle for submitting requests to an
/// [`Engine`](crate::Engine) from any thread at any time — including while a
/// pass is in flight.
///
/// Submission routes the request to a shard first, then compiles it on the
/// *calling* thread **through that shard's plan cache**: same-shaped
/// requests reuse the shard's cached skeleton and only bind their buffers,
/// so producers pay (at most) their own compilation cost and the executor
/// threads spend their time purely on passes.  The returned [`Ticket`]
/// resolves when an executor pass completes the request; block on it with
/// [`Ticket::wait`] or poll with [`Ticket::try_wait`] — no `flush` call
/// exists or is needed on this path.
///
/// Two admission paths exist once the engine's
/// [`BatchPolicy::capacity`](crate::BatchPolicy::capacity) bounds the shard
/// queues: [`Client::submit`] applies **backpressure** (blocks until the
/// routed shard has space), [`Client::try_submit`] **sheds load** (fails
/// fast with [`Overloaded`] instead of waiting).  On an unbounded engine
/// (the default) the two behave identically and never refuse for load.
///
/// ```
/// use paco_service::{Engine, Lcs};
///
/// let engine = Engine::builder().procs(2).build();
/// let client = engine.client();
///
/// // Hand clones to as many producer threads as you like.
/// let worker = {
///     let client = client.clone();
///     std::thread::spawn(move || {
///         client.submit(Lcs { a: vec![1, 2, 3], b: vec![2, 3, 4] }).wait()
///     })
/// };
/// let here = client.submit(Lcs { a: vec![5, 6], b: vec![6, 5] });
/// assert_eq!(worker.join().unwrap().unwrap(), 2);
/// assert_eq!(here.wait().unwrap(), 1);
/// engine.shutdown();
/// ```
#[derive(Clone)]
pub struct Client {
    shared: Arc<EngineShared>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Client(p={})", self.shared.p())
    }
}

impl Client {
    pub(crate) fn new(shared: Arc<EngineShared>) -> Self {
        Self { shared }
    }

    /// The processor count requests are compiled for (each shard's pool
    /// width).
    pub fn p(&self) -> usize {
        self.shared.p()
    }

    /// Submit a request with default [`SubmitOptions`]: route it to a shard
    /// under the engine's [`BatchPolicy`](crate::BatchPolicy), compile it
    /// here through that shard's plan cache, and hand back the ticket its
    /// output will arrive through.
    ///
    /// On a [`capacity`](crate::BatchPolicy::capacity)-bounded engine this
    /// is the **backpressure** path: if the routed shard is full, the call
    /// blocks until an executor drains below the bound (or shutdown begins,
    /// in which case the ticket resolves to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected)).  On an
    /// unbounded engine it never blocks on execution (only briefly on the
    /// shard queue lock).  If the engine has shut down, the ticket resolves
    /// immediately to `Rejected` — a client outliving its engine degrades
    /// loudly, it does not hang.
    pub fn submit<R: Solve>(&self, req: R) -> Ticket<R::Output> {
        self.submit_with(req, SubmitOptions::default())
    }

    /// [`Client::submit`] with explicit priority/deadline options.
    pub fn submit_with<R: Solve>(&self, req: R, opts: SubmitOptions) -> Ticket<R::Output> {
        let slot = ticket::new_slot();
        // Advisory fast path: don't pay compilation for a request a
        // shut-down engine would reject anyway.  The authoritative check
        // stays inside the enqueue (under the shard queue lock), so a racing
        // shutdown is still caught there.
        if self.shared.is_shutting_down() {
            self.shared.reject(&slot);
            return Ticket::new(slot);
        }
        let shard = self.shared.route_for(req.route_hint());
        let prepared = self.shared.compile_on(shard, req);
        self.shared
            .enqueue_blocking(shard, PendingRequest::new(prepared, slot.clone(), opts));
        Ticket::new(slot)
    }

    /// Submit a batch of same-typed requests with default options — the
    /// engine-side mirror of
    /// [`Session::run_batch`](crate::Session::run_batch).  Tickets come
    /// back in request order.
    pub fn submit_batch<R: Solve>(
        &self,
        reqs: impl IntoIterator<Item = R>,
    ) -> Vec<Ticket<R::Output>> {
        self.submit_batch_with(reqs, SubmitOptions::default())
    }

    /// [`Client::submit_batch`] with explicit priority/deadline options
    /// (applied to every request of the batch).
    ///
    /// The whole batch is routed to **one** shard, so requests that arrive
    /// together coalesce into the same passes instead of being scattered
    /// round-robin — and same-shaped requests compile once against that
    /// shard's plan cache.  Each request still admits individually:
    /// on a bounded engine a batch larger than the remaining capacity
    /// simply backpressures partway through, exactly as the equivalent
    /// `submit` loop would.
    pub fn submit_batch_with<R: Solve>(
        &self,
        reqs: impl IntoIterator<Item = R>,
        opts: SubmitOptions,
    ) -> Vec<Ticket<R::Output>> {
        let shard = self.shared.route();
        reqs.into_iter()
            .map(|req| {
                let slot = ticket::new_slot();
                if self.shared.is_shutting_down() {
                    self.shared.reject(&slot);
                    return Ticket::new(slot);
                }
                let prepared = self.shared.compile_on(shard, req);
                self.shared
                    .enqueue_blocking(shard, PendingRequest::new(prepared, slot.clone(), opts));
                Ticket::new(slot)
            })
            .collect()
    }

    /// Submit without ever waiting for queue space: route the request,
    /// compile it through the routed shard's plan cache, and admit it
    /// **only if** that shard is below its
    /// [`capacity`](crate::BatchPolicy::capacity) bound — otherwise fail
    /// fast with [`Overloaded`], having queued nothing.
    ///
    /// `Err(Overloaded)` means exactly "the routed shard was full at
    /// admission time": on an unbounded engine it is never returned, and a
    /// shut-down engine returns `Ok` of a ticket that resolves to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected) (shutdown is
    /// a terminal verdict carried by the ticket, not a transient overload).
    pub fn try_submit<R: Solve>(&self, req: R) -> Result<Ticket<R::Output>, Overloaded> {
        self.try_submit_with(req, SubmitOptions::default())
    }

    /// [`Client::try_submit`] with explicit priority/deadline options.
    pub fn try_submit_with<R: Solve>(
        &self,
        req: R,
        opts: SubmitOptions,
    ) -> Result<Ticket<R::Output>, Overloaded> {
        let slot = ticket::new_slot();
        if self.shared.is_shutting_down() {
            self.shared.reject(&slot);
            return Ok(Ticket::new(slot));
        }
        let shard = self.shared.route_for(req.route_hint());
        let prepared = self.shared.compile_on(shard, req);
        if self
            .shared
            .try_enqueue(shard, PendingRequest::new(prepared, slot.clone(), opts))
        {
            Ok(Ticket::new(slot))
        } else {
            Err(Overloaded)
        }
    }
}
