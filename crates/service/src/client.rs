//! The [`Client`]: a cheap, thread-safe submission handle onto an
//! [`Engine`](crate::Engine).

use crate::engine::EngineShared;
use crate::exec::PendingRequest;
use crate::solve::Solve;
use crate::ticket::{self, Ticket};
use std::sync::Arc;

/// A `Clone + Send + Sync` handle for submitting requests to an
/// [`Engine`](crate::Engine) from any thread at any time — including while a
/// pass is in flight.
///
/// `submit` compiles the request on the *calling* thread (partitioning,
/// pivot selection, plan building — everything except touching a pool), so
/// producers pay their own compilation cost and the executor threads spend
/// their time purely on passes.  The returned [`Ticket`] resolves when an
/// executor pass completes the request; block on it with
/// [`Ticket::wait`] or poll with [`Ticket::try_wait`] — no `flush` call
/// exists or is needed on this path.
///
/// ```
/// use paco_service::{Engine, Lcs};
///
/// let engine = Engine::builder().procs(2).build();
/// let client = engine.client();
///
/// // Hand clones to as many producer threads as you like.
/// let worker = {
///     let client = client.clone();
///     std::thread::spawn(move || {
///         client.submit(Lcs { a: vec![1, 2, 3], b: vec![2, 3, 4] }).wait()
///     })
/// };
/// let here = client.submit(Lcs { a: vec![5, 6], b: vec![6, 5] });
/// assert_eq!(worker.join().unwrap().unwrap(), 2);
/// assert_eq!(here.wait().unwrap(), 1);
/// engine.shutdown();
/// ```
#[derive(Clone)]
pub struct Client {
    shared: Arc<EngineShared>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Client(p={})", self.shared.p())
    }
}

impl Client {
    pub(crate) fn new(shared: Arc<EngineShared>) -> Self {
        Self { shared }
    }

    /// The processor count requests are compiled for (each shard's pool
    /// width).
    pub fn p(&self) -> usize {
        self.shared.p()
    }

    /// Submit a request: compile it here, route it to a shard under the
    /// engine's [`BatchPolicy`](crate::BatchPolicy), and hand back the
    /// ticket its output will arrive through.
    ///
    /// Never blocks on execution (only briefly on the shard queue lock).
    /// If the engine has shut down, the ticket resolves immediately to
    /// [`TicketError::Rejected`](crate::TicketError::Rejected) — a client
    /// outliving its engine degrades loudly, it does not hang.
    pub fn submit<R: Solve>(&self, req: R) -> Ticket<R::Output> {
        let slot = ticket::new_slot();
        // Advisory fast path: don't pay compilation for a request a
        // shut-down engine would reject anyway.  The authoritative check
        // stays inside `enqueue` (under the shard queue lock), so a racing
        // shutdown is still caught there.
        if self.shared.is_shutting_down() {
            self.shared.reject(&slot);
            return Ticket::new(slot);
        }
        let prepared = req.compile(self.shared.p(), self.shared.tuning()).inner;
        self.shared.enqueue(PendingRequest {
            prepared,
            slot: slot.clone(),
        });
        Ticket::new(slot)
    }
}
