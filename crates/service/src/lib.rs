//! # paco-service
//!
//! The front door of the PACO workspace: one typed request API over every
//! workload.
//!
//! The paper's central claim is that processor-aware (PACO) schedules beat
//! processor-oblivious ones *when the runtime knows `p` up front*.  Before
//! this crate that knowledge was scattered across five per-crate function
//! families, each hand-threading a `WorkerPool` and its own magic tuning
//! knob.  Here the same capability is one surface:
//!
//! * a [`Session`] owns the [`WorkerPool`](paco_runtime::WorkerPool) and a
//!   [`Tuning`] config (processor count, base/grain sizes, oversampling,
//!   trace mode) — construct it once, reuse it for every request;
//! * a two-phase [`Solve`] trait is implemented by typed request structs —
//!   [`Lcs`], [`Apsp`]/[`Closure`], [`MatMul`], [`Strassen`], [`Sort`],
//!   [`OneD`], [`Gap`] — each compiling a shape-only [`Skeleton`] of the
//!   runtime's wave-based [`Plan`](paco_runtime::schedule::Plan) IR and then
//!   *binding* its buffers to it.  Skeletons are cached per session (and per
//!   engine shard) keyed on [`ShapeKey`] + processor count +
//!   [`Tuning::epoch`], so repeated same-shaped requests plan once;
//! * three verbs run everything:
//!   [`Session::run`] (one request),
//!   [`Session::run_batch`] (a homogeneous batch through **one** pool pass via
//!   `Plan::batch`, so the barrier count is the *maximum* of the constituent
//!   wave counts, not the sum — now for every workload, including MM, Strassen
//!   and sort), and
//!   [`Session::submit`]/[`Session::flush`] (a deferred front-end that
//!   coalesces queued submissions — including *heterogeneous mixes* of
//!   workload types — into one pool pass and resolves them through
//!   [`Ticket`]s).
//!
//! For **concurrent ingress** the same executor core is fronted by an
//! [`Engine`]: `Engine::builder()` spawns one or more executor shards (each
//! owning its own pinned pool), and [`Engine::client`] hands out
//! `Clone + Send` [`Client`]s whose [`Client::submit`] can be called from
//! any thread at any time — the executors gather whatever has arrived under
//! a [`BatchPolicy`] (batch size cap, gathering window — optionally
//! [`adaptive`](BatchPolicy::adaptive) to the arrival rate — queue
//! capacity, shard count, routing), merge it through the same step-erased
//! machinery, and resolve [`Ticket`]s as passes complete.  Producers block
//! on [`Ticket::wait`] (condvar, no spin) or poll [`Ticket::try_wait`];
//! nobody calls `flush`.
//!
//! The engine is **admission-controlled** for open-loop traffic: bound the
//! shard queues with [`BatchPolicy::capacity`] and [`Client::submit`]
//! becomes backpressure (blocks for space) while [`Client::try_submit`]
//! sheds load ([`Overloaded`]).  Requests carry [`SubmitOptions`] — a
//! [`Priority`] class the queues drain strictly by, and an optional
//! deadline after which a still-queued request resolves
//! [`TicketError::Expired`] instead of occupying a pass slot.
//!
//! **Stateful, incremental** workloads ride the same two verbs through the
//! [`incr_requests`] family: [`IncClose`] closes a graph once and registers
//! it in a [`HandleRegistry`] as a `Copy` [`ClosedGraph`] handle,
//! [`IncUpdate`] re-propagates [`EdgeUpdate`] batches through only the
//! dirty blocks (full re-closure fallback past
//! [`Tuning::incr_fallback_percent`]), [`IncSnapshot`]/[`IncDrop`] read and
//! retire the state, and [`LcsTrace`] recovers an actual [`EditOp`]
//! alignment script in linear space.  Handle-carrying requests hint their
//! engine shard via [`Solve::route_hint`], so one graph's updates keep
//! their cache/queue affinity on a multi-shard [`Engine`].
//!
//! The pre-service free functions (`lcs_paco_with_base`, `fw_paco_batch`,
//! `paco_sort_with_oversampling`, …) are gone: the per-workload `*Run`
//! machinery they delegated to is what this crate schedules, and the
//! README's migration table maps each retired entry point to its request
//! type.
//!
//! ```
//! use paco_service::{Lcs, MatMul, Session, Sort};
//! use paco_core::workload::{random_keys, random_matrix_wrapping, related_sequences};
//!
//! let session = Session::new(2);
//!
//! // One request.
//! let (a, b) = related_sequences(200, 4, 0.2, 7);
//! let len = session.run(Lcs { a, b });
//!
//! // A homogeneous batch: one pool pass, max-of-waves barriers.
//! let sorted = session.run_batch((0..4).map(|i| Sort { keys: random_keys(100, i) }));
//! assert_eq!(sorted.len(), 4);
//!
//! // A deferred heterogeneous mix: queued, then one pool pass.
//! let t1 = session.submit(Lcs { a: vec![1, 2, 3], b: vec![2, 3, 4] });
//! let m = random_matrix_wrapping(16, 16, 1);
//! let t2 = session.submit(MatMul { a: m.clone(), b: m });
//! session.flush();
//! assert_eq!(t1.take(), 2);
//! assert_eq!(t2.take().rows(), 16);
//! # let _ = len;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod cache;
pub mod client;
pub mod engine;
mod exec;
pub mod incr_requests;
pub mod policy;
pub mod requests;
pub mod session;
pub mod solve;
pub mod ticket;

pub use backend::Backend;
pub use cache::PlanCacheStats;
pub use client::{Client, Overloaded, SubmitOptions};
pub use engine::{Engine, EngineBuilder, EngineStats, ShardStats};
pub use incr_requests::{IncClose, IncDrop, IncSnapshot, IncUpdate, LcsTrace};
pub use paco_core::semiring::{Bottleneck, CountMod, Viterbi};
pub use paco_core::tuning::Tuning;
pub use paco_dp::lcs::EditOp;
pub use paco_incr::{ClosedGraph, ClosedState, EdgeUpdate, HandleRegistry, UpdateStats};
pub use policy::{BatchPolicy, Priority, Routing};
pub use requests::{Apsp, Closure, Gap, HeteroMatMul, Lcs, MatMul, OneD, Sort, Strassen};
pub use session::{RunStats, Session, SessionBuilder};
pub use solve::{Compiled, Prepared, ShapeKey, Skeleton, Solve};
pub use ticket::{Ticket, TicketError};
