//! Single ideal caches: LRU replacement and Belady's optimal (MIN) replacement.
//!
//! The ideal cache of the model is managed by an omniscient offline-optimal
//! replacement policy (Belady's MIN).  Simulating MIN requires the whole trace
//! in advance, so the distributed simulator uses LRU online — by the classic
//! Sleator–Tarjan competitiveness result an LRU cache of size `Z` incurs at most
//! twice the misses of a MIN cache of size `Z/2`, and on the regular traces of
//! divide-and-conquer algorithms the two are essentially proportional.  Both are
//! implemented here, and the test-suite checks `OPT ≤ LRU` on random and regular
//! traces.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// A fully-associative cache over *lines* with LRU replacement.
///
/// All bookkeeping is O(1) per access: a hash map from line id to an internal
/// slot plus an intrusive doubly-linked recency list over slots.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_lines: usize,
    map: HashMap<u64, usize>,
    // Intrusive doubly-linked list over slots; slot i holds line `lines[i]`.
    lines: Vec<u64>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    misses: u64,
    hits: u64,
}

impl LruCache {
    /// Create an empty cache that can hold `capacity_lines` lines.
    pub fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        Self {
            capacity_lines,
            map: HashMap::with_capacity(capacity_lines * 2),
            lines: Vec::with_capacity(capacity_lines),
            prev: Vec::with_capacity(capacity_lines),
            next: Vec::with_capacity(capacity_lines),
            head: NIL,
            tail: NIL,
            misses: 0,
            hits: 0,
        }
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.map.len()
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Access `line`; returns `true` on a hit, `false` on a miss (after which
    /// the line is resident).
    pub fn access(&mut self, line: u64) -> bool {
        if let Some(&slot) = self.map.get(&line) {
            self.hits += 1;
            self.touch(slot);
            true
        } else {
            self.misses += 1;
            self.insert(line);
            false
        }
    }

    /// Empty the cache (task boundary / flush); statistics are preserved.
    pub fn flush(&mut self) {
        self.map.clear();
        self.lines.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Reset both contents and statistics.
    pub fn reset(&mut self) {
        self.flush();
        self.misses = 0;
        self.hits = 0;
    }

    fn detach(&mut self, slot: usize) {
        let p = self.prev[slot];
        let n = self.next[slot];
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.detach(slot);
        self.attach_front(slot);
    }

    fn insert(&mut self, line: u64) {
        let slot = if self.map.len() == self.capacity_lines {
            // Evict the least recently used line and reuse its slot.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let old_line = self.lines[victim];
            self.map.remove(&old_line);
            self.lines[victim] = line;
            victim
        } else {
            let slot = self.lines.len();
            self.lines.push(line);
            self.prev.push(NIL);
            self.next.push(NIL);
            slot
        };
        self.map.insert(line, slot);
        self.attach_front(slot);
    }
}

/// Number of misses that Belady's optimal offline replacement (MIN) incurs on
/// `trace` (a sequence of line ids) with a cache of `capacity_lines` lines.
///
/// MIN evicts the resident line whose next use is farthest in the future
/// (or never).  Complexity O(|trace| · log Z) using a max-heap of next-use
/// positions with lazy deletion.
pub fn opt_misses(trace: &[u64], capacity_lines: usize) -> u64 {
    assert!(capacity_lines > 0);
    let n = trace.len();
    // next_use[i] = next position after i where trace[i] occurs again, or n.
    let mut next_use = vec![n; n];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for i in (0..n).rev() {
        if let Some(&p) = last_pos.get(&trace[i]) {
            next_use[i] = p;
        }
        last_pos.insert(trace[i], i);
    }

    use std::collections::BinaryHeap;
    // Heap of (next_use_position, line); lazily invalidated entries are skipped
    // by checking against the authoritative `resident` map.
    let mut heap: BinaryHeap<(usize, u64)> = BinaryHeap::new();
    let mut resident: HashMap<u64, usize> = HashMap::new(); // line -> its current next use
    let mut misses = 0u64;

    for i in 0..n {
        let line = trace[i];
        let nu = next_use[i];
        if resident.contains_key(&line) {
            resident.insert(line, nu);
            heap.push((nu, line));
        } else {
            misses += 1;
            if resident.len() == capacity_lines {
                // Evict the line with the farthest (authoritative) next use.
                loop {
                    let (pos, cand) = heap
                        .pop()
                        .expect("heap cannot be empty while cache is full");
                    match resident.get(&cand) {
                        Some(&cur) if cur == pos => {
                            resident.remove(&cand);
                            break;
                        }
                        _ => continue, // stale entry
                    }
                }
            }
            resident.insert(line, nu);
            heap.push((nu, line));
        }
    }
    misses
}

/// Number of misses LRU incurs on `trace` with `capacity_lines` lines
/// (convenience wrapper over [`LruCache`]).
pub fn lru_misses(trace: &[u64], capacity_lines: usize) -> u64 {
    let mut c = LruCache::new(capacity_lines);
    for &line in trace {
        c.access(line);
    }
    c.misses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = LruCache::new(4);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1));
        assert!(c.access(2));
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.access(1), "1 should still be resident");
        assert!(!c.access(2), "2 should have been evicted");
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = LruCache::new(4);
        c.access(1);
        c.access(1);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
        assert!(!c.access(1), "after flush the line must miss again");
        c.reset();
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_misses_again() {
        let mut c = LruCache::new(8);
        let ws: Vec<u64> = (0..8).collect();
        for &l in &ws {
            c.access(l);
        }
        let cold = c.misses();
        for _ in 0..10 {
            for &l in &ws {
                assert!(c.access(l));
            }
        }
        assert_eq!(c.misses(), cold);
    }

    #[test]
    fn cyclic_scan_larger_than_capacity_thrashes_under_lru() {
        // Classic LRU worst case: scanning Z+1 lines cyclically misses always.
        let capacity = 8;
        let lines: Vec<u64> = (0..(capacity as u64 + 1)).collect();
        let mut trace = Vec::new();
        for _ in 0..5 {
            trace.extend_from_slice(&lines);
        }
        assert_eq!(lru_misses(&trace, capacity), trace.len() as u64);
        // OPT does much better on the same trace.
        assert!(opt_misses(&trace, capacity) < trace.len() as u64 / 2);
    }

    #[test]
    fn opt_matches_textbook_example() {
        // Belady example: reference string 1..5 with capacity 3.
        let trace = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        assert_eq!(opt_misses(&trace, 3), 7);
        // LRU on the same string incurs 10 misses (textbook result).
        assert_eq!(lru_misses(&trace, 3), 10);
    }

    #[test]
    fn opt_never_exceeds_lru() {
        let mut rng = paco_core::workload::rng(1234);
        for _case in 0..20 {
            let universe = rng.gen_range(4..40u64);
            let len = rng.gen_range(10..400usize);
            let trace: Vec<u64> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            for cap in [2usize, 4, 8, 16] {
                let o = opt_misses(&trace, cap);
                let l = lru_misses(&trace, cap);
                assert!(o <= l, "OPT {o} > LRU {l} (cap {cap})");
                // Both at least the number of distinct lines (cold misses).
                let mut distinct: Vec<u64> = trace.clone();
                distinct.sort_unstable();
                distinct.dedup();
                assert!(o >= distinct.len() as u64);
            }
        }
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let trace: Vec<u64> = (0..100).collect();
        assert_eq!(lru_misses(&trace, 4), 100);
        assert_eq!(opt_misses(&trace, 4), 100);
    }
}
