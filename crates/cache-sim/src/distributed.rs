//! Distributed-memory cost model (Sect. III-E-1 and the Strassen discussion of
//! Sect. III-F).
//!
//! The paper argues that a PACO algorithm ports to a distributed-memory machine
//! with two phases of communication: an inter-processor message-passing phase
//! whose *bandwidth* equals the algorithm's memory-independent communication
//! bound, and a local phase whose cost is the ordinary sequential cache bound.
//! This module evaluates those costs — bandwidth (words) and latency
//! (messages) per processor — for the three algorithms the paper discusses in
//! that setting, together with the CAPS baseline, so the open-problem claim
//! ("almost exact solution to parallelizing Strassen") can be checked
//! quantitatively:
//!
//! * PACO MM-1-PIECE: bandwidth `O((nm + nk + mk + min{pmk, √(p·n·m·k²),
//!   p^{1/3}(nmk)^{2/3}})/p)` per processor, latency `O(log p)`.
//! * PACO STRASSEN-CONST-PIECES: bandwidth `O(n²/p^{2/ω₀})` words per
//!   processor (ω₀ = log₂7), latency `O(log p)`; computation within `(1 + ε)`
//!   of `n^{ω₀}/p` where `ε` shrinks geometrically with the γ super-rounds.
//! * CAPS (Ballard et al.): the same asymptotic bandwidth/latency, but only
//!   defined for `p = m·7^k`; on any other processor count it must fall back to
//!   the largest usable subset of processors, inflating the per-processor
//!   computation by `p / usable(p)`.

use crate::analytic::OMEGA_0;
use paco_core::util::caps_usable_processors;

/// Per-processor cost estimate of a distributed-memory execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistCost {
    /// Arithmetic operations per processor (the critical-path computation).
    pub flops_per_proc: f64,
    /// Words sent/received per processor (bandwidth cost).
    pub words_per_proc: f64,
    /// Messages on the critical path (latency cost).
    pub messages: f64,
    /// Number of processors that actually receive work.
    pub processors_used: usize,
}

impl DistCost {
    /// Communication-to-computation ratio (words moved per flop).
    pub fn comm_ratio(&self) -> f64 {
        if self.flops_per_proc == 0.0 {
            0.0
        } else {
            self.words_per_proc / self.flops_per_proc
        }
    }
}

/// Distributed-memory cost of PACO MM-1-PIECE for an `n × k` times `k × m`
/// product on `p` processors (Corollary 10 plus the Sect. III-E-1 discussion).
pub fn paco_mm_distributed(n: usize, m: usize, k: usize, p: usize) -> DistCost {
    assert!(p >= 1);
    let (nf, mf, kf, pf) = (n as f64, m as f64, k as f64, p as f64);
    let surface = nf * mf + nf * kf + mf * kf;
    let extra = (pf * mf * kf)
        .min((pf * nf * mf * kf * kf).sqrt())
        .min(pf.powf(1.0 / 3.0) * (nf * mf * kf).powf(2.0 / 3.0));
    DistCost {
        flops_per_proc: 2.0 * nf * mf * kf / pf,
        words_per_proc: (surface + extra) / pf,
        messages: pf.max(2.0).log2().ceil(),
        processors_used: p,
    }
}

/// Distributed-memory cost of PACO STRASSEN-CONST-PIECES on `p` processors with
/// `gamma` super-rounds (Corollary 14): computation inflated by the bounded
/// imbalance `f_comp ≤ 1/(2^{γ−1} + 1)`, bandwidth `n²/p^{2/ω₀}`, latency
/// `O(log p)`.
pub fn paco_strassen_distributed(n: usize, p: usize, gamma: usize) -> DistCost {
    assert!(p >= 1 && gamma >= 1);
    let (nf, pf) = (n as f64, p as f64);
    let imbalance = 1.0 / (2f64.powi(gamma as i32 - 1) + 1.0);
    DistCost {
        flops_per_proc: (1.0 + imbalance) * nf.powf(OMEGA_0) / pf,
        words_per_proc: nf * nf / pf.powf(2.0 / OMEGA_0),
        messages: pf.max(2.0).log2().ceil(),
        processors_used: p,
    }
}

/// Distributed-memory cost of the CAPS baseline on `p` processors: identical
/// asymptotics to PACO Strassen, but only `usable(p) = m·7^k ≤ p` processors
/// can participate, so the per-processor computation grows by `p / usable(p)`.
pub fn caps_strassen_distributed(n: usize, p: usize) -> DistCost {
    assert!(p >= 1);
    let usable = caps_usable_processors(p).max(1);
    let (nf, uf) = (n as f64, usable as f64);
    DistCost {
        flops_per_proc: nf.powf(OMEGA_0) / uf,
        words_per_proc: nf * nf / uf.powf(2.0 / OMEGA_0),
        messages: uf.max(2.0).log2().ceil(),
        processors_used: usable,
    }
}

/// The computation lower bound per processor for Strassen-based algorithms:
/// `n^{ω₀} / p` (every flop has to happen somewhere).
pub fn strassen_flop_lower_bound(n: usize, p: usize) -> f64 {
    (n as f64).powf(OMEGA_0) / p as f64
}

/// The bandwidth lower bound per processor for Strassen-based algorithms
/// (Ballard et al.): `Ω(n² / p^{2/ω₀})` words.
pub fn strassen_bandwidth_lower_bound(n: usize, p: usize) -> f64 {
    (n as f64).powi(2) / (p as f64).powf(2.0 / OMEGA_0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paco_strassen_attains_the_lower_bounds_up_to_constants() {
        for &p in &[5usize, 11, 24, 72, 97] {
            for &n in &[1 << 12, 1 << 14] {
                let cost = paco_strassen_distributed(n, p, 8);
                let flop_lb = strassen_flop_lower_bound(n, p);
                let bw_lb = strassen_bandwidth_lower_bound(n, p);
                // Computation within 1% of the lower bound at γ = 8 (the paper's
                // "less than 1%" remark).
                assert!(cost.flops_per_proc <= 1.01 * flop_lb, "p={p} n={n}");
                assert!(cost.flops_per_proc >= flop_lb);
                // Bandwidth within a constant factor of the lower bound.
                assert!(cost.words_per_proc <= 4.0 * bw_lb);
                assert!(cost.words_per_proc >= 0.25 * bw_lb);
                // Latency O(log p).
                assert!(cost.messages <= (p as f64).log2().ceil() + 1.0);
                assert_eq!(cost.processors_used, p);
            }
        }
    }

    #[test]
    fn caps_loses_processors_on_awkward_counts_and_paco_does_not() {
        let n = 1 << 13;
        for &p in &[24usize, 72, 11, 13, 100] {
            let caps = caps_strassen_distributed(n, p);
            let paco = paco_strassen_distributed(n, p, 8);
            assert_eq!(paco.processors_used, p);
            assert!(caps.processors_used <= p);
            if caps.processors_used < p {
                // Fewer usable processors means strictly more work per processor.
                assert!(caps.flops_per_proc > paco.flops_per_proc, "p={p}");
            }
        }
        // On a friendly count (49 = 7²) CAPS matches PACO's computation closely.
        let caps = caps_strassen_distributed(n, 49);
        let paco = paco_strassen_distributed(n, 49, 8);
        assert_eq!(caps.processors_used, 49);
        assert!((caps.flops_per_proc - strassen_flop_lower_bound(n, 49)).abs() < 1e-3);
        assert!(paco.flops_per_proc <= 1.01 * caps.flops_per_proc);
    }

    #[test]
    fn gamma_controls_the_computation_overhead() {
        let n = 1 << 12;
        let p = 13;
        let g1 = paco_strassen_distributed(n, p, 1);
        let g2 = paco_strassen_distributed(n, p, 2);
        let g8 = paco_strassen_distributed(n, p, 8);
        let lb = strassen_flop_lower_bound(n, p);
        assert!(g1.flops_per_proc > g2.flops_per_proc);
        assert!(g2.flops_per_proc > g8.flops_per_proc);
        assert!(g8.flops_per_proc <= 1.01 * lb);
        assert!(
            g1.flops_per_proc <= 1.5 * lb,
            "γ=1 is within 50% of optimal"
        );
    }

    #[test]
    fn mm_costs_scale_with_p() {
        let c8 = paco_mm_distributed(4096, 4096, 4096, 8);
        let c64 = paco_mm_distributed(4096, 4096, 4096, 64);
        assert!(c64.flops_per_proc < c8.flops_per_proc / 4.0);
        assert!(c64.words_per_proc < c8.words_per_proc);
        assert!(c64.messages >= c8.messages);
        assert!(c8.comm_ratio() > 0.0);
    }

    #[test]
    fn rectangular_mm_bandwidth_uses_the_min_of_three_regimes() {
        // Tall-skinny product: the p·m·k term is the minimum.
        let tall = paco_mm_distributed(1 << 20, 64, 64, 16);
        let pmk = (16 * 64 * 64) as f64;
        assert!(tall.words_per_proc * 16.0 <= (1u64 << 20) as f64 * 64.0 * 2.0 + pmk + 1e9);
        // Square product: the p^{1/3}(nmk)^{2/3} term dominates the min.
        let square = paco_mm_distributed(1024, 1024, 1024, 27);
        let expected_extra = 27f64.powf(1.0 / 3.0) * (1024f64.powi(3)).powf(2.0 / 3.0);
        assert!(square.words_per_proc <= (3.0 * 1024.0 * 1024.0 + expected_extra) / 27.0 + 1.0);
    }
}
