//! # paco-cache-sim
//!
//! The *ideal distributed cache model* of Frigo & Strumpen, which is the machine
//! model of the PACO paper (Fig. 1, Sect. II), implemented as an executable
//! simulator plus analytic evaluators of the paper's Table I bounds.
//!
//! The model: `p` processors, each with a **private ideal cache** of `Z` words
//! organised in lines of `L` words, connected to an arbitrarily large shared
//! memory.  A processor can only operate on data in its own cache; touching a
//! word whose line is absent incurs one cache miss.  Caches are fully
//! associative and non-interfering (the misses of one processor can be counted
//! independently of all others).  The paper's accounting convention (Sect.
//! III-A) has every *task* start with a cold cache and flush when it finishes.
//!
//! What this crate provides:
//!
//! * [`cache::LruCache`] — a fully-associative cache with LRU replacement
//!   (constant-time accesses), the workhorse of the simulator.
//! * [`cache::opt_misses`] — Belady's optimal offline (MIN) replacement applied
//!   to a recorded trace, for validating that LRU is within the usual constant
//!   factor on these regular traces (the "ideal cache" of the model is OPT; the
//!   classic Sleator–Tarjan result justifies simulating with LRU).
//! * [`sim::DistCacheSim`] — `p` private caches with per-processor miss
//!   counters (`Q_p^Σ`, `Q_p^max`), task-boundary flushes, and word→line
//!   translation.
//! * [`sim::Tracker`] / [`sim::NullTracker`] / [`sim::SimTracker`] — the access
//!   hook the algorithm kernels are generic over, so the *same* kernel code runs
//!   natively (zero-cost no-op tracker) or replayed through the simulator.
//! * [`layout`] — address-space layout helpers mapping logical array/matrix
//!   cells to word addresses.
//! * [`analytic`] — closed-form evaluators of every Q-bound that appears in
//!   Table I, used by the `table1` benchmark binary to print the paper's
//!   comparison and by tests to check the measured misses track the predicted
//!   shape.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytic;
pub mod cache;
pub mod distributed;
pub mod layout;
pub mod sim;

pub use cache::{opt_misses, LruCache};
pub use layout::{Layout1D, Layout2D};
pub use paco_core::machine::CacheParams;
pub use sim::{DistCacheSim, NullTracker, SimTracker, Tracker};
