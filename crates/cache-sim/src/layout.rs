//! Address-space layouts.
//!
//! The simulator counts misses over *word addresses*.  Algorithm kernels think
//! in terms of logical cells — `D[j]`, `X[i][j]`, `C[i][j]` — so these helpers
//! assign each logical array a disjoint base address in a flat simulated address
//! space and translate cell coordinates to word addresses.

/// Allocator of disjoint address ranges in the simulated shared memory.
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    next_free: usize,
}

impl AddressSpace {
    /// A fresh, empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `words` consecutive words, returning the base address.
    /// Allocations are aligned to 64-word boundaries so distinct arrays never
    /// share a cache line regardless of the simulated line size (≤ 64 words).
    pub fn alloc(&mut self, words: usize) -> usize {
        const ALIGN: usize = 64;
        let base = self.next_free.div_ceil(ALIGN) * ALIGN;
        self.next_free = base + words;
        base
    }

    /// Reserve a 1D array of `len` words.
    pub fn alloc_1d(&mut self, len: usize) -> Layout1D {
        Layout1D {
            base: self.alloc(len),
            len,
        }
    }

    /// Reserve a row-major 2D array of `rows × cols` words.
    pub fn alloc_2d(&mut self, rows: usize, cols: usize) -> Layout2D {
        Layout2D {
            base: self.alloc(rows * cols),
            rows,
            cols,
        }
    }

    /// Total words reserved so far.
    pub fn used_words(&self) -> usize {
        self.next_free
    }
}

/// Layout of a 1D array in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout1D {
    /// Base word address.
    pub base: usize,
    /// Number of elements.
    pub len: usize,
}

impl Layout1D {
    /// Word address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> usize {
        debug_assert!(
            i < self.len,
            "Layout1D index {i} out of bounds {}",
            self.len
        );
        self.base + i
    }
}

/// Layout of a row-major 2D array in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout2D {
    /// Base word address.
    pub base: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Layout2D {
    /// Word address of cell `(i, j)`.
    #[inline]
    pub fn addr(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "Layout2D index ({i},{j}) out of bounds {}x{}",
            self.rows,
            self.cols
        );
        self.base + i * self.cols + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc_1d(100);
        let b = space.alloc_2d(10, 10);
        assert_eq!(a.base % 64, 0);
        assert_eq!(b.base % 64, 0);
        assert!(b.base >= a.base + a.len);
        assert!(space.used_words() >= 200);
    }

    #[test]
    fn addressing() {
        let mut space = AddressSpace::new();
        let v = space.alloc_1d(8);
        assert_eq!(v.addr(0), v.base);
        assert_eq!(v.addr(7), v.base + 7);
        let m = space.alloc_2d(4, 5);
        assert_eq!(m.addr(0, 0), m.base);
        assert_eq!(m.addr(2, 3), m.base + 2 * 5 + 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_panics_in_debug() {
        let mut space = AddressSpace::new();
        let v = space.alloc_1d(4);
        let _ = v.addr(4);
    }
}
