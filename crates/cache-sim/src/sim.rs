//! The distributed cache simulator and the access-tracking hook.
//!
//! [`DistCacheSim`] instantiates one private [`LruCache`]
//! per processor and tallies per-processor misses, giving the paper's
//! `Q^Σ_p` (total) and `Q^max_p` (critical-path) quantities directly.
//!
//! Algorithm kernels are written once, generic over [`Tracker`]:
//! in production they are instantiated with [`NullTracker`] (every hook is an
//! empty `#[inline]` function, so the compiler erases it), and in the
//! cache-model experiments they are instantiated with [`SimTracker`], which
//! replays every logical read/write through the simulated private cache of the
//! processor the partitioning assigned that piece of work to.

use crate::cache::LruCache;
use paco_core::machine::CacheParams;
use paco_core::metrics::Counters;

/// Hook through which instrumented kernels report their memory accesses.
///
/// All methods have empty default bodies so a no-op tracker compiles away.
pub trait Tracker {
    /// Whether this tracker observes accesses at all.  `true` for every real
    /// tracker; [`NullTracker`] overrides it to `false`, which is the gate the
    /// leaf fast paths check — a specialized kernel skips the per-element
    /// `read`/`write` hooks, so it may only run when nothing is listening.
    const TRACKING: bool = true;

    /// A read of one word at `addr`.
    #[inline]
    fn read(&mut self, addr: usize) {
        let _ = addr;
    }

    /// A write of one word at `addr`.
    #[inline]
    fn write(&mut self, addr: usize) {
        let _ = addr;
    }

    /// Subsequent accesses are attributed to processor `proc`.
    #[inline]
    fn set_proc(&mut self, proc: usize) {
        let _ = proc;
    }

    /// A task boundary on the current processor: the paper's accounting flushes
    /// the private cache when a task finishes.
    #[inline]
    fn task_boundary(&mut self) {}
}

/// The zero-cost tracker used for native (non-simulated) execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracker;

impl Tracker for NullTracker {
    const TRACKING: bool = false;
}

/// `p` private ideal caches plus per-processor miss/access counters.
#[derive(Debug, Clone)]
pub struct DistCacheSim {
    params: CacheParams,
    caches: Vec<LruCache>,
    misses: Counters,
    accesses: Counters,
}

impl DistCacheSim {
    /// Create a simulator for `p` processors with the given private-cache
    /// parameters.
    pub fn new(p: usize, params: CacheParams) -> Self {
        assert!(p > 0, "need at least one processor");
        Self {
            params,
            caches: (0..p).map(|_| LruCache::new(params.lines())).collect(),
            misses: Counters::new(p),
            accesses: Counters::new(p),
        }
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.caches.len()
    }

    /// The cache parameters used by every private cache.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Record an access by processor `proc` to the word at `addr`.
    pub fn access(&mut self, proc: usize, addr: usize) {
        let line = (addr / self.params.l_words) as u64;
        self.accesses.add(proc, 1);
        if !self.caches[proc].access(line) {
            self.misses.add(proc, 1);
        }
    }

    /// Record an access by `proc` to `words` consecutive words starting at `addr`.
    pub fn access_range(&mut self, proc: usize, addr: usize, words: usize) {
        let l = self.params.l_words;
        let first = addr / l;
        let last = (addr + words.max(1) - 1) / l;
        self.accesses.add(proc, words as u64);
        for line in first..=last {
            if !self.caches[proc].access(line as u64) {
                self.misses.add(proc, 1);
            }
        }
    }

    /// Flush processor `proc`'s private cache (task boundary).
    pub fn flush(&mut self, proc: usize) {
        self.caches[proc].flush();
    }

    /// Flush every private cache.
    pub fn flush_all(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }

    /// Per-processor miss counters.
    pub fn misses(&self) -> &Counters {
        &self.misses
    }

    /// Per-processor access counters.
    pub fn accesses(&self) -> &Counters {
        &self.accesses
    }

    /// `Q^Σ_p`: cache misses summed over all processors.
    pub fn q_sum(&self) -> u64 {
        self.misses.total()
    }

    /// `Q^max_p`: maximal cache misses on any single processor.
    pub fn q_max(&self) -> u64 {
        self.misses.max()
    }

    /// Miss imbalance `Q^max_p / (Q^Σ_p / p)`.
    pub fn q_imbalance(&self) -> f64 {
        self.misses.imbalance()
    }
}

/// Tracker that replays accesses through a [`DistCacheSim`].
#[derive(Debug)]
pub struct SimTracker {
    sim: DistCacheSim,
    current_proc: usize,
}

impl SimTracker {
    /// Create a tracker for `p` processors with the given cache parameters;
    /// accesses are attributed to processor 0 until [`Tracker::set_proc`] is
    /// called.
    pub fn new(p: usize, params: CacheParams) -> Self {
        Self {
            sim: DistCacheSim::new(p, params),
            current_proc: 0,
        }
    }

    /// Processor currently being charged.
    pub fn current_proc(&self) -> usize {
        self.current_proc
    }

    /// The underlying simulator (for reading out the counters).
    pub fn sim(&self) -> &DistCacheSim {
        &self.sim
    }

    /// Consume the tracker and return the simulator.
    pub fn into_sim(self) -> DistCacheSim {
        self.sim
    }
}

impl Tracker for SimTracker {
    #[inline]
    fn read(&mut self, addr: usize) {
        self.sim.access(self.current_proc, addr);
    }

    #[inline]
    fn write(&mut self, addr: usize) {
        self.sim.access(self.current_proc, addr);
    }

    #[inline]
    fn set_proc(&mut self, proc: usize) {
        assert!(proc < self.sim.p(), "processor {proc} out of range");
        self.current_proc = proc;
    }

    #[inline]
    fn task_boundary(&mut self) {
        self.sim.flush(self.current_proc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheParams {
        CacheParams::new(64, 4) // 16 lines of 4 words
    }

    #[test]
    fn null_tracker_is_inert() {
        let mut t = NullTracker;
        t.read(0);
        t.write(1);
        t.set_proc(5);
        t.task_boundary();
    }

    #[test]
    fn line_granularity() {
        let mut sim = DistCacheSim::new(1, tiny());
        // Words 0..4 share one line: one miss, three hits.
        for w in 0..4 {
            sim.access(0, w);
        }
        assert_eq!(sim.q_sum(), 1);
        assert_eq!(sim.accesses().total(), 4);
        // Word 4 is the next line.
        sim.access(0, 4);
        assert_eq!(sim.q_sum(), 2);
    }

    #[test]
    fn access_range_spans_lines() {
        let mut sim = DistCacheSim::new(1, tiny());
        sim.access_range(0, 2, 8); // words 2..10 -> lines 0, 1, 2
        assert_eq!(sim.q_sum(), 3);
        assert_eq!(sim.accesses().total(), 8);
    }

    #[test]
    fn processors_are_independent() {
        let mut sim = DistCacheSim::new(2, tiny());
        sim.access(0, 0);
        sim.access(1, 0); // same line, different private cache -> both miss
        assert_eq!(sim.misses().get(0), 1);
        assert_eq!(sim.misses().get(1), 1);
        sim.access(0, 0);
        assert_eq!(sim.misses().get(0), 1, "second access on p0 hits");
    }

    #[test]
    fn flush_forces_cold_restart() {
        let mut sim = DistCacheSim::new(1, tiny());
        sim.access(0, 0);
        sim.flush(0);
        sim.access(0, 0);
        assert_eq!(sim.q_sum(), 2);
        sim.flush_all();
        sim.access(0, 0);
        assert_eq!(sim.q_sum(), 3);
    }

    #[test]
    fn q_max_and_imbalance() {
        let mut sim = DistCacheSim::new(2, tiny());
        for w in 0..64 {
            sim.access(0, w * 4); // 64 distinct lines on p0
        }
        sim.access(1, 0);
        assert_eq!(sim.q_max(), 64);
        assert_eq!(sim.q_sum(), 65);
        assert!(sim.q_imbalance() > 1.9);
    }

    #[test]
    fn sim_tracker_routes_by_processor() {
        let mut t = SimTracker::new(3, tiny());
        t.set_proc(2);
        t.read(0);
        t.write(1);
        t.set_proc(0);
        t.read(100);
        let sim = t.into_sim();
        assert_eq!(sim.misses().get(2), 1); // words 0 and 1 share a line
        assert_eq!(sim.misses().get(0), 1);
        assert_eq!(sim.misses().get(1), 0);
    }

    #[test]
    fn working_set_larger_than_cache_evicts() {
        let params = CacheParams::new(64, 4); // 16 lines
        let mut sim = DistCacheSim::new(1, params);
        // Touch 32 distinct lines twice in cyclic order: capacity 16 < 32 so the
        // second round misses again under LRU.
        for _round in 0..2 {
            for l in 0..32 {
                sim.access(0, l * 4);
            }
        }
        assert_eq!(sim.q_sum(), 64);
    }
}
