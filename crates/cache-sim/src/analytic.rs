//! Closed-form evaluators of the Table I complexity bounds.
//!
//! Table I of the paper compares, for each problem, the parallel running time
//! (`T_p` / `T^max_p`) and the overall parallel cache complexity
//! (`Q_p` / `Q^Σ_p`) of the best processor-oblivious (PO), processor-aware (PA)
//! and PACO algorithms.  The functions here evaluate those asymptotic
//! expressions numerically (dropping the hidden constants, i.e. treating every
//! bound as if its constant were 1) so the `table1` benchmark binary can print
//! the paper's table for concrete `(n, p, Z, L)` and so the tests can check
//! that the *measured* miss counts from the simulator track the predicted
//! shape: which variant wins, and how the bounds scale when `p` or `n` grows.
//!
//! The exponent `ω₀ = log₂ 7` and the LCS/GAP critical-path exponent
//! `log₂ 3 ≈ 1.58` appear exactly as in the paper.

/// `log₂ 7`, the exponent of Strassen's algorithm.
pub const OMEGA_0: f64 = 2.807354922057604; // log2(7)

/// `log₂ 3`, the critical-path exponent of the 2-way divide-and-conquer LCS/GAP.
pub const LOG2_3: f64 = 1.5849625007211562;

/// Parameters a bound is evaluated at.  All values are `f64` so the formulas
/// read like the paper; callers construct it from integer sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundParams {
    /// Problem size `n` (sequence length, matrix dimension, number of keys).
    pub n: f64,
    /// Second matrix dimension `m` (defaults to `n` for square problems).
    pub m: f64,
    /// Third matrix dimension `k` (defaults to `n`).
    pub k: f64,
    /// Number of processors `p`.
    pub p: f64,
    /// Private cache size `Z` in words.
    pub z: f64,
    /// Cache line size `L` in words.
    pub l: f64,
}

impl BoundParams {
    /// Square problem of size `n` on `p` processors with cache `(z, l)`.
    pub fn square(n: usize, p: usize, z: usize, l: usize) -> Self {
        Self {
            n: n as f64,
            m: n as f64,
            k: n as f64,
            p: p as f64,
            z: z as f64,
            l: l as f64,
        }
    }

    /// Rectangular matrix-multiplication problem `n × k` times `k × m`.
    pub fn rect(n: usize, m: usize, k: usize, p: usize, z: usize, l: usize) -> Self {
        Self {
            n: n as f64,
            m: m as f64,
            k: k as f64,
            p: p as f64,
            z: z as f64,
            l: l as f64,
        }
    }
}

fn lg(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Which of the paper's problems a bound refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Longest common subsequence (Sect. III-B).
    Lcs,
    /// The 1D / least-weight-subsequence problem (Sect. III-C).
    OneD,
    /// The GAP problem (Sect. III-D).
    Gap,
    /// Classic rectangular matrix multiplication on a semiring (Sect. III-E).
    Mm,
    /// Strassen's algorithm (Sect. III-F).
    Strassen,
    /// Comparison-based sorting (Sect. III-G).
    Sort,
}

/// Which class of algorithm a bound refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Processor-oblivious (recursive + randomized work stealing).
    Po,
    /// Processor-aware (classic): Chowdhury–Ramachandran LCS, CARMA MM,
    /// CAPS Strassen, …
    Pa,
    /// The sublinear-depth algorithms of Galil & Park (1D and GAP rows).
    Sublinear,
    /// The paper's processor-aware cache-oblivious algorithms.
    Paco,
}

/// Overall parallel cache complexity (`Q_p` or `Q^Σ_p`) in cache lines, as
/// listed in Table I.  Returns `None` for combinations the table does not list
/// (e.g. a "sublinear" LCS).
pub fn cache_bound(problem: Problem, variant: Variant, bp: BoundParams) -> Option<f64> {
    let BoundParams { n, m, k, p, z, l } = bp;
    let q = match (problem, variant) {
        // ---------------- LCS ----------------
        (Problem::Lcs, Variant::Po) => {
            // O(n²/(LZ) + √(p·n^{2·1.79}) + p·n^{1.58}) — Frigo–Strumpen plus the
            // Cole–Ramachandran usurpation term; Table I writes √p·n^{1.79}+p·n^{1.58}.
            n * n / (l * z) + (p.sqrt() * n.powf(1.79) + p * n.powf(LOG2_3)) / l
        }
        (Problem::Lcs, Variant::Pa) => n * n / (l * z) + p * n / l,
        (Problem::Lcs, Variant::Paco) => {
            let mem_dep = n * n / (l * z) + p * n * lg(p * z) / l;
            let mem_indep = p * n * lg(n) / l;
            mem_dep.min(mem_indep)
        }
        // ---------------- 1D ----------------
        (Problem::OneD, Variant::Po) => n * n / (l * z) + p * n * z / l,
        (Problem::OneD, Variant::Sublinear) => n * n / l + p * n.sqrt() * lg(n) * z / l,
        (Problem::OneD, Variant::Paco) => {
            let mem_dep = n * n / (l * z) + p * z * lg(z) / l;
            let mem_indep = p.sqrt() * n * lg(n) / l;
            mem_dep.min(mem_indep)
        }
        // ---------------- GAP ----------------
        (Problem::Gap, Variant::Po) => {
            let blelloch_gu_seq = n * n * n / (l * z)
                + n * n * (lg(n).powi(2) / z.sqrt()).min(lg(z.sqrt()).powi(2)) / l;
            blelloch_gu_seq + p * n.powf(LOG2_3) * z / l
        }
        (Problem::Gap, Variant::Sublinear) => n.powi(4) / l + p * n.sqrt() * lg(n) * z / l,
        (Problem::Gap, Variant::Paco) => {
            let mem_dep = n * n * n / (l * z) + n * n * lg(z) / l;
            let mem_indep = n * n * lg(n) / l;
            mem_dep.min(mem_indep)
        }
        // ---------------- MM ----------------
        (Problem::Mm, Variant::Po) => {
            mm_q1(n, m, k, z, l) + (p * lg(p)).powf(1.0 / 3.0) * n * n / l + p * lg(p)
        }
        (Problem::Mm, Variant::Pa) | (Problem::Mm, Variant::Paco) => {
            // PA (CARMA) matches PACO except for the restriction on p.
            let extra = (p * m * k)
                .min((p * n * m * k * k).sqrt())
                .min(p.powf(1.0 / 3.0) * (n * m * k).powf(2.0 / 3.0));
            mm_q1(n, m, k, z, l) + extra / l
        }
        // ---------------- Strassen ----------------
        (Problem::Strassen, Variant::Po) => {
            strassen_q1(n, z, l) + (p * lg(p)).powf(1.0 / 3.0) * n * n / l + p * lg(p)
        }
        (Problem::Strassen, Variant::Pa) | (Problem::Strassen, Variant::Paco) => {
            strassen_q1(n, z, l) + n * n / (l * p.powf(2.0 / OMEGA_0 - 1.0))
        }
        // ---------------- Sorting ----------------
        (Problem::Sort, Variant::Po) => {
            (n / l) * (lg(n) / lg(z)) + p * lg(n) / lg((n / p).max(2.0)) * l
        }
        (Problem::Sort, Variant::Paco) => (n / l) * (lg((n / p).max(2.0)) / lg(z)),
        _ => return None,
    };
    Some(q)
}

/// Parallel running time (`T_p` for PO, `T^max_p` for PA/PACO) as in Table I.
pub fn time_bound(problem: Problem, variant: Variant, bp: BoundParams) -> Option<f64> {
    let BoundParams { n, m, k, p, .. } = bp;
    let t = match (problem, variant) {
        (Problem::Lcs, Variant::Po) => n * n / p + n.powf(LOG2_3),
        (Problem::Lcs, Variant::Pa) => 2.0 * n * n / p,
        (Problem::Lcs, Variant::Paco) => n * n / p,
        (Problem::OneD, Variant::Po) => n * n / p + n,
        (Problem::OneD, Variant::Sublinear) => n * n / p + n.sqrt() * lg(n),
        (Problem::OneD, Variant::Paco) => n * n / p,
        (Problem::Gap, Variant::Po) => n * n * n / p + n.powf(LOG2_3),
        (Problem::Gap, Variant::Sublinear) => n.powi(4) / p + n.sqrt() * lg(n),
        (Problem::Gap, Variant::Paco) => n * n * n / p,
        (Problem::Mm, Variant::Po) => n * m * k / p + lg(n).powi(2),
        (Problem::Mm, Variant::Pa) | (Problem::Mm, Variant::Paco) => n * m * k / p + n + m + k,
        (Problem::Strassen, Variant::Po) => n.powf(OMEGA_0) / p + lg(n).powi(2),
        (Problem::Strassen, Variant::Pa) | (Problem::Strassen, Variant::Paco) => {
            n.powf(OMEGA_0) / p
        }
        (Problem::Sort, Variant::Po) => (n / p) * lg(n) + lg(n) * lg(lg(n)),
        (Problem::Sort, Variant::Paco) => (n / p) * lg(n),
        _ => return None,
    };
    Some(t)
}

/// Optimal sequential cache complexity of rectangular MM
/// (`Q₁ = 1 + (nm + nk + mk)/L + nmk/(L√Z)`, Lemma 8 / Frigo et al.).
pub fn mm_q1(n: f64, m: f64, k: f64, z: f64, l: f64) -> f64 {
    1.0 + (n * m + n * k + m * k) / l + n * m * k / (l * z.sqrt())
}

/// Optimal sequential cache complexity of Strassen
/// (`n^{ω₀} / (L·Z^{ω₀/2−1}) + n²/L`).
pub fn strassen_q1(n: f64, z: f64, l: f64) -> f64 {
    n.powf(OMEGA_0) / (l * z.powf(OMEGA_0 / 2.0 - 1.0)) + n * n / l
}

/// Optimal sequential cache complexity of the LCS / 1D kernels
/// (`n²/(LZ) + n/L`, Lemma 1 / Lemma 5).
pub fn dp2d_q1(n: f64, z: f64, l: f64) -> f64 {
    n * n / (l * z) + n / l
}

/// Perfect-strong-scaling threshold for PACO LCS (Corollary 4):
/// holds when `n/p = Ω(Z·log(pZ))`.
pub fn lcs_scaling_range_ok(bp: BoundParams) -> bool {
    bp.n / bp.p >= bp.z * lg(bp.p * bp.z)
}

/// Perfect-strong-scaling threshold for PACO MM (Corollary 11):
/// holds when `p = O(nmk / Z^{3/2})`.
pub fn mm_scaling_range_ok(bp: BoundParams) -> bool {
    bp.p <= bp.n * bp.m * bp.k / bp.z.powf(1.5)
}

/// Perfect-strong-scaling threshold for PACO Strassen (Theorem 13):
/// holds when `n = Ω(Z)`.
pub fn strassen_scaling_range_ok(bp: BoundParams) -> bool {
    bp.n >= bp.z
}

/// A row of the rendered Table I: problem, variant, formula text and values.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Which problem.
    pub problem: Problem,
    /// Which algorithm class.
    pub variant: Variant,
    /// The time bound evaluated at the parameters.
    pub time: f64,
    /// The cache bound evaluated at the parameters.
    pub cache: f64,
}

/// Evaluate every (problem, variant) combination Table I lists.
pub fn table1_rows(bp: BoundParams) -> Vec<Table1Row> {
    use Problem::*;
    use Variant::*;
    let combos: &[(Problem, Variant)] = &[
        (Lcs, Po),
        (Lcs, Pa),
        (Lcs, Paco),
        (OneD, Po),
        (OneD, Sublinear),
        (OneD, Paco),
        (Gap, Po),
        (Gap, Sublinear),
        (Gap, Paco),
        (Mm, Po),
        (Mm, Pa),
        (Mm, Paco),
        (Strassen, Po),
        (Strassen, Pa),
        (Strassen, Paco),
        (Sort, Po),
        (Sort, Paco),
    ];
    combos
        .iter()
        .filter_map(|&(problem, variant)| {
            Some(Table1Row {
                problem,
                variant,
                time: time_bound(problem, variant, bp)?,
                cache: cache_bound(problem, variant, bp)?,
            })
        })
        .collect()
}

/// Human-readable label of a problem.
pub fn problem_name(p: Problem) -> &'static str {
    match p {
        Problem::Lcs => "LCS",
        Problem::OneD => "1D",
        Problem::Gap => "GAP",
        Problem::Mm => "MM",
        Problem::Strassen => "Strassen",
        Problem::Sort => "Sort",
    }
}

/// Human-readable label of a variant.
pub fn variant_name(v: Variant) -> &'static str {
    match v {
        Variant::Po => "PO",
        Variant::Pa => "PA",
        Variant::Sublinear => "sublinear",
        Variant::Paco => "PACO",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp(n: usize, p: usize) -> BoundParams {
        BoundParams::square(n, p, 32 * 1024, 8)
    }

    #[test]
    fn paco_lcs_beats_po_and_is_at_least_as_good_as_pa_claims() {
        for &n in &[1 << 14, 1 << 16, 1 << 18] {
            for &p in &[4, 24, 72, 97] {
                let b = bp(n, p);
                let po = cache_bound(Problem::Lcs, Variant::Po, b).unwrap();
                let paco = cache_bound(Problem::Lcs, Variant::Paco, b).unwrap();
                assert!(paco < po, "n={n} p={p}: PACO {paco} >= PO {po}");
            }
        }
    }

    #[test]
    fn paco_1d_and_gap_beat_po_for_large_n() {
        for &n in &[1 << 14, 1 << 16] {
            let b = bp(n, 24);
            assert!(
                cache_bound(Problem::OneD, Variant::Paco, b).unwrap()
                    < cache_bound(Problem::OneD, Variant::Po, b).unwrap()
            );
            assert!(
                cache_bound(Problem::Gap, Variant::Paco, b).unwrap()
                    < cache_bound(Problem::Gap, Variant::Po, b).unwrap()
            );
            assert!(
                cache_bound(Problem::Gap, Variant::Paco, b).unwrap()
                    < cache_bound(Problem::Gap, Variant::Sublinear, b).unwrap()
            );
        }
    }

    #[test]
    fn paco_mm_and_strassen_beat_po() {
        for &n in &[1 << 12, 1 << 13] {
            let b = bp(n, 72);
            assert!(
                cache_bound(Problem::Mm, Variant::Paco, b).unwrap()
                    < cache_bound(Problem::Mm, Variant::Po, b).unwrap()
            );
            assert!(
                cache_bound(Problem::Strassen, Variant::Paco, b).unwrap()
                    < cache_bound(Problem::Strassen, Variant::Po, b).unwrap()
            );
        }
    }

    #[test]
    fn pa_equals_paco_where_the_table_says_so() {
        let b = bp(1 << 12, 24);
        assert_eq!(
            cache_bound(Problem::Mm, Variant::Pa, b),
            cache_bound(Problem::Mm, Variant::Paco, b)
        );
        assert_eq!(
            cache_bound(Problem::Strassen, Variant::Pa, b),
            cache_bound(Problem::Strassen, Variant::Paco, b)
        );
    }

    #[test]
    fn paco_sort_beats_po_sort() {
        let b = bp(1 << 24, 24);
        assert!(
            cache_bound(Problem::Sort, Variant::Paco, b).unwrap()
                < cache_bound(Problem::Sort, Variant::Po, b).unwrap()
        );
    }

    #[test]
    fn time_bounds_shrink_with_p_in_scaling_range() {
        for &(problem, variant) in &[
            (Problem::Lcs, Variant::Paco),
            (Problem::Gap, Variant::Paco),
            (Problem::Mm, Variant::Paco),
            (Problem::Strassen, Variant::Paco),
            (Problem::Sort, Variant::Paco),
        ] {
            let t8 = time_bound(problem, variant, bp(4096, 8)).unwrap();
            let t64 = time_bound(problem, variant, bp(4096, 64)).unwrap();
            assert!(
                t64 < t8 / 4.0,
                "{problem:?}/{variant:?}: T(64)={t64} not ≪ T(8)={t8}"
            );
        }
    }

    #[test]
    fn table1_lists_all_rows() {
        let rows = table1_rows(bp(1 << 14, 24));
        assert_eq!(rows.len(), 17);
        assert!(rows
            .iter()
            .all(|r| r.time.is_finite() && r.cache.is_finite()));
        assert!(rows.iter().all(|r| r.time > 0.0 && r.cache > 0.0));
    }

    #[test]
    fn scaling_ranges() {
        // Big n, few processors: inside every scaling range.
        let b = bp(1 << 24, 8);
        assert!(lcs_scaling_range_ok(b));
        assert!(mm_scaling_range_ok(b));
        assert!(strassen_scaling_range_ok(b));
        // Tiny n, many processors: outside.
        let b = BoundParams::square(1 << 10, 1 << 16, 32 * 1024, 8);
        assert!(!lcs_scaling_range_ok(b));
        assert!(!strassen_scaling_range_ok(b));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(problem_name(Problem::Strassen), "Strassen");
        assert_eq!(variant_name(Variant::Paco), "PACO");
        assert_eq!(variant_name(Variant::Sublinear), "sublinear");
    }

    #[test]
    fn q1_helpers_positive_and_monotone() {
        assert!(mm_q1(100.0, 100.0, 100.0, 1024.0, 8.0) > 0.0);
        assert!(strassen_q1(256.0, 1024.0, 8.0) > strassen_q1(128.0, 1024.0, 8.0));
        assert!(dp2d_q1(1000.0, 1024.0, 8.0) > 0.0);
    }
}
