//! Longest Common Subsequence (Sect. III-B of the paper).
//!
//! LCS is the paper's representative of dynamic programming with *constant*
//! dependencies: cell `(i, j)` depends only on its three neighbours
//! `(i-1, j)`, `(i, j-1)`, `(i-1, j-1)`.  The module provides every variant the
//! paper measures in Fig. 12a, all built on the same sequential block kernel:
//!
//! | function | class | description |
//! |---|---|---|
//! | [`lcs_reference`] | — | two-row iterative DP, the ground truth |
//! | [`lcs_sequential_co`] | CO | sequential cache-oblivious 2-way divide-and-conquer (Lemma 1) |
//! | [`lcs_po`] | PO | recursive quadrant parallelism on rayon (randomized work stealing), base-case 256 in the paper |
//! | [`lcs_pa`] | PA | Chowdhury–Ramachandran p-way top-level division, block wavefront |
//! | [`LcsRun`] | PACO | the paper's two-phase algorithm: pruned divide-and-assign partitioning + wavefront execution (Theorem 2); run it through `paco_service::Session` with the `Lcs` request |
//!
//! The `*_traced` variants replay the identical schedules through the ideal
//! distributed cache model to measure `Q^Σ_p` / `Q^max_p`.
//!
//! [`trace::hirschberg`] recovers the actual alignment (an [`EditOp`] script)
//! in linear space — the `LcsTrace` service request of the incremental
//! subsystem builds on it.

pub mod kernel;
pub mod pa;
pub mod paco;
pub mod partition;
pub mod po;
pub mod trace;

pub use kernel::{
    co_block, lcs_reference, lcs_sequential_co, lcs_sequential_traced, LcsAddr, LcsTable,
    DEFAULT_BASE,
};
pub use pa::{lcs_pa, lcs_pa_traced};
pub use paco::{execute_plan, lcs_paco_traced, LcsRun};
pub use partition::{plan_paco_lcs, PacoLcsPlan, Region};
pub use po::lcs_po;
pub use trace::{hirschberg, lcs_of_script, replay, EditOp};

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::related_sequences;
    use paco_runtime::WorkerPool;

    /// All five variants agree on a moderately sized instance.
    #[test]
    fn all_variants_agree() {
        let (a, b) = related_sequences(353, 4, 0.3, 99);
        let expect = lcs_reference(&a, &b);
        assert_eq!(lcs_sequential_co(&a, &b, 32), expect);
        assert_eq!(lcs_po(&a, &b, 64), expect);
        let pool = WorkerPool::new(3);
        assert_eq!(lcs_pa(&a, &b, &pool), expect);
        let paco = LcsRun::prepare(a.clone(), b.clone(), pool.p(), DEFAULT_BASE);
        paco.plan().execute(&pool, |proc, idx| paco.step(proc, idx));
        assert_eq!(paco.finish(), expect);
    }
}
