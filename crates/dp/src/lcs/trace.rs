//! Hirschberg-style linear-space LCS traceback: edit scripts, not lengths.
//!
//! Every LCS variant in this crate answers *how long* the common subsequence
//! is; the service's incremental/compositional workloads (ROADMAP item 5)
//! also need *which* edits turn one sequence into the other — a diff.  The
//! classic way to recover the alignment without materializing the `n × m`
//! traceback table is Hirschberg's divide-and-conquer: compute the last DP
//! row forward over the left half of `a` and backward over the right half,
//! split `b` at the column maximizing `forward[k] + backward[m-k]`, and
//! recurse on the two sub-problems.  Linear space, and at most twice the DP
//! cells of the plain length computation (each level evaluates every cell of
//! its sub-rectangle once per direction, and the rectangles halve).
//!
//! The recovered script is a sequence of [`EditOp`]s that replays `a` into
//! `b`; its `Keep` count is exactly the LCS length (asserted bit-for-bit
//! against [`lcs_reference`](crate::lcs::lcs_reference) by the `tests/incr.rs`
//! proptests).  Work is tallied into the `incr/*` metrics counters
//! (`trace_cells`, `trace_bytes`) — the "traceback overhead vs plain LCS"
//! gauge is their ratio to the `n·m` cells the length-only DP would touch.

use paco_core::metrics;

/// One step of an edit script transforming sequence `a` into sequence `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// The symbol is common to both sequences (part of the LCS).
    Keep(u32),
    /// The symbol occurs in `a` only and is deleted.
    Delete(u32),
    /// The symbol occurs in `b` only and is inserted.
    Insert(u32),
}

/// Number of `Keep` ops — the LCS length the script certifies.
pub fn lcs_of_script(script: &[EditOp]) -> u32 {
    script
        .iter()
        .filter(|op| matches!(op, EditOp::Keep(_)))
        .count() as u32
}

/// Replay a script against `a`, producing the sequence it encodes (`b` for a
/// valid script).  Panics if the script's `Keep`/`Delete` ops do not match
/// `a` symbol-for-symbol — the replay is a validity check, not just a decode.
pub fn replay(script: &[EditOp], a: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut ai = a.iter();
    for op in script {
        match *op {
            EditOp::Keep(c) => {
                assert_eq!(ai.next(), Some(&c), "Keep op disagrees with `a`");
                out.push(c);
            }
            EditOp::Delete(c) => {
                assert_eq!(ai.next(), Some(&c), "Delete op disagrees with `a`");
            }
            EditOp::Insert(c) => out.push(c),
        }
    }
    assert!(
        ai.next().is_none(),
        "script leaves a tail of `a` unconsumed"
    );
    out
}

/// Last row of the LCS DP table of `a` vs `b` (forward orientation), i.e.
/// `row[j] = LCS(a, b[..j])`.  Two-row iterative sweep, `|a|·|b|` cells.
fn last_row(a: &[u32], b: &[u32], cells: &mut u64) -> Vec<u32> {
    let m = b.len();
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for &ac in a {
        for j in 1..=m {
            cur[j] = if ac == b[j - 1] {
                prev[j - 1] + 1
            } else {
                cur[j - 1].max(prev[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    *cells += (a.len() * m) as u64;
    prev
}

fn hirschberg_rec(a: &[u32], b: &[u32], script: &mut Vec<EditOp>, cells: &mut u64) {
    if a.is_empty() {
        script.extend(b.iter().map(|&c| EditOp::Insert(c)));
        return;
    }
    if b.is_empty() {
        script.extend(a.iter().map(|&c| EditOp::Delete(c)));
        return;
    }
    if a.len() == 1 {
        // One row: keep the first match of a[0] in b, insert everything else.
        let c = a[0];
        match b.iter().position(|&x| x == c) {
            Some(k) => {
                script.extend(b[..k].iter().map(|&x| EditOp::Insert(x)));
                script.push(EditOp::Keep(c));
                script.extend(b[k + 1..].iter().map(|&x| EditOp::Insert(x)));
            }
            None => {
                script.push(EditOp::Delete(c));
                script.extend(b.iter().map(|&x| EditOp::Insert(x)));
            }
        }
        *cells += b.len() as u64;
        return;
    }

    let mid = a.len() / 2;
    let fwd = last_row(&a[..mid], b, cells);
    let rev_a: Vec<u32> = a[mid..].iter().rev().copied().collect();
    let rev_b: Vec<u32> = b.iter().rev().copied().collect();
    let bwd = last_row(&rev_a, &rev_b, cells);
    // Split b where forward + mirrored-backward is maximal.
    let m = b.len();
    let split = (0..=m).max_by_key(|&k| fwd[k] + bwd[m - k]).unwrap_or(0);
    hirschberg_rec(&a[..mid], &b[..split], script, cells);
    hirschberg_rec(&a[mid..], &b[split..], script, cells);
}

/// Recover an LCS edit script of `a` vs `b` in linear space.
///
/// The returned script [`replay`]s `a` into `b` and its [`lcs_of_script`]
/// equals the exact LCS length.  Records one `incr/trace-*` metrics sample
/// (DP cells evaluated, script bytes produced).
pub fn hirschberg(a: &[u32], b: &[u32]) -> Vec<EditOp> {
    let mut script = Vec::with_capacity(a.len().max(b.len()));
    let mut cells = 0u64;
    hirschberg_rec(a, b, &mut script, &mut cells);
    metrics::incr::record_trace(cells, (script.len() * std::mem::size_of::<EditOp>()) as u64);
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::lcs_reference;
    use paco_core::workload::{random_sequence, related_sequences};

    fn check(a: &[u32], b: &[u32]) {
        let script = hirschberg(a, b);
        assert_eq!(replay(&script, a), b, "script must replay a into b");
        assert_eq!(
            lcs_of_script(&script),
            lcs_reference(a, b),
            "Keep count must equal the exact LCS length"
        );
    }

    #[test]
    fn related_and_independent_sequences_roundtrip() {
        let (a, b) = related_sequences(257, 4, 0.3, 21); // non-power-of-two
        check(&a, &b);
        let a = random_sequence(100, 6, 1);
        let b = random_sequence(83, 6, 2);
        check(&a, &b);
    }

    #[test]
    fn degenerate_shapes() {
        check(&[], &[]);
        check(&[1, 2, 3], &[]);
        check(&[], &[4, 5]);
        check(&[7], &[7]);
        check(&[7], &[8]);
        check(&[1, 2, 3], &[1, 2, 3]); // identical
        check(&[1, 1, 1], &[1, 1]); // repeated symbols
    }

    #[test]
    fn traceback_costs_at_most_twice_the_plain_dp() {
        let (a, b) = related_sequences(300, 4, 0.2, 5);
        let before = paco_core::metrics::incr::snapshot();
        let _ = hirschberg(&a, &b);
        let delta = paco_core::metrics::incr::snapshot().since(&before);
        assert_eq!(delta.trace_runs, 1);
        let plain = (a.len() * b.len()) as u64;
        assert!(
            delta.trace_cells <= 2 * plain + (a.len() + b.len()) as u64,
            "cells {} vs plain {plain}",
            delta.trace_cells
        );
        assert!(delta.trace_bytes > 0);
    }
}
