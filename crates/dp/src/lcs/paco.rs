//! The PACO LCS algorithm (Theorem 2): execution phase.
//!
//! The plan produced by [`super::partition::plan_paco_lcs`] assigns every
//! sub-region to a processor and arranges the regions into waves of mutually
//! independent work.  Execution walks the waves in order ("anti-diagonal by
//! anti-diagonal along a time line", Fig. 3); inside a wave every region runs
//! concurrently on its pre-assigned processor and is computed by the sequential
//! cache-oblivious kernel of Lemma 1.  There is no work stealing and no
//! global synchronisation other than the wave boundary.
//!
//! Two entry points:
//!
//! * [`lcs_paco`] — native parallel execution on a [`WorkerPool`].
//! * [`lcs_paco_traced`] — the identical schedule replayed (sequentially,
//!   processor by processor within each wave) through the ideal distributed
//!   cache simulator, which yields the paper's `Q^Σ_p` / `Q^max_p` for the
//!   Table I experiments.

use super::kernel::{co_block, LcsAddr, LcsTable, DEFAULT_BASE};
use super::partition::{plan_paco_lcs, PacoLcsPlan};
use paco_cache_sim::{DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::machine::CacheParams;
use paco_runtime::WorkerPool;

/// PACO LCS on `pool.p()` processors with the default partition base size.
pub fn lcs_paco(a: &[u32], b: &[u32], pool: &WorkerPool) -> u32 {
    lcs_paco_with_base(a, b, pool, DEFAULT_BASE)
}

/// PACO LCS with an explicit base-case side for the partitioning and kernel.
pub fn lcs_paco_with_base(a: &[u32], b: &[u32], pool: &WorkerPool, base: usize) -> u32 {
    let plan = plan_paco_lcs(a.len(), b.len(), pool.p(), base);
    execute_plan(a, b, &plan, pool, base)
}

/// Execute a pre-computed plan (exposed so benches can separate partitioning
/// overheads from execution time, as the paper's accounting does).
pub fn execute_plan(
    a: &[u32],
    b: &[u32],
    plan: &PacoLcsPlan,
    pool: &WorkerPool,
    base: usize,
) -> u32 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    assert!(
        plan.p <= pool.p(),
        "plan targets {} processors but the pool has {}",
        plan.p,
        pool.p()
    );
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);

    for wave in &plan.waves {
        pool.scope(|s| {
            for &idx in wave {
                let region = &plan.regions[idx];
                let rows = region.rows.clone();
                let cols = region.cols.clone();
                let table = &table;
                let addr = &addr;
                s.spawn_on(region.proc, move || {
                    co_block(table, a, b, rows, cols, base, &mut NullTracker, addr);
                });
            }
        });
    }
    table.lcs_length()
}

/// PACO LCS replayed through the ideal distributed cache simulator: the same
/// plan, the same kernel, but each region's accesses are charged to the private
/// cache of its assigned processor, with a task-boundary flush before each
/// region (the paper's accounting convention).
pub fn lcs_paco_traced(
    a: &[u32],
    b: &[u32],
    p: usize,
    params: CacheParams,
    base: usize,
) -> (u32, DistCacheSim) {
    let n = a.len();
    let m = b.len();
    let plan = plan_paco_lcs(n, m, p, base);
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);
    let mut tracker = SimTracker::new(p, params);
    for wave in &plan.waves {
        for &idx in wave {
            let region = &plan.regions[idx];
            tracker.set_proc(region.proc);
            tracker.task_boundary();
            co_block(
                &table,
                a,
                b,
                region.rows.clone(),
                region.cols.clone(),
                base,
                &mut tracker,
                &addr,
            );
        }
    }
    (table.lcs_length(), tracker.into_sim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::kernel::{lcs_reference, lcs_sequential_traced};
    use paco_core::workload::{random_sequence, related_sequences};

    #[test]
    fn matches_reference_for_various_p_and_sizes() {
        for &(n, m) in &[(64usize, 64usize), (200, 150), (257, 257), (400, 90)] {
            let a = random_sequence(n, 4, n as u64 * 3);
            let b = random_sequence(m, 4, m as u64 * 7 + 1);
            let expect = lcs_reference(&a, &b);
            for p in [1usize, 2, 3, 5, 7] {
                let pool = WorkerPool::new(p);
                assert_eq!(
                    lcs_paco_with_base(&a, &b, &pool, 16),
                    expect,
                    "n={n} m={m} p={p}"
                );
            }
        }
    }

    #[test]
    fn related_sequences_large_instance() {
        let (a, b) = related_sequences(1000, 8, 0.15, 77);
        let pool = WorkerPool::new(4);
        assert_eq!(lcs_paco(&a, &b, &pool), lcs_reference(&a, &b));
    }

    #[test]
    fn empty_inputs() {
        let pool = WorkerPool::new(4);
        assert_eq!(lcs_paco(&[], &[1, 2, 3], &pool), 0);
        assert_eq!(lcs_paco(&[1], &[], &pool), 0);
    }

    #[test]
    fn traced_matches_reference_and_balances_misses() {
        let n = 512;
        let (a, b) = related_sequences(n, 4, 0.2, 5);
        let expect = lcs_reference(&a, &b);
        let params = CacheParams::new(1024, 8);
        for p in [2usize, 3, 5] {
            let (len, sim) = lcs_paco_traced(&a, &b, p, params, 16);
            assert_eq!(len, expect, "p={p}");
            assert!(sim.q_sum() > 0);
            // Balanced communication: no processor takes more than ~2x the mean.
            assert!(
                sim.q_imbalance() < 2.0,
                "p={p}: miss imbalance {}",
                sim.q_imbalance()
            );
        }
    }

    #[test]
    fn overall_misses_stay_close_to_sequential_optimum() {
        // Q^Σ_p of PACO should stay within a modest factor of Q₁ (the additive
        // O(p·n·log(pZ)/L) term), far from p·Q₁.
        let n = 512;
        let (a, b) = related_sequences(n, 4, 0.25, 13);
        let params = CacheParams::new(2048, 8);
        let (_, seq) = lcs_sequential_traced(&a, &b, 16, params);
        let q1 = seq.q_sum() as f64;
        let p = 4;
        let (_, par) = lcs_paco_traced(&a, &b, p, params, 16);
        let qp = par.q_sum() as f64;
        assert!(
            qp >= 0.9 * q1,
            "parallel total misses cannot beat Q1 by much"
        );
        assert!(
            qp < 3.0 * q1,
            "Q^Σ_p = {qp} should stay well below p·Q₁ = {}",
            p as f64 * q1
        );
    }
}
