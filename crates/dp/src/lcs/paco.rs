//! The PACO LCS algorithm (Theorem 2): execution phase.
//!
//! [`super::partition::plan_paco_lcs`] assigns every sub-region to a processor
//! and lowers the wavefront ("anti-diagonal by anti-diagonal along a time
//! line", Fig. 3) into the runtime's wave-based
//! [`Plan`] IR.  Execution is entirely generic:
//! one pool barrier per wave, every region computed by the sequential
//! cache-oblivious kernel of Lemma 1 on its pre-assigned processor.  Because a
//! plan step carries the region *index* (plain data, not a boxed closure),
//! both executors below invoke [`co_block`] with a concrete tracker type — the
//! native path is fully monomorphized over [`NullTracker`] and pays zero
//! virtual-dispatch overhead, the same `LeafCall` discipline as `paco-graph`.
//!
//! Entry points:
//!
//! * [`LcsRun`] — the prepared instance (plan + shared state) the service
//!   layer's `Session` schedules; everything else is sugar over it.  The
//!   schedule skeleton is workload-independent — it depends only on
//!   `(n, m, p, base)` — so [`LcsRun::from_plan`] binds fresh inputs to a
//!   shared, possibly cached [`PacoLcsPlan`] without re-partitioning.
//! * [`lcs_paco_traced`] — the identical plan replayed sequentially through
//!   the ideal distributed cache simulator, which yields the paper's
//!   `Q^Σ_p` / `Q^max_p` for the Table I experiments.

use std::sync::Arc;

use super::kernel::{co_block, LcsAddr, LcsTable};
use super::partition::{plan_paco_lcs, PacoLcsPlan};
use paco_cache_sim::{DistCacheSim, NullTracker, SimTracker, Tracker};
use paco_core::arena::ScratchArena;
use paco_core::machine::CacheParams;
use paco_core::proc_list::ProcId;
use paco_runtime::schedule::Plan;
use paco_runtime::WorkerPool;

/// A prepared PACO LCS instance: the compiled wave plan plus the shared state
/// (DP table, inputs) its steps interpret.  This is the unit the service
/// layer's `Session` schedules — alone, in homogeneous batches, or mixed with
/// other workloads.
pub struct LcsRun {
    a: Vec<u32>,
    b: Vec<u32>,
    compiled: Arc<PacoLcsPlan>,
    table: LcsTable,
    addr: LcsAddr,
    base: usize,
    /// Pool the table storage returns to at finish (`from_plan_in` runs only).
    arena: Option<Arc<ScratchArena>>,
}

impl LcsRun {
    /// Partition an instance for `p` processors with base-case side `base`.
    pub fn prepare(a: Vec<u32>, b: Vec<u32>, p: usize, base: usize) -> Self {
        let compiled = Arc::new(plan_paco_lcs(a.len(), b.len(), p.max(1), base));
        Self::from_plan(a, b, compiled, base)
    }

    /// Bind inputs to an already-compiled (typically cached) plan.  The plan
    /// must have been produced by [`plan_paco_lcs`] for exactly
    /// `(a.len(), b.len())` and the same `base`.
    pub fn from_plan(a: Vec<u32>, b: Vec<u32>, compiled: Arc<PacoLcsPlan>, base: usize) -> Self {
        let (n, m) = (a.len(), b.len());
        Self {
            table: LcsTable::new(n, m),
            addr: LcsAddr::new(n, m),
            a,
            b,
            compiled,
            base,
            arena: None,
        }
    }

    /// As [`LcsRun::from_plan`], but checking the `(n+1) × (m+1)` table
    /// storage out of `arena`; the whole table returns to the pool at
    /// [`LcsRun::finish`] (the output is just the LCS length).
    pub fn from_plan_in(
        a: Vec<u32>,
        b: Vec<u32>,
        compiled: Arc<PacoLcsPlan>,
        base: usize,
        arena: Arc<ScratchArena>,
    ) -> Self {
        let (n, m) = (a.len(), b.len());
        let storage = arena.take_vec((n + 1) * (m + 1), 0u32);
        Self {
            table: LcsTable::with_storage(n, m, storage),
            addr: LcsAddr::new(n, m),
            a,
            b,
            compiled,
            base,
            arena: Some(arena),
        }
    }

    /// The compiled wave schedule (jobs are region indices).
    pub fn plan(&self) -> &Plan<usize> {
        &self.compiled.plan
    }

    /// Compute region `idx` with the sequential cache-oblivious kernel.
    pub fn step(&self, _proc: ProcId, idx: &usize) {
        let region = &self.compiled.regions[*idx];
        co_block(
            &self.table,
            &self.a,
            &self.b,
            region.rows.clone(),
            region.cols.clone(),
            self.base,
            &mut NullTracker,
            &self.addr,
        );
    }

    /// The LCS table being filled.  The distributed backend packs and
    /// unpacks halo rows/columns straight off this table on each rank.
    pub fn table(&self) -> &LcsTable {
        &self.table
    }

    /// Read the LCS length off the completed table; the table storage goes
    /// back to the arena when the run was built with [`LcsRun::from_plan_in`].
    pub fn finish(self) -> u32 {
        let len = if self.a.is_empty() || self.b.is_empty() {
            0
        } else {
            self.table.lcs_length()
        };
        if let Some(arena) = &self.arena {
            arena.put_vec(self.table.into_storage());
        }
        len
    }
}

/// Execute a pre-computed plan (exposed so benches can separate partitioning
/// overheads from execution time, as the paper's accounting does).
pub fn execute_plan(
    a: &[u32],
    b: &[u32],
    plan: &PacoLcsPlan,
    pool: &WorkerPool,
    base: usize,
) -> u32 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);
    plan.plan.execute(pool, |_, &idx| {
        let region = &plan.regions[idx];
        co_block(
            &table,
            a,
            b,
            region.rows.clone(),
            region.cols.clone(),
            base,
            &mut NullTracker,
            &addr,
        );
    });
    table.lcs_length()
}

/// PACO LCS replayed through the ideal distributed cache simulator: the same
/// plan, the same kernel, but each region's accesses are charged to the private
/// cache of its assigned processor, with a task-boundary flush before each
/// region (the paper's accounting convention).
pub fn lcs_paco_traced(
    a: &[u32],
    b: &[u32],
    p: usize,
    params: CacheParams,
    base: usize,
) -> (u32, DistCacheSim) {
    let n = a.len();
    let m = b.len();
    let plan = plan_paco_lcs(n, m, p, base);
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);
    let mut tracker = SimTracker::new(p, params);
    plan.plan.for_each(|_, proc, &idx| {
        let region = &plan.regions[idx];
        tracker.set_proc(proc);
        tracker.task_boundary();
        co_block(
            &table,
            a,
            b,
            region.rows.clone(),
            region.cols.clone(),
            base,
            &mut tracker,
            &addr,
        );
    });
    (table.lcs_length(), tracker.into_sim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::kernel::{lcs_reference, lcs_sequential_traced};
    use paco_core::workload::{random_sequence, related_sequences};

    /// Prepare-and-run helper standing in for the removed pool-threading
    /// wrappers; real callers go through `paco_service::Session`.
    fn run_paco(a: &[u32], b: &[u32], pool: &WorkerPool, base: usize) -> u32 {
        let run = LcsRun::prepare(a.to_vec(), b.to_vec(), pool.p(), base);
        run.plan().execute(pool, |proc, idx| run.step(proc, idx));
        run.finish()
    }

    #[test]
    fn matches_reference_for_various_p_and_sizes() {
        for &(n, m) in &[(64usize, 64usize), (200, 150), (257, 257), (400, 90)] {
            let a = random_sequence(n, 4, n as u64 * 3);
            let b = random_sequence(m, 4, m as u64 * 7 + 1);
            let expect = lcs_reference(&a, &b);
            for p in [1usize, 2, 3, 5, 7] {
                let pool = WorkerPool::new(p);
                assert_eq!(run_paco(&a, &b, &pool, 16), expect, "n={n} m={m} p={p}");
            }
        }
    }

    #[test]
    fn related_sequences_large_instance() {
        let (a, b) = related_sequences(1000, 8, 0.15, 77);
        let pool = WorkerPool::new(4);
        assert_eq!(
            run_paco(&a, &b, &pool, crate::lcs::kernel::DEFAULT_BASE),
            lcs_reference(&a, &b)
        );
    }

    #[test]
    fn empty_inputs() {
        let pool = WorkerPool::new(4);
        assert_eq!(run_paco(&[], &[1, 2, 3], &pool, 64), 0);
        assert_eq!(run_paco(&[1], &[], &pool, 64), 0);
    }

    #[test]
    fn bound_runs_share_one_compiled_plan() {
        // The skeleton depends only on (n, m, p, base): binding two different
        // inputs to one Arc'd plan must give the same answers as fresh
        // prepares.
        let pool = WorkerPool::new(3);
        let compiled = Arc::new(plan_paco_lcs(120, 90, pool.p(), 16));
        for seed in 0..3u64 {
            let a = random_sequence(120, 4, seed);
            let b = random_sequence(90, 4, 100 + seed);
            let run = LcsRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 16);
            run.plan().execute(&pool, |proc, idx| run.step(proc, idx));
            assert_eq!(run.finish(), lcs_reference(&a, &b), "seed={seed}");
        }
    }

    #[test]
    fn batch_matches_individual_runs_and_shares_barriers() {
        let pool = WorkerPool::new(3);
        let inputs: Vec<(Vec<u32>, Vec<u32>)> = (0..6)
            .map(|i| {
                (
                    random_sequence(40 + 17 * i, 4, i as u64),
                    random_sequence(60 + 11 * i, 4, 100 + i as u64),
                )
            })
            .collect();
        let expect: Vec<u32> = inputs.iter().map(|(a, b)| lcs_reference(a, b)).collect();
        let runs: Vec<LcsRun> = inputs
            .iter()
            .map(|(a, b)| LcsRun::prepare(a.clone(), b.clone(), pool.p(), 16))
            .collect();
        let plan_refs: Vec<&Plan<usize>> = runs.iter().map(|r| r.plan()).collect();
        let batched = Plan::batch_refs(&plan_refs);
        batched.execute(&pool, |proc, &(inst, idx)| runs[inst].step(proc, &idx));
        let got: Vec<u32> = runs.into_iter().map(LcsRun::finish).collect();
        assert_eq!(got, expect);

        // Barrier sharing: the batched plan is as deep as the deepest
        // constituent, not as deep as all of them stacked.
        let plans: Vec<_> = inputs
            .iter()
            .map(|(a, b)| plan_paco_lcs(a.len(), b.len(), pool.p(), 16).plan)
            .collect();
        let sum: usize = plans.iter().map(|p| p.barriers()).sum();
        let max = plans.iter().map(|p| p.barriers()).max().unwrap();
        let batched = paco_runtime::schedule::Plan::batch(plans);
        assert_eq!(batched.barriers(), max);
        assert!(batched.barriers() < sum);
    }

    #[test]
    fn traced_matches_reference_and_balances_misses() {
        let n = 512;
        let (a, b) = related_sequences(n, 4, 0.2, 5);
        let expect = lcs_reference(&a, &b);
        let params = CacheParams::new(1024, 8);
        for p in [2usize, 3, 5] {
            let (len, sim) = lcs_paco_traced(&a, &b, p, params, 16);
            assert_eq!(len, expect, "p={p}");
            assert!(sim.q_sum() > 0);
            // Balanced communication: no processor takes more than ~2x the mean.
            assert!(
                sim.q_imbalance() < 2.0,
                "p={p}: miss imbalance {}",
                sim.q_imbalance()
            );
        }
    }

    #[test]
    fn overall_misses_stay_close_to_sequential_optimum() {
        // Q^Σ_p of PACO should stay within a modest factor of Q₁ (the additive
        // O(p·n·log(pZ)/L) term), far from p·Q₁.
        let n = 512;
        let (a, b) = related_sequences(n, 4, 0.25, 13);
        let params = CacheParams::new(2048, 8);
        let (_, seq) = lcs_sequential_traced(&a, &b, 16, params);
        let q1 = seq.q_sum() as f64;
        let p = 4;
        let (_, par) = lcs_paco_traced(&a, &b, p, params, 16);
        let qp = par.q_sum() as f64;
        assert!(
            qp >= 0.9 * q1,
            "parallel total misses cannot beat Q1 by much"
        );
        assert!(
            qp < 3.0 * q1,
            "Q^Σ_p = {qp} should stay well below p·Q₁ = {}",
            p as f64 * q1
        );
    }
}
