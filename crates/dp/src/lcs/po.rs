//! Processor-oblivious LCS baseline.
//!
//! The classic recursive 2-way divide-and-conquer LCS (CLRS / Chowdhury &
//! Ramachandran): split the table into four quadrants; the top-left quadrant is
//! computed first, then the top-right and bottom-left quadrants in parallel,
//! then the bottom-right quadrant.  The recursion exposes `Θ(n^{log₂3})`
//! critical-path length and is scheduled by a randomized work stealer (rayon,
//! standing in for Cilk), i.e. it uses no knowledge of the processor count —
//! exactly the "PO" competitor of the paper's Fig. 12a, with the same
//! tunable base-case size (the paper used 256).

use super::kernel::{base_block, LcsAddr, LcsTable};
use paco_cache_sim::NullTracker;
use std::ops::Range;

/// Processor-oblivious parallel LCS: rayon-scheduled quadrant recursion.
///
/// `base` is the side length below which a quadrant is computed directly
/// (the paper's PO experiments use 256).
pub fn lcs_po(a: &[u32], b: &[u32], base: usize) -> u32 {
    assert!(base >= 1);
    let table = LcsTable::new(a.len(), b.len());
    let addr = LcsAddr::new(a.len(), b.len());
    if !a.is_empty() && !b.is_empty() {
        quadrant(&table, a, b, 1..a.len() + 1, 1..b.len() + 1, base, &addr);
    }
    table.lcs_length()
}

fn quadrant(
    table: &LcsTable,
    a: &[u32],
    b: &[u32],
    rows: Range<usize>,
    cols: Range<usize>,
    base: usize,
    addr: &LcsAddr,
) {
    let nr = rows.len();
    let nc = cols.len();
    if nr == 0 || nc == 0 {
        return;
    }
    if nr <= base && nc <= base {
        base_block(table, a, b, rows, cols, &mut NullTracker, addr);
        return;
    }
    if nr <= base {
        // Only the columns are long: the left half must finish before the right.
        let cmid = cols.start + nc / 2;
        quadrant(table, a, b, rows.clone(), cols.start..cmid, base, addr);
        quadrant(table, a, b, rows, cmid..cols.end, base, addr);
        return;
    }
    if nc <= base {
        let rmid = rows.start + nr / 2;
        quadrant(table, a, b, rows.start..rmid, cols.clone(), base, addr);
        quadrant(table, a, b, rmid..rows.end, cols, base, addr);
        return;
    }
    let rmid = rows.start + nr / 2;
    let cmid = cols.start + nc / 2;
    // X00
    quadrant(table, a, b, rows.start..rmid, cols.start..cmid, base, addr);
    // X01 and X10 are independent of each other.
    rayon::join(
        || quadrant(table, a, b, rows.start..rmid, cmid..cols.end, base, addr),
        || quadrant(table, a, b, rmid..rows.end, cols.start..cmid, base, addr),
    );
    // X11
    quadrant(table, a, b, rmid..rows.end, cmid..cols.end, base, addr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::kernel::lcs_reference;
    use paco_core::workload::{random_sequence, related_sequences};

    #[test]
    fn matches_reference_on_random_inputs() {
        for &(n, m) in &[
            (1usize, 1usize),
            (33, 57),
            (128, 128),
            (200, 311),
            (513, 257),
        ] {
            let a = random_sequence(n, 4, n as u64);
            let b = random_sequence(m, 4, 1000 + m as u64);
            assert_eq!(lcs_po(&a, &b, 32), lcs_reference(&a, &b), "n={n} m={m}");
        }
    }

    #[test]
    fn base_case_larger_than_input_degenerates_to_sequential() {
        let (a, b) = related_sequences(100, 4, 0.3, 3);
        assert_eq!(lcs_po(&a, &b, 1024), lcs_reference(&a, &b));
    }

    #[test]
    fn tiny_base_case_still_correct() {
        let (a, b) = related_sequences(150, 4, 0.1, 4);
        assert_eq!(lcs_po(&a, &b, 2), lcs_reference(&a, &b));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(lcs_po(&[], &[1, 2], 16), 0);
        assert_eq!(lcs_po(&[1, 2], &[], 16), 0);
    }
}
