//! Processor-aware LCS baseline (Chowdhury & Ramachandran, D-CMP model).
//!
//! The PA competitor of the paper's Fig. 12a: make a single `p × p` division of
//! the table at the top level, then compute each of the `p²` blocks with the
//! sequential cache-oblivious kernel, sweeping the block grid anti-diagonal by
//! anti-diagonal with block `(bi, bj)` running on processor `bi`.  Its
//! critical-path length is `(2p − 1)·(n/p)² ≈ 2n²/p`, the factor-2 constant the
//! PACO algorithm removes.

use super::kernel::{co_block, LcsAddr, LcsTable, DEFAULT_BASE};
use paco_cache_sim::{NullTracker, SimTracker, Tracker};
use paco_core::machine::CacheParams;
use paco_core::proc_list::ProcList;
use paco_runtime::schedule::{Plan, Step};
use paco_runtime::WorkerPool;
use std::ops::Range;

/// The `p × p` block decomposition used by the PA algorithm: block boundaries
/// of an even top-level p-way division of `len` cells (1-based table ranges).
fn block_bounds(len: usize, parts: usize, idx: usize) -> Range<usize> {
    let lo = idx * len / parts;
    let hi = (idx + 1) * len / parts;
    lo + 1..hi + 1
}

/// The PA wavefront as a plan: one wave per block anti-diagonal, block
/// `(bi, bj)` placed on processor `bi mod p` (the D-CMP ownership rule), jobs
/// carrying the block's 1-based table ranges.
fn plan_pa(n: usize, m: usize, p: usize) -> Plan<(Range<usize>, Range<usize>)> {
    let parts = p.min(n).min(m).max(1);
    let mut waves = Vec::with_capacity(2 * parts - 1);
    for diag in 0..(2 * parts - 1) {
        let mut wave = Vec::new();
        for bi in 0..parts.min(diag + 1) {
            let bj = diag - bi;
            if bj >= parts {
                continue;
            }
            wave.push(Step {
                proc: bi % p,
                job: (block_bounds(n, parts, bi), block_bounds(m, parts, bj)),
            });
        }
        waves.push(wave);
    }
    Plan::from_waves(p, waves)
}

/// Processor-aware LCS on `pool.p()` processors: top-level `p × p` division,
/// block-anti-diagonal wavefront, sequential cache-oblivious kernel per block.
pub fn lcs_pa(a: &[u32], b: &[u32], pool: &WorkerPool) -> u32 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);
    let plan = plan_pa(n, m, pool.p());
    plan.execute(pool, |_, (rows, cols)| {
        co_block(
            &table,
            a,
            b,
            rows.clone(),
            cols.clone(),
            DEFAULT_BASE,
            &mut NullTracker,
            &addr,
        );
    });
    table.lcs_length()
}

/// The same PA schedule replayed (sequentially) through the ideal distributed
/// cache simulator; returns the LCS length and the simulator with per-processor
/// miss counts.
pub fn lcs_pa_traced(
    a: &[u32],
    b: &[u32],
    p: usize,
    params: CacheParams,
) -> (u32, paco_cache_sim::DistCacheSim) {
    assert!(p >= 1);
    let n = a.len();
    let m = b.len();
    let table = LcsTable::new(n, m);
    let addr = LcsAddr::new(n, m);
    let mut tracker = SimTracker::new(p, params);
    if n == 0 || m == 0 {
        return (0, tracker.into_sim());
    }
    let parts = p.min(n).min(m).max(1);
    let procs = ProcList::all(p);
    for diag in 0..(2 * parts - 1) {
        for bi in 0..parts {
            if diag < bi {
                continue;
            }
            let bj = diag - bi;
            if bj >= parts {
                continue;
            }
            let rows = block_bounds(n, parts, bi);
            let cols = block_bounds(m, parts, bj);
            tracker.set_proc(procs.round_robin(bi));
            tracker.task_boundary();
            co_block(&table, a, b, rows, cols, DEFAULT_BASE, &mut tracker, &addr);
        }
    }
    (table.lcs_length(), tracker.into_sim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::kernel::lcs_reference;
    use paco_core::workload::random_sequence;

    #[test]
    fn matches_reference_for_various_p() {
        let a = random_sequence(257, 4, 21);
        let b = random_sequence(310, 4, 22);
        let expect = lcs_reference(&a, &b);
        for p in [1usize, 2, 3, 5, 8] {
            let pool = WorkerPool::new(p);
            assert_eq!(lcs_pa(&a, &b, &pool), expect, "p={p}");
        }
    }

    #[test]
    fn handles_inputs_shorter_than_p() {
        let pool = WorkerPool::new(8);
        let a = random_sequence(5, 4, 1);
        let b = random_sequence(3, 4, 2);
        assert_eq!(lcs_pa(&a, &b, &pool), lcs_reference(&a, &b));
        assert_eq!(lcs_pa(&[], &b, &pool), 0);
    }

    #[test]
    fn traced_matches_and_spreads_misses() {
        let a = random_sequence(256, 4, 31);
        let b = random_sequence(256, 4, 32);
        let params = CacheParams::new(512, 8);
        let (len, sim) = lcs_pa_traced(&a, &b, 4, params);
        assert_eq!(len, lcs_reference(&a, &b));
        // Every processor participates.
        for proc in 0..4 {
            assert!(sim.misses().get(proc) > 0, "proc {proc} did no work");
        }
        // The block-row ownership keeps misses roughly balanced.
        assert!(sim.q_imbalance() < 2.0, "imbalance {}", sim.q_imbalance());
    }
}
