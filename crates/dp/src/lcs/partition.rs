//! The PACO LCS partitioning phase (Sect. III-B, Fig. 3).
//!
//! The paper's algorithm runs in two phases.  The *partitioning* phase
//! recursively divides the `n × n` DP region into square sub-regions so that
//! the wavefront execution always has at least `p` mutually independent
//! sub-regions available:
//!
//! * all unassigned sub-regions are divided level by level (each division
//!   splits a square into its four quadrants, halving the side);
//! * as soon as an *anti-diagonal* of same-level sub-regions contains at least
//!   `p` of them, that anti-diagonal is assigned to the `p` processors
//!   round-robin and takes no further part in the division;
//! * anti-diagonals whose sub-regions have shrunk to base-case size are
//!   assigned round-robin regardless of their count.
//!
//! The effect (Fig. 3): the central anti-diagonal band is covered by the
//! largest blocks (side ≈ n/p), and blocks shrink geometrically towards the
//! corners, so every processor's regions form a geometrically decreasing
//! sequence of areas — the invariant all of the paper's bounds rest on.
//!
//! One reading note: the paper's text assigns "p of them" from a qualifying
//! anti-diagonal.  We assign *all* sub-regions of a qualifying anti-diagonal
//! (still round-robin), which keeps the tiling uniform inside each band; the
//! distribution is at least as balanced (each processor receives ⌊c/p⌋ or
//! ⌈c/p⌉ equal-size regions from a band of c ≥ p regions), so every bound in
//! Theorem 2 is preserved.
//!
//! The *execution* phase (in [`super::paco`]) runs the regions wave by wave; a
//! wave is a set of regions whose mutual dependencies are already satisfied, so
//! all of a wave runs concurrently, each region on its pre-assigned processor,
//! computed by the sequential cache-oblivious kernel.

use paco_core::proc_list::{ProcId, ProcList};
use paco_runtime::schedule::{Plan, Step};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// One square sub-region of the DP table produced by the partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Division level (0 = whole table, side halves per level).
    pub level: u32,
    /// Block-row index at `level`.
    pub bi: usize,
    /// Block-column index at `level`.
    pub bj: usize,
    /// Processor this region is assigned to.
    pub proc: ProcId,
    /// Rows of the DP table covered (1-based, half-open).
    pub rows: Range<usize>,
    /// Columns of the DP table covered (1-based, half-open).
    pub cols: Range<usize>,
}

impl Region {
    /// Area of the region in cells.
    pub fn area(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Half-perimeter (the region's working-set proxy).
    pub fn half_perimeter(&self) -> usize {
        self.rows.len() + self.cols.len()
    }
}

/// The complete PACO LCS execution plan: the assigned regions plus the
/// wavefront schedule, lowered to the runtime's wave-based [`Plan`] IR.
///
/// `regions` is kept in *assignment* (round-robin) order — the order the
/// paper's geometric-decrease invariant is stated in — while `plan` holds the
/// executable schedule whose step jobs are indices into `regions` (plain data,
/// so both the native and the traced executor call the kernel with a concrete
/// tracker type).
#[derive(Debug, Clone)]
pub struct PacoLcsPlan {
    /// All assigned regions, in assignment order.
    pub regions: Vec<Region>,
    /// The executable wavefront schedule; each step's job is an index into
    /// [`PacoLcsPlan::regions`].
    pub plan: Plan<usize>,
}

/// 1-based row (or column) range of block `b` out of `2^level` blocks over `len`
/// cells.  Integer arithmetic keeps parent/child boundaries nested exactly.
fn block_range(len: usize, level: u32, b: usize) -> Range<usize> {
    let parts = 1usize << level;
    let lo = b * len / parts;
    let hi = (b + 1) * len / parts;
    lo + 1..hi + 1
}

/// Build the PACO partitioning plan for an `n × m` table on `p` processors with
/// base-case side `base`.
pub fn plan_paco_lcs(n: usize, m: usize, p: usize, base: usize) -> PacoLcsPlan {
    assert!(p >= 1);
    assert!(base >= 1);
    if n == 0 || m == 0 {
        return PacoLcsPlan {
            regions: Vec::new(),
            plan: Plan::empty(p),
        };
    }

    // ---- Phase 1: divide-and-assign over the virtual square grid. ----
    #[derive(Clone, Copy)]
    struct Sq {
        bi: usize,
        bj: usize,
    }
    let procs = ProcList::all(p);
    let mut regions: Vec<Region> = Vec::new();
    let mut unassigned = vec![Sq { bi: 0, bj: 0 }];
    let mut level: u32 = 0;
    let mut rr = 0usize;

    loop {
        // Group the current level's unassigned squares by anti-diagonal.
        let mut groups: BTreeMap<usize, Vec<Sq>> = BTreeMap::new();
        for sq in &unassigned {
            groups.entry(sq.bi + sq.bj).or_default().push(*sq);
        }
        // A square at this level is "base-case" when either dimension of its
        // cell range has shrunk to `base` or fewer cells.
        let side_rows = n >> level.min(63);
        let side_cols = m >> level.min(63);
        let is_base = side_rows <= base || side_cols <= base;

        let mut next_unassigned: Vec<Sq> = Vec::new();
        for (_diag, mut sqs) in groups {
            if sqs.len() >= p || is_base {
                sqs.sort_by_key(|s| s.bi);
                for sq in sqs {
                    let rows = block_range(n, level, sq.bi);
                    let cols = block_range(m, level, sq.bj);
                    if rows.is_empty() || cols.is_empty() {
                        continue; // degenerate slice of a small table
                    }
                    regions.push(Region {
                        level,
                        bi: sq.bi,
                        bj: sq.bj,
                        proc: procs.round_robin(rr),
                        rows,
                        cols,
                    });
                    rr += 1;
                }
            } else {
                next_unassigned.extend(sqs);
            }
        }
        if next_unassigned.is_empty() {
            break;
        }
        // Divide every remaining square into its four children.
        unassigned = next_unassigned
            .into_iter()
            .flat_map(|sq| {
                [
                    Sq {
                        bi: 2 * sq.bi,
                        bj: 2 * sq.bj,
                    },
                    Sq {
                        bi: 2 * sq.bi,
                        bj: 2 * sq.bj + 1,
                    },
                    Sq {
                        bi: 2 * sq.bi + 1,
                        bj: 2 * sq.bj,
                    },
                    Sq {
                        bi: 2 * sq.bi + 1,
                        bj: 2 * sq.bj + 1,
                    },
                ]
            })
            .collect();
        level += 1;
    }

    // ---- Phase 2: wavefront schedule (dependency depth layering). ----
    let waves = build_waves(&regions);
    let plan = Plan::from_waves(
        p,
        waves
            .into_iter()
            .map(|wave| {
                wave.into_iter()
                    .map(|idx| Step {
                        proc: regions[idx].proc,
                        job: idx,
                    })
                    .collect()
            })
            .collect(),
    );

    PacoLcsPlan { regions, plan }
}

/// Compute the wavefront schedule: wave `w` contains the regions whose longest
/// dependency chain has length `w`.  Regions in the same wave are mutually
/// independent, and every dependency of a wave-`w` region lives in an earlier
/// wave.
fn build_waves(regions: &[Region]) -> Vec<Vec<usize>> {
    let r = regions.len();
    // Index regions by the table row where they start / end, to find adjacency
    // without quadratic search.
    let mut by_row_end: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut by_col_end: HashMap<usize, Vec<usize>> = HashMap::new();
    for (idx, reg) in regions.iter().enumerate() {
        by_row_end.entry(reg.rows.end).or_default().push(idx);
        by_col_end.entry(reg.cols.end).or_default().push(idx);
    }

    // deps[a] = regions that must finish before a starts.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); r];
    for (idx, reg) in regions.iter().enumerate() {
        // Regions ending directly above `reg` (their last row is reg's first
        // row) whose column span touches reg's columns, including the corner
        // neighbour needed by the diagonal term of the recurrence.
        if let Some(cands) = by_row_end.get(&reg.rows.start) {
            for &c in cands {
                let other = &regions[c];
                if other.cols.start < reg.cols.end && other.cols.end >= reg.cols.start {
                    deps[idx].push(c);
                }
            }
        }
        // Regions ending directly to the left of `reg`.
        if let Some(cands) = by_col_end.get(&reg.cols.start) {
            for &c in cands {
                let other = &regions[c];
                if other.rows.start < reg.rows.end && other.rows.end >= reg.rows.start {
                    deps[idx].push(c);
                }
            }
        }
    }

    // Kahn's algorithm computing the longest-path depth of every region.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); r];
    let mut indegree = vec![0usize; r];
    for (idx, ds) in deps.iter().enumerate() {
        indegree[idx] = ds.len();
        for &d in ds {
            dependents[d].push(idx);
        }
    }
    let mut depth = vec![0usize; r];
    let mut queue: Vec<usize> = (0..r).filter(|&i| indegree[i] == 0).collect();
    let mut processed = 0usize;
    while let Some(idx) = queue.pop() {
        processed += 1;
        for &succ in &dependents[idx] {
            depth[succ] = depth[succ].max(depth[idx] + 1);
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                queue.push(succ);
            }
        }
    }
    assert_eq!(processed, r, "dependency cycle in LCS partitioning (bug)");

    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
    for (idx, &d) in depth.iter().enumerate() {
        waves[d].push(idx);
    }
    waves
}

impl PacoLcsPlan {
    /// Number of processors the plan targets.
    pub fn p(&self) -> usize {
        self.plan.p()
    }

    /// Number of pool barriers executing the plan will issue (= waves).
    pub fn barriers(&self) -> usize {
        self.plan.barriers()
    }

    /// Total area covered by the plan's regions (must equal `n · m`).
    pub fn total_area(&self) -> usize {
        self.regions.iter().map(|r| r.area()).sum()
    }

    /// Per-processor total area (the plan's computational load distribution).
    pub fn area_per_proc(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.p()];
        for r in &self.regions {
            out[r.proc] += r.area();
        }
        out
    }

    /// `max/mean` load imbalance of the plan.
    pub fn imbalance(&self) -> f64 {
        let areas = self.area_per_proc();
        let total: usize = areas.iter().sum();
        let max = areas.iter().copied().max().unwrap_or(0);
        if total == 0 {
            1.0
        } else {
            max as f64 / (total as f64 / self.p() as f64)
        }
    }

    /// True if every processor's region areas, in assignment order, are
    /// non-increasing up to a factor-of-two slack (the paper's "almost
    /// geometrically decreasing" invariant).
    pub fn per_proc_geometric(&self) -> bool {
        let mut per_proc: Vec<Vec<usize>> = vec![Vec::new(); self.p()];
        for r in &self.regions {
            per_proc[r.proc].push(r.area());
        }
        per_proc
            .iter()
            .all(|areas| areas.windows(2).all(|w| w[1] <= 2 * w[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn plan_tiles_the_whole_table_exactly() {
        for &(n, m, p) in &[
            (64usize, 64usize, 4usize),
            (100, 100, 3),
            (257, 129, 5),
            (128, 128, 7),
        ] {
            let plan = plan_paco_lcs(n, m, p, 8);
            assert_eq!(plan.total_area(), n * m, "n={n} m={m} p={p}");
            // No two regions overlap: check by sampling cells.
            let mut covered = HashSet::new();
            for (idx, r) in plan.regions.iter().enumerate() {
                for i in r.rows.clone() {
                    for j in r.cols.clone() {
                        assert!(
                            covered.insert((i, j)),
                            "cell ({i},{j}) covered twice (region {idx})"
                        );
                    }
                }
            }
            assert_eq!(covered.len(), n * m);
        }
    }

    #[test]
    fn central_band_gets_the_largest_regions() {
        let n = 256;
        let p = 4;
        let plan = plan_paco_lcs(n, n, p, 8);
        let max_area = plan.regions.iter().map(|r| r.area()).max().unwrap();
        // The largest regions are (n/4)² (level 2 for p=4) and they sit on the
        // main anti-diagonal of the 4x4 grid.
        assert_eq!(max_area, (n / 4) * (n / 4));
        let big: Vec<_> = plan
            .regions
            .iter()
            .filter(|r| r.area() == max_area)
            .collect();
        assert_eq!(big.len(), 4);
        assert!(big.iter().all(|r| r.bi + r.bj == 3));
    }

    #[test]
    fn load_is_balanced_even_for_prime_p() {
        for &p in &[3usize, 5, 7, 11, 13] {
            let plan = plan_paco_lcs(512, 512, p, 16);
            let imb = plan.imbalance();
            assert!(imb < 1.35, "p={p}: imbalance {imb}");
        }
    }

    #[test]
    fn per_processor_regions_decrease_geometrically() {
        let plan = plan_paco_lcs(512, 512, 4, 8);
        assert!(plan.per_proc_geometric());
    }

    #[test]
    fn waves_respect_dependencies() {
        let plan = plan_paco_lcs(128, 128, 3, 8);
        // Map region index -> wave.
        let mut wave_of = vec![usize::MAX; plan.regions.len()];
        for (w, wave) in plan.plan.waves().iter().enumerate() {
            for step in wave {
                wave_of[step.job] = w;
            }
        }
        assert!(
            wave_of.iter().all(|&w| w != usize::MAX),
            "every region scheduled"
        );
        // For every pair of adjacent regions (above / left), the dependency is in
        // an earlier wave.
        for (ia, a) in plan.regions.iter().enumerate() {
            for (ib, b) in plan.regions.iter().enumerate() {
                if ia == ib {
                    continue;
                }
                let above = b.rows.end == a.rows.start
                    && b.cols.start < a.cols.end
                    && b.cols.end >= a.cols.start;
                let left = b.cols.end == a.cols.start
                    && b.rows.start < a.rows.end
                    && b.rows.end >= a.rows.start;
                if above || left {
                    assert!(
                        wave_of[ib] < wave_of[ia],
                        "region {ib} must precede {ia} but waves are {} and {}",
                        wave_of[ib],
                        wave_of[ia]
                    );
                }
            }
        }
        // Regions within one wave are pairwise independent: no region's rows
        // start exactly where another wave-mate's rows end while their column
        // spans touch (and symmetrically for columns) — that adjacency is
        // precisely the data dependency of the recurrence.
        for wave in plan.plan.waves() {
            for sx in wave {
                for sy in wave {
                    let (x, y) = (sx.job, sy.job);
                    if x == y {
                        continue;
                    }
                    let a = &plan.regions[x];
                    let b = &plan.regions[y];
                    let depends_on = |from: &Region, on: &Region| {
                        let above = on.rows.end == from.rows.start
                            && on.cols.start < from.cols.end
                            && on.cols.end >= from.cols.start;
                        let left = on.cols.end == from.cols.start
                            && on.rows.start < from.rows.end
                            && on.rows.end >= from.rows.start;
                        above || left
                    };
                    assert!(
                        !depends_on(a, b) && !depends_on(b, a),
                        "regions {x} and {y} share a wave but depend on each other"
                    );
                }
            }
        }
    }

    #[test]
    fn single_processor_plan_is_one_region_per_band() {
        let plan = plan_paco_lcs(64, 64, 1, 64);
        // With p=1 every anti-diagonal qualifies immediately at level 0.
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.barriers(), 1);
    }

    #[test]
    fn empty_inputs_produce_empty_plan() {
        let plan = plan_paco_lcs(0, 100, 4, 16);
        assert!(plan.regions.is_empty());
        assert_eq!(plan.barriers(), 0);
    }

    #[test]
    fn base_case_cap_limits_region_count() {
        let fine = plan_paco_lcs(256, 256, 4, 4);
        let coarse = plan_paco_lcs(256, 256, 4, 64);
        assert!(coarse.regions.len() < fine.regions.len());
    }
}
