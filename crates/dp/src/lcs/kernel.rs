//! Sequential LCS kernels (Lemma 1).
//!
//! The PACO, PA and PO algorithms all delegate the actual cell computation to
//! the same sequential kernel — the paper's experimental methodology requires
//! every competitor to call identical leaf code so that only the partitioning
//! differs.  The kernel computes a rectangular *block* of the LCS dynamic
//! programming table from the recurrence (1):
//!
//! ```text
//! X[i][j] = 0                                  if i = 0 or j = 0
//!         = X[i-1][j-1] + 1                    if a[i-1] == b[j-1]
//!         = max(X[i][j-1], X[i-1][j])          otherwise
//! ```
//!
//! [`co_block`] evaluates a block with the cache-oblivious 2-way
//! divide-and-conquer of Chowdhury & Ramachandran (recursing on the longer
//! dimension until a small base case, then sweeping row-major), which incurs
//! `O(b_r·b_c/(LZ) + (b_r+b_c)/L)` misses per block.  The kernels are generic
//! over [`Tracker`] so the exact same code path can be replayed through the
//! ideal distributed cache simulator.
//!
//! This reproduction stores the full `(n+1)×(m+1)` table (the paper's CO-LCS
//! computes only the length and uses linear space; keeping the table makes the
//! partitioning experiments and the correctness tests much more direct and does
//! not change any of the compared quantities, since every variant pays for the
//! same table).

use crate::shared::SharedGrid;
use paco_cache_sim::layout::{AddressSpace, Layout1D, Layout2D};
use paco_cache_sim::Tracker;
use paco_core::metrics::sched::kernel as kernel_metrics;
use std::ops::Range;

/// Default base-case side of the cache-oblivious recursion (an alias of the
/// hoisted workspace default in [`paco_core::tuning`]).
pub const DEFAULT_BASE: usize = paco_core::tuning::LCS_BASE;

/// Simulated-address-space placement of the LCS working set (table + both
/// input sequences); used only when replaying a kernel through the cache
/// simulator.
#[derive(Debug, Clone, Copy)]
pub struct LcsAddr {
    /// The `(n+1) × (m+1)` DP table.
    pub table: Layout2D,
    /// First input sequence (length n).
    pub a: Layout1D,
    /// Second input sequence (length m).
    pub b: Layout1D,
}

impl LcsAddr {
    /// Lay out the working set for sequences of length `n` and `m`.
    pub fn new(n: usize, m: usize) -> Self {
        let mut space = AddressSpace::new();
        let table = space.alloc_2d(n + 1, m + 1);
        let a = space.alloc_1d(n.max(1));
        let b = space.alloc_1d(m.max(1));
        Self { table, a, b }
    }
}

/// The LCS dynamic-programming table: `(n+1) × (m+1)` cells with the zero
/// boundary in row 0 and column 0.
pub struct LcsTable {
    grid: SharedGrid<u32>,
    n: usize,
    m: usize,
}

impl LcsTable {
    /// An all-zero table for sequences of length `n` and `m`.
    pub fn new(n: usize, m: usize) -> Self {
        Self {
            grid: SharedGrid::new(n + 1, m + 1, 0),
            n,
            m,
        }
    }

    /// A table over caller-provided storage (e.g. a pooled buffer); `v` must
    /// hold `(n + 1) * (m + 1)` zeros.
    pub fn with_storage(n: usize, m: usize, v: Vec<u32>) -> Self {
        debug_assert!(v.iter().all(|&x| x == 0), "table storage must be zeroed");
        Self {
            grid: SharedGrid::from_vec(n + 1, m + 1, v),
            n,
            m,
        }
    }

    /// Consume the table, returning its row-major storage (the inverse of
    /// [`LcsTable::with_storage`]) so it can go back to a pool.
    pub fn into_storage(self) -> Vec<u32> {
        self.grid.into_vec()
    }

    /// Length of the first sequence.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Length of the second sequence.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The shared cell grid.
    pub fn grid(&self) -> &SharedGrid<u32> {
        &self.grid
    }

    /// The LCS length once the table has been filled.
    pub fn lcs_length(&self) -> u32 {
        self.grid.get(self.n, self.m)
    }
}

/// Reference implementation: the classic two-row iterative DP.
/// `O(n·m)` time, `O(m)` space.  Ground truth for every other variant.
pub fn lcs_reference(a: &[u32], b: &[u32]) -> u32 {
    let m = b.len();
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for &ai in a {
        for (j, &bj) in b.iter().enumerate() {
            cur[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Fill the table cells in `rows × cols` (1-based table coordinates) with a
/// plain row-major sweep.  Requires row `rows.start - 1` and column
/// `cols.start - 1` to be final.
///
/// When nothing observes the per-cell accesses (`T::TRACKING` is false, i.e.
/// the production `NullTracker`), the sweep runs `base_block_fast` — a
/// row-sliced, branch-free form of the same recurrence with bit-identical
/// results (see its docs for the argument).
#[inline]
pub fn base_block<T: Tracker>(
    table: &LcsTable,
    a: &[u32],
    b: &[u32],
    rows: Range<usize>,
    cols: Range<usize>,
    tracker: &mut T,
    addr: &LcsAddr,
) {
    if !T::TRACKING && !rows.is_empty() && !cols.is_empty() {
        base_block_fast(table, a, b, rows, cols);
        kernel_metrics::record_lcs_leaf(true);
        return;
    }
    let grid = &table.grid;
    for i in rows {
        let ai = a[i - 1];
        tracker.read(addr.a.addr(i - 1));
        for j in cols.clone() {
            tracker.read(addr.b.addr(j - 1));
            let val = if ai == b[j - 1] {
                tracker.read(addr.table.addr(i - 1, j - 1));
                grid.get(i - 1, j - 1) + 1
            } else {
                tracker.read(addr.table.addr(i - 1, j));
                tracker.read(addr.table.addr(i, j - 1));
                grid.get(i - 1, j).max(grid.get(i, j - 1))
            };
            grid.set(i, j, val);
            tracker.write(addr.table.addr(i, j));
        }
    }
    kernel_metrics::record_lcs_leaf(false);
}

/// Branch-free row-sliced form of the [`base_block`] sweep.
///
/// Per cell it computes `max(up, left, diag + [a_i == b_j])` over row slices
/// instead of branching on the match.  This is *bit-identical* to the branchy
/// recurrence: adjacent LCS table cells differ by at most 1, so
/// `diag <= up <= diag + 1` and `diag <= left <= diag + 1`; on a match the
/// three-way max is exactly `diag + 1`, and on a mismatch the `diag` term can
/// never exceed `max(up, left)`.  (`tests/kernel_agreement.rs` cross-checks
/// against the tracked branchy sweep.)
fn base_block_fast(table: &LcsTable, a: &[u32], b: &[u32], rows: Range<usize>, cols: Range<usize>) {
    let grid = &table.grid;
    let len = cols.len();
    let bs = &b[cols.start - 1..cols.end - 1];
    for i in rows {
        let ai = a[i - 1];
        // SAFETY: rows of the grid are contiguous and both slices are in
        // bounds (`cols.end <= m + 1`); `prev` covers row `i - 1`, which is
        // final by the kernel's contract (the boundary row for
        // `i == rows.start`, the row this loop just wrote otherwise), while
        // `cur` covers the disjoint row `i` this task owns exclusively under
        // the wavefront discipline — the boundary cell `(i, cols.start - 1)`
        // is read into `left` and deliberately left outside the mut slice.
        let prev = unsafe {
            std::slice::from_raw_parts(grid.cell_ptr(i - 1, cols.start - 1).cast_const(), len + 1)
        };
        let cur = unsafe { std::slice::from_raw_parts_mut(grid.cell_ptr(i, cols.start), len) };
        // Two passes so the expensive part vectorizes.  Pass 1 has no
        // loop-carried dependency: `cur[j] = max(up, diag + [a_i == b_j])`
        // is 8 lanes of compare/add/max per AVX2 vector.  Pass 2 folds in
        // the `left` neighbour as a running prefix max — the serial chain —
        // but is down to one `max` and one store per cell.  The composition
        // computes exactly `max(up, left, diag + eq)` cell by cell, because
        // the prefix max over pass-1 values equals the branchy recurrence's
        // `left` (max is associative and every cell's final value is the
        // prefix max of its own pass-1 value and all pass-1 values to its
        // left, seeded with the boundary cell).
        for (jj, (cj, &bj)) in cur.iter_mut().zip(bs).enumerate() {
            *cj = prev[jj + 1].max(prev[jj] + u32::from(ai == bj));
        }
        let mut left = grid.get(i, cols.start - 1);
        for cj in cur.iter_mut() {
            left = left.max(*cj);
            *cj = left;
        }
    }
}

/// Cache-oblivious evaluation of the block `rows × cols` (1-based table
/// coordinates): recursively halve the longer dimension until both sides are at
/// most `base`, then sweep.  The first half of a split is evaluated before the
/// second, which keeps every intra-block dependency satisfied.
#[allow(clippy::too_many_arguments)] // mirrors the paper's COP-LCS signature
pub fn co_block<T: Tracker>(
    table: &LcsTable,
    a: &[u32],
    b: &[u32],
    rows: Range<usize>,
    cols: Range<usize>,
    base: usize,
    tracker: &mut T,
    addr: &LcsAddr,
) {
    let nr = rows.len();
    let nc = cols.len();
    if nr == 0 || nc == 0 {
        return;
    }
    if nr <= base && nc <= base {
        base_block(table, a, b, rows, cols, tracker, addr);
        return;
    }
    if nr >= nc {
        let mid = rows.start + nr / 2;
        co_block(
            table,
            a,
            b,
            rows.start..mid,
            cols.clone(),
            base,
            tracker,
            addr,
        );
        co_block(table, a, b, mid..rows.end, cols, base, tracker, addr);
    } else {
        let mid = cols.start + nc / 2;
        co_block(
            table,
            a,
            b,
            rows.clone(),
            cols.start..mid,
            base,
            tracker,
            addr,
        );
        co_block(table, a, b, rows, mid..cols.end, base, tracker, addr);
    }
}

/// Sequential cache-oblivious LCS (the paper's `CO-LCS`, Lemma 1): evaluates
/// the whole table with [`co_block`] and returns the LCS length.
pub fn lcs_sequential_co(a: &[u32], b: &[u32], base: usize) -> u32 {
    let table = LcsTable::new(a.len(), b.len());
    let addr = LcsAddr::new(a.len(), b.len());
    co_block(
        &table,
        a,
        b,
        1..a.len() + 1,
        1..b.len() + 1,
        base,
        &mut paco_cache_sim::NullTracker,
        &addr,
    );
    table.lcs_length()
}

/// Sequential cache-oblivious LCS replayed through the ideal cache simulator:
/// returns the LCS length and the simulator holding `Q₁` (all accesses are
/// charged to processor 0).
pub fn lcs_sequential_traced(
    a: &[u32],
    b: &[u32],
    base: usize,
    params: paco_core::machine::CacheParams,
) -> (u32, paco_cache_sim::DistCacheSim) {
    let table = LcsTable::new(a.len(), b.len());
    let addr = LcsAddr::new(a.len(), b.len());
    let mut tracker = paco_cache_sim::SimTracker::new(1, params);
    co_block(
        &table,
        a,
        b,
        1..a.len() + 1,
        1..b.len() + 1,
        base,
        &mut tracker,
        &addr,
    );
    (table.lcs_length(), tracker.into_sim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_cache_sim::NullTracker;
    use paco_core::machine::CacheParams;
    use paco_core::workload::{random_sequence, related_sequences};

    #[test]
    fn reference_on_known_instances() {
        // "ABCBDAB" vs "BDCABA" -> LCS "BCBA" of length 4 (CLRS example).
        let a: Vec<u32> = "ABCBDAB".bytes().map(u32::from).collect();
        let b: Vec<u32> = "BDCABA".bytes().map(u32::from).collect();
        assert_eq!(lcs_reference(&a, &b), 4);
        assert_eq!(lcs_reference(&[], &[1, 2, 3]), 0);
        assert_eq!(lcs_reference(&[1, 2, 3], &[]), 0);
        assert_eq!(lcs_reference(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(lcs_reference(&[1, 2, 3], &[4, 5, 6]), 0);
    }

    #[test]
    fn co_kernel_matches_reference_on_random_inputs() {
        for &(n, m, base) in &[
            (1usize, 1usize, 4usize),
            (7, 13, 4),
            (64, 64, 16),
            (100, 57, 8),
            (129, 200, 32),
        ] {
            let a = random_sequence(n, 4, 100 + n as u64);
            let b = random_sequence(m, 4, 200 + m as u64);
            assert_eq!(
                lcs_sequential_co(&a, &b, base),
                lcs_reference(&a, &b),
                "n={n} m={m} base={base}"
            );
        }
    }

    #[test]
    fn co_kernel_on_related_sequences() {
        let (a, b) = related_sequences(300, 4, 0.2, 9);
        assert_eq!(lcs_sequential_co(&a, &b, 32), lcs_reference(&a, &b));
    }

    #[test]
    fn base_block_fills_partial_regions() {
        // Fill the table in two block steps and check against the monolithic run.
        let a = random_sequence(40, 4, 1);
        let b = random_sequence(40, 4, 2);
        let addr = LcsAddr::new(40, 40);
        let t1 = LcsTable::new(40, 40);
        base_block(&t1, &a, &b, 1..41, 1..21, &mut NullTracker, &addr);
        base_block(&t1, &a, &b, 1..41, 21..41, &mut NullTracker, &addr);
        assert_eq!(t1.lcs_length(), lcs_reference(&a, &b));
    }

    #[test]
    fn traced_kernel_matches_and_counts_misses() {
        let a = random_sequence(128, 4, 5);
        let b = random_sequence(128, 4, 6);
        let params = CacheParams::new(512, 8);
        let (len, sim) = lcs_sequential_traced(&a, &b, 16, params);
        assert_eq!(len, lcs_reference(&a, &b));
        let q1 = sim.q_sum();
        assert!(q1 > 0);
        // The table alone is 129*129 ≈ 16.6k words = ~2080 lines; every line must
        // be written at least once, and the cache holds only 64 lines, so the
        // miss count must be at least the compulsory misses.
        assert!(q1 >= 2000, "q1 = {q1}");
        // And it must be far below the naive one-miss-per-access bound.
        assert!(q1 < sim.accesses().total() / 2, "q1 = {q1}");
    }

    #[test]
    fn co_recursion_is_cache_friendlier_than_row_major_when_rows_are_long() {
        // For a tall-and-wide table with a tiny cache, the cache-oblivious
        // recursion should not be (much) worse than the straight row-major sweep
        // and is typically better; check it is within a small factor.
        let n = 256;
        let a = random_sequence(n, 4, 11);
        let b = random_sequence(n, 4, 12);
        let params = CacheParams::new(256, 8);

        let (_, sim_co) = lcs_sequential_traced(&a, &b, 16, params);

        // Row-major sweep = a single huge "base block".
        let table = LcsTable::new(n, n);
        let addr = LcsAddr::new(n, n);
        let mut tracker = paco_cache_sim::SimTracker::new(1, params);
        base_block(&table, &a, &b, 1..n + 1, 1..n + 1, &mut tracker, &addr);
        let sim_row = tracker.into_sim();

        assert_eq!(table.lcs_length(), lcs_reference(&a, &b));
        assert!(
            (sim_co.q_sum() as f64) < 1.5 * sim_row.q_sum() as f64,
            "CO {} vs row-major {}",
            sim_co.q_sum(),
            sim_row.q_sum()
        );
    }
}
