//! Parallel GAP variants: processor-oblivious (rayon) and PACO (Theorem 7).
//!
//! Both variants run the same block-wavefront kernel as
//! [`super::gap_blocked`]; they differ only in how the blocks of one
//! anti-diagonal are mapped to processors — which is exactly the comparison the
//! paper makes.

use super::{block_bounds, gap_block, GapCost};
use crate::shared::SharedGrid;
use paco_core::arena::ScratchArena;
use paco_core::proc_list::ProcList;
use paco_runtime::schedule::{Plan, Step};
use rayon::prelude::*;
use std::sync::Arc;

/// Processor-oblivious parallel GAP: the blocks of each anti-diagonal are
/// handed to rayon's work-stealing scheduler with no processor assignment.
/// `blocks` controls the tile grid (the PO competitor must pick this blindly;
/// the paper's PO GAP uses a recursive decomposition with a tuned base case).
pub fn gap_po<C: GapCost>(n: usize, costs: &C, blocks: usize) -> Vec<f64> {
    let blocks = blocks.clamp(1, n + 1);
    let d = SharedGrid::new(n + 1, n + 1, f64::INFINITY);
    d.set(0, 0, 0.0);
    for diag in 0..(2 * blocks - 1) {
        let tiles: Vec<(usize, usize)> = (0..blocks)
            .filter_map(|bi| {
                let bj = diag.checked_sub(bi)?;
                (bj < blocks).then_some((bi, bj))
            })
            .collect();
        tiles.par_iter().for_each(|&(bi, bj)| {
            let (r0, r1) = block_bounds(n + 1, blocks, bi);
            let (c0, c1) = block_bounds(n + 1, blocks, bj);
            gap_block(&d, r0, r1, c0, c1, costs);
        });
    }
    d.snapshot()
}

/// Compile the GAP block wavefront for an `(n+1) × (n+1)` table on `p`
/// processors into a plan: one wave per tile anti-diagonal, tiles assigned
/// round-robin within their diagonal (the Theorem 7 placement).  Jobs are
/// `(block_row, block_col)` tile coordinates.
pub fn plan_gap(n: usize, p: usize, blocks: usize) -> Plan<(usize, usize)> {
    let blocks = blocks.clamp(1, n + 1);
    let procs = ProcList::all(p);
    let mut waves = Vec::with_capacity(2 * blocks - 1);
    for diag in 0..(2 * blocks - 1) {
        let mut wave = Vec::new();
        for bi in 0..blocks {
            let Some(bj) = diag.checked_sub(bi) else {
                continue;
            };
            if bj >= blocks {
                continue;
            }
            wave.push(Step {
                proc: procs.round_robin(wave.len()),
                job: (bi, bj),
            });
        }
        waves.push(wave);
    }
    Plan::from_waves(p, waves)
}

/// A prepared PACO GAP instance: the block-wavefront plan plus the shared
/// table its tile jobs fill.  This is the unit the service layer's `Session`
/// schedules — alone, in batches, or mixed with other workloads.  The plan
/// depends only on `(n, p, blocks)`, so [`GapRun::from_plan`] can bind fresh
/// costs to a shared, possibly cached schedule.
pub struct GapRun<C> {
    costs: C,
    d: SharedGrid<f64>,
    plan: Arc<Plan<(usize, usize)>>,
    n: usize,
    blocks: usize,
}

impl<C: GapCost> GapRun<C> {
    /// As [`GapRun::from_plan`], but checking the table storage out of
    /// `arena` instead of allocating fresh.  The filled table *is* the
    /// output, so nothing returns to the pool at finish — the checkout still
    /// reuses buffers other runs (1D temps, earlier tables) put back.
    pub fn from_plan_in(
        n: usize,
        costs: C,
        plan: Arc<Plan<(usize, usize)>>,
        blocks: usize,
        arena: &ScratchArena,
    ) -> Self {
        let blocks = blocks.clamp(1, n + 1);
        let d = SharedGrid::from_vec(
            n + 1,
            n + 1,
            arena.take_vec((n + 1) * (n + 1), f64::INFINITY),
        );
        d.set(0, 0, 0.0);
        Self {
            costs,
            d,
            plan,
            n,
            blocks,
        }
    }
}

impl<C: GapCost> GapRun<C> {
    /// Compile an instance for `p` processors with an explicit tile-grid side
    /// (clamped to `[1, n + 1]`).
    pub fn prepare(n: usize, costs: C, p: usize, blocks: usize) -> Self {
        let blocks = blocks.clamp(1, n + 1);
        Self::from_plan(n, costs, Arc::new(plan_gap(n, p, blocks)), blocks)
    }

    /// Bind an instance to an already-compiled (typically cached) plan.  The
    /// plan must have been produced by [`plan_gap`] for exactly this `n` and
    /// the same (clamped) `blocks`.
    pub fn from_plan(n: usize, costs: C, plan: Arc<Plan<(usize, usize)>>, blocks: usize) -> Self {
        let blocks = blocks.clamp(1, n + 1);
        let d = SharedGrid::new(n + 1, n + 1, f64::INFINITY);
        d.set(0, 0, 0.0);
        Self {
            costs,
            d,
            plan,
            n,
            blocks,
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<(usize, usize)> {
        &self.plan
    }

    /// Fill tile `(bi, bj)` of the table.
    pub fn step(&self, _proc: paco_core::proc_list::ProcId, &(bi, bj): &(usize, usize)) {
        let (r0, r1) = block_bounds(self.n + 1, self.blocks, bi);
        let (c0, c1) = block_bounds(self.n + 1, self.blocks, bj);
        gap_block(&self.d, r0, r1, c0, c1, &self.costs);
    }

    /// Read the completed table in row-major order (the table's own
    /// storage, no copy).
    pub fn finish(self) -> Vec<f64> {
        self.d.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::gap_reference;
    use paco_core::workload::GapCosts;
    use paco_runtime::WorkerPool;

    /// Prepare-and-run helpers standing in for the removed pool-threading
    /// wrappers; real callers go through `paco_service::Session`.
    fn gap_paco<C: GapCost + Clone>(n: usize, costs: &C, pool: &WorkerPool) -> Vec<f64> {
        let blocks = paco_core::tuning::Tuning::default().gap_grid(pool.p());
        gap_paco_with_blocks(n, costs, pool, blocks)
    }

    fn gap_paco_with_blocks<C: GapCost + Clone>(
        n: usize,
        costs: &C,
        pool: &WorkerPool,
        blocks: usize,
    ) -> Vec<f64> {
        let run = GapRun::prepare(n, costs.clone(), pool.p(), blocks);
        run.plan().execute(pool, |proc, job| run.step(proc, job));
        run.finish()
    }

    fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (idx, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{ctx}: mismatch at {idx}");
        }
    }

    #[test]
    fn po_matches_reference() {
        let costs = GapCosts::default();
        for &n in &[3usize, 20, 65, 100] {
            let expect = gap_reference(n, &costs);
            let got = gap_po(n, &costs, 8);
            assert_close(&expect, &got, &format!("n={n}"));
        }
    }

    #[test]
    fn paco_matches_reference_for_various_p() {
        let costs = GapCosts::default();
        let n = 96;
        let expect = gap_reference(n, &costs);
        for p in [1usize, 2, 3, 5, 7] {
            let pool = WorkerPool::new(p);
            let got = gap_paco(n, &costs, &pool);
            assert_close(&expect, &got, &format!("p={p}"));
        }
    }

    #[test]
    fn paco_with_explicit_block_grid() {
        let costs = GapCosts::default();
        let n = 70;
        let expect = gap_reference(n, &costs);
        let pool = WorkerPool::new(3);
        for blocks in [1usize, 2, 5, 16, 128] {
            let got = gap_paco_with_blocks(n, &costs, &pool, blocks);
            assert_close(&expect, &got, &format!("blocks={blocks}"));
        }
    }

    #[test]
    fn tiny_instances() {
        let costs = GapCosts::default();
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 2] {
            let expect = gap_reference(n, &costs);
            assert_close(&expect, &gap_paco(n, &costs, &pool), &format!("n={n}"));
            assert_close(&expect, &gap_po(n, &costs, 4), &format!("po n={n}"));
        }
    }
}
