//! The GAP problem (Sect. III-D of the paper).
//!
//! Given O(1)-computable cost functions `w`, `w'` and `s`, and `D[0][0] = 0`,
//! compute for all `0 ≤ i, j ≤ n`
//!
//! ```text
//! D[i][j] = min( D[i-1][j-1] + s(i, j),
//!                min_{0 ≤ q < j} D[i][q] + w(q, j),
//!                min_{0 ≤ p < i} D[p][j] + w'(p, i) )
//! ```
//!
//! (terms whose index would be negative are skipped).  This is edit distance
//! with general gap penalties; it is the 2D analogue of the 1D problem: every
//! cell depends on the *entire* prefix of its row and of its column, so the
//! total work is `Θ(n³)`.
//!
//! The paper's PACO GAP (Theorem 7) re-partitions only the external-updating
//! cubes: a `n × n × n` cube of work is cut into `p` slabs of disjoint output so
//! all `p` processors update independently.  In this reproduction the
//! computation is organised as a block wavefront over the output table:
//!
//! * [`gap_reference`] — row-major triple loop, ground truth;
//! * [`gap_blocked`] — the same work reorganised into square blocks processed
//!   anti-diagonal by anti-diagonal (better locality; the sequential kernel all
//!   parallel variants share);
//! * [`parallel::gap_po`] — blocks of an anti-diagonal scheduled by rayon
//!   (processor-oblivious);
//! * [`parallel::GapRun`] — PACO: the block grid is sized from `p` and every
//!   block is pre-assigned to a processor (round-robin within its
//!   anti-diagonal), executed on the processor-aware pool; each processor
//!   therefore updates a disjoint output slab of every wavefront step, which
//!   is the shape of the paper's cuboid partitioning.  Run it through
//!   `paco_service::Session` with the `Gap` request.
//!
//! The full Chowdhury–Ramachandran recursive decomposition of GAP (separate
//! self-updating and external-updating functions on sub-cubes) is *not*
//! reproduced; the blocked wavefront performs the identical `Θ(n³)` cell
//! updates and exposes the same output-disjoint parallelism, which is what the
//! partitioning experiments need.  This substitution is recorded in DESIGN.md.

pub mod parallel;

pub use parallel::{gap_po, plan_gap, GapRun};

use crate::shared::SharedGrid;

/// The GAP cost functions; all must be O(1) and memory-free.
pub trait GapCost: Sync {
    /// Substitution cost of aligning `i` with `j`.
    fn s(&self, i: usize, j: usize) -> f64;
    /// Cost of a horizontal gap from column `q` to column `j` (`q < j`).
    fn w(&self, q: usize, j: usize) -> f64;
    /// Cost of a vertical gap from row `p` to row `i` (`p < i`).
    fn w_prime(&self, p: usize, i: usize) -> f64;
}

impl GapCost for paco_core::workload::GapCosts {
    #[inline]
    fn s(&self, i: usize, j: usize) -> f64 {
        paco_core::workload::GapCosts::s(self, i, j)
    }
    #[inline]
    fn w(&self, q: usize, j: usize) -> f64 {
        paco_core::workload::GapCosts::w(self, q, j)
    }
    #[inline]
    fn w_prime(&self, p: usize, i: usize) -> f64 {
        paco_core::workload::GapCosts::w_prime(self, p, i)
    }
}

/// Compute one cell of the GAP table from fully finalised predecessors.
#[inline]
pub(crate) fn gap_cell<C: GapCost>(d: &SharedGrid<f64>, i: usize, j: usize, costs: &C) -> f64 {
    let mut best = f64::INFINITY;
    if i > 0 && j > 0 {
        best = d.get(i - 1, j - 1) + costs.s(i, j);
    }
    if j > 0 {
        for q in 0..j {
            let cand = d.get(i, q) + costs.w(q, j);
            if cand < best {
                best = cand;
            }
        }
    }
    if i > 0 {
        for p in 0..i {
            let cand = d.get(p, j) + costs.w_prime(p, i);
            if cand < best {
                best = cand;
            }
        }
    }
    best
}

/// Fill a rectangular block `[r0, r1) × [c0, c1)` of the table in row-major
/// order.  Requires every cell left of the block (same rows), above the block
/// (same columns) and up-left of it to be final.
pub(crate) fn gap_block<C: GapCost>(
    d: &SharedGrid<f64>,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    costs: &C,
) {
    for i in r0..r1 {
        for j in c0..c1 {
            if i == 0 && j == 0 {
                continue; // D[0][0] is the given boundary value
            }
            d.set(i, j, gap_cell(d, i, j, costs));
        }
    }
}

/// Reference implementation: row-major triple loop over the `(n+1) × (n+1)`
/// table.  Returns the table in row-major order.
pub fn gap_reference<C: GapCost>(n: usize, costs: &C) -> Vec<f64> {
    let d = SharedGrid::new(n + 1, n + 1, f64::INFINITY);
    d.set(0, 0, 0.0);
    gap_block(&d, 0, n + 1, 0, n + 1, costs);
    d.snapshot()
}

/// The block boundaries of a `parts`-way even division of `len` cells.
pub(crate) fn block_bounds(len: usize, parts: usize, idx: usize) -> (usize, usize) {
    (idx * len / parts, (idx + 1) * len / parts)
}

/// Sequential blocked wavefront: identical results to [`gap_reference`], but
/// the table is swept in `blocks × blocks` square tiles processed anti-diagonal
/// by anti-diagonal — the shared kernel of the parallel variants.
pub fn gap_blocked<C: GapCost>(n: usize, costs: &C, blocks: usize) -> Vec<f64> {
    let blocks = blocks.clamp(1, n + 1);
    let d = SharedGrid::new(n + 1, n + 1, f64::INFINITY);
    d.set(0, 0, 0.0);
    for diag in 0..(2 * blocks - 1) {
        for bi in 0..blocks {
            if diag < bi {
                continue;
            }
            let bj = diag - bi;
            if bj >= blocks {
                continue;
            }
            let (r0, r1) = block_bounds(n + 1, blocks, bi);
            let (c0, c1) = block_bounds(n + 1, blocks, bj);
            gap_block(&d, r0, r1, c0, c1, costs);
        }
    }
    d.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::GapCosts;

    fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (idx, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{ctx}: mismatch at {idx}: {x} vs {y}");
        }
    }

    /// A tiny hand-checkable cost model: unit gaps, zero substitutions.
    struct UnitCosts;
    impl GapCost for UnitCosts {
        fn s(&self, _i: usize, _j: usize) -> f64 {
            0.0
        }
        fn w(&self, q: usize, j: usize) -> f64 {
            (j - q) as f64
        }
        fn w_prime(&self, p: usize, i: usize) -> f64 {
            (i - p) as f64
        }
    }

    #[test]
    fn unit_costs_give_zero_diagonal() {
        // With free substitutions the diagonal D[i][i] is always 0, and
        // D[i][j] = |i - j| via a single gap.
        let d = gap_reference(6, &UnitCosts);
        let n1 = 7;
        for i in 0..n1 {
            for j in 0..n1 {
                let expect = (i as f64 - j as f64).abs();
                assert!(
                    (d[i * n1 + j] - expect).abs() < 1e-9,
                    "D[{i}][{j}] = {} expect {expect}",
                    d[i * n1 + j]
                );
            }
        }
    }

    #[test]
    fn blocked_matches_reference() {
        let costs = GapCosts::default();
        for &n in &[1usize, 5, 17, 40, 65] {
            let expect = gap_reference(n, &costs);
            for &blocks in &[1usize, 2, 3, 7, 16] {
                let got = gap_blocked(n, &costs, blocks);
                assert_close(&expect, &got, &format!("n={n} blocks={blocks}"));
            }
        }
    }

    #[test]
    fn boundary_row_and_column_are_pure_gap_costs() {
        let costs = GapCosts {
            open: 1.0,
            extend: 1.0,
            seed: 3,
        };
        let n = 8;
        let d = gap_reference(n, &costs);
        let width = n + 1;
        // D[0][j] is the cheapest way to cover columns 0..j with horizontal gaps.
        // With affine costs one single gap is optimal: 1 + j.
        for j in 1..=n {
            assert!(
                (d[j] - (1.0 + j as f64)).abs() < 1e-9,
                "D[0][{j}] = {}",
                d[j]
            );
            assert!((d[j * width] - (1.0 + j as f64)).abs() < 1e-9);
        }
    }
}
