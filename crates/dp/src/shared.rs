//! Shared-memory wrappers for wavefront dynamic programming.
//!
//! The concrete types now live in [`paco_core::shared`] so that other table
//! algorithms (notably the Floyd–Warshall recursion in `paco-graph`) can use
//! the same documented-unsafe sharing discipline; this module re-exports them
//! under their historical `paco_dp::shared` path.
//!
//! See the module documentation of [`paco_core::shared`] for the safety
//! contract every caller must uphold: disjoint concurrent writes, reads only of
//! cells finished in earlier waves, and a barrier between waves.

pub use paco_core::shared::{SharedGrid, SharedSlice};
