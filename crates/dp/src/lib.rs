//! # paco-dp
//!
//! The dynamic-programming family of the PACO paper:
//!
//! * [`lcs`] — longest common subsequence (Sect. III-B), DP with constant
//!   dependencies.
//! * [`one_d`] — the 1D / least-weight-subsequence problem (Sect. III-C), DP
//!   with a non-constant (full prefix) dependency in one dimension.
//! * [`gap`] — the GAP problem (Sect. III-D), DP with full prefix dependencies
//!   in both dimensions.
//!
//! Every problem ships the paper's full cast: a reference implementation, the
//! sequential cache-oblivious kernel, the processor-oblivious (PO) parallel
//! variant scheduled by randomized work stealing (rayon), the processor-aware
//! (PA) variant where the table lists one, and the PACO variant running on the
//! processor-aware runtime.  Kernels are generic over
//! [`paco_cache_sim::Tracker`] so the exact same code is measured natively and
//! replayed through the ideal distributed cache model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gap;
pub mod lcs;
pub mod one_d;
pub mod shared;
