//! PACO 1D algorithm (Sect. III-C, Fig. 6, Theorem 6).
//!
//! The self-updating triangles are traversed exactly as in the sequential
//! algorithm; only the external-updating squares are partitioned and
//! parallelised:
//!
//! * the square's processor list is split `⌊p/2⌋ : ⌈p/2⌉`;
//! * a cut along the *output* dimension (x) splits the output range in the same
//!   ratio — the two halves share the inputs and write disjoint outputs;
//! * a cut along the *input* dimension (y) splits the input range, allocates a
//!   temporary copy of the output for one half so both halves can run
//!   independently, and merges with a parallel element-wise `min` afterwards
//!   (lines 11–19 of Fig. 6);
//! * the recursion stops when a single processor is left, which then runs the
//!   sequential cache-oblivious square kernel.
//!
//! Execution discipline on the worker pool: the branch whose processor list
//! contains the processor currently executing runs inline; the other branch is
//! spawned onto the first processor of its list.  This realises the
//! processor-list semantics of the pseudo-code without any work stealing and
//! without a task ever waiting on work queued behind it on its own worker.

use super::kernel::{square_update, triangle_co, Weight};
use crate::shared::SharedSlice;
use paco_core::proc_list::{ProcId, ProcList};
use paco_runtime::WorkerPool;
use std::ops::Range;

/// PACO 1D on `pool.p()` processors: returns the full `D[0..=n]` array.
pub fn one_d_paco<W: Weight>(n: usize, w: &W, d0: f64, pool: &WorkerPool, base: usize) -> Vec<f64> {
    let base = base.max(2);
    let d = SharedSlice::new(n + 1, f64::INFINITY);
    d.set(0, d0);
    let procs = ProcList::all(pool.p());
    paco_triangle(pool, procs, &d, 0..n + 1, w, base);
    d.snapshot()
}

/// `COP-1D△`: sequential spine (left triangle, parallel square, right triangle).
fn paco_triangle<W: Weight>(
    pool: &WorkerPool,
    procs: ProcList,
    d: &SharedSlice<f64>,
    range: Range<usize>,
    w: &W,
    base: usize,
) {
    let len = range.len();
    if len <= 1 {
        return;
    }
    if len <= base || procs.len() == 1 {
        triangle_co(d, range, w, base);
        return;
    }
    let mid = range.start + len / 2;
    paco_triangle(pool, procs, d, range.start..mid, w, base);
    paco_square(
        pool,
        None,
        procs,
        d,
        d,
        0,
        range.start..mid,
        mid..range.end,
        w,
        base,
    );
    paco_triangle(pool, procs, d, mid..range.end, w, base);
}

/// `COP-1D□`: the parallel external-updating function of Fig. 6.
#[allow(clippy::too_many_arguments)]
fn paco_square<W: Weight>(
    pool: &WorkerPool,
    cur: Option<ProcId>,
    procs: ProcList,
    src: &SharedSlice<f64>,
    dst: &SharedSlice<f64>,
    dst_off: usize,
    inp: Range<usize>,
    out: Range<usize>,
    w: &W,
    base: usize,
) {
    if inp.is_empty() || out.is_empty() {
        return;
    }
    if procs.len() == 1 {
        let target = procs.only();
        if cur == Some(target) {
            square_update(src, dst, dst_off, inp, out, w, base);
        } else {
            pool.scope(|s| {
                s.spawn_on(target, move || {
                    square_update(src, dst, dst_off, inp, out, w, base);
                });
            });
        }
        return;
    }

    let (p1, p2) = procs.split_even();
    if out.len() >= inp.len() {
        // Cut on x: split the output range in the ratio |P1| : |P2|.
        let split = out.start + out.len() * p1.len() / procs.len();
        let out_left = out.start..split;
        let out_right = split..out.end;
        run_two(
            pool,
            cur,
            p1,
            |c| {
                paco_square(
                    pool,
                    c,
                    p1,
                    src,
                    dst,
                    dst_off,
                    inp.clone(),
                    out_left.clone(),
                    w,
                    base,
                )
            },
            p2,
            |c| {
                paco_square(
                    pool,
                    c,
                    p2,
                    src,
                    dst,
                    dst_off,
                    inp.clone(),
                    out_right.clone(),
                    w,
                    base,
                )
            },
        );
    } else {
        // Cut on y: split the input range; the second half accumulates into a
        // temporary covering the output, merged by a parallel min afterwards.
        let split = inp.start + inp.len() * p1.len() / procs.len();
        let inp_left = inp.start..split;
        let inp_right = split..inp.end;
        let tmp = SharedSlice::new(out.len(), f64::INFINITY);
        {
            let tmp = &tmp;
            run_two(
                pool,
                cur,
                p1,
                |c| {
                    paco_square(
                        pool,
                        c,
                        p1,
                        src,
                        dst,
                        dst_off,
                        inp_left.clone(),
                        out.clone(),
                        w,
                        base,
                    )
                },
                p2,
                |c| {
                    paco_square(
                        pool,
                        c,
                        p2,
                        src,
                        tmp,
                        out.start,
                        inp_right.clone(),
                        out.clone(),
                        w,
                        base,
                    )
                },
            );
        }
        merge_min(pool, cur, procs, dst, dst_off, &tmp, out);
    }
}

/// Run two branches on the two halves of a processor list: the branch owning
/// the current processor runs inline, the other is spawned onto the first
/// processor of its list; both must complete before returning.
fn run_two<F1, F2>(
    pool: &WorkerPool,
    cur: Option<ProcId>,
    p1: ProcList,
    f1: F1,
    p2: ProcList,
    f2: F2,
) where
    F1: FnOnce(Option<ProcId>) + Send,
    F2: FnOnce(Option<ProcId>) + Send,
{
    match cur {
        None => {
            // Called from outside the pool: dispatch both branches.
            pool.scope(|s| {
                s.spawn_on(p1.first(), move || f1(Some(p1.first())));
                s.spawn_on(p2.first(), move || f2(Some(p2.first())));
            });
        }
        Some(c) => {
            debug_assert_eq!(
                c,
                p1.first(),
                "recursion must descend with the current processor leading the left list"
            );
            pool.scope(|s| {
                s.spawn_on(p2.first(), move || f2(Some(p2.first())));
                // Run our own half inline while the other half executes remotely.
                f1(Some(c));
            });
        }
    }
}

/// Parallel element-wise merge `dst[j] = min(dst[j], tmp[j])` over `out`,
/// spread across the processor list (lines 17–18 of Fig. 6).
fn merge_min(
    pool: &WorkerPool,
    cur: Option<ProcId>,
    procs: ProcList,
    dst: &SharedSlice<f64>,
    dst_off: usize,
    tmp: &SharedSlice<f64>,
    out: Range<usize>,
) {
    let p = procs.len();
    let chunk = |k: usize| -> Range<usize> {
        let lo = out.start + k * out.len() / p;
        let hi = out.start + (k + 1) * out.len() / p;
        lo..hi
    };
    let do_chunk = move |r: Range<usize>| {
        for j in r {
            let merged = dst.get(j - dst_off).min(tmp.get(j - out.start));
            dst.set(j - dst_off, merged);
        }
    };
    pool.scope(|s| {
        let mut own: Option<Range<usize>> = None;
        for (k, proc) in procs.ids().enumerate() {
            let r = chunk(k);
            if r.is_empty() {
                continue;
            }
            if cur == Some(proc) {
                own = Some(r);
            } else {
                let do_chunk = &do_chunk;
                s.spawn_on(proc, move || do_chunk(r));
            }
        }
        if let Some(r) = own {
            do_chunk(r);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_d::kernel::{one_d_reference, FnWeight};
    use paco_core::workload::ParagraphWeight;

    fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{ctx}: mismatch at {j}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_for_various_p() {
        let w = ParagraphWeight { ideal: 11.0 };
        let n = 400;
        let expect = one_d_reference(n, &w, 0.0);
        for p in [1usize, 2, 3, 5, 7, 8] {
            let pool = WorkerPool::new(p);
            let got = one_d_paco(n, &w, 0.0, &pool, 16);
            assert_close(&expect, &got, &format!("p={p}"));
        }
    }

    #[test]
    fn small_inputs_and_degenerate_cases() {
        let w = ParagraphWeight { ideal: 2.0 };
        let pool = WorkerPool::new(4);
        assert_close(
            &one_d_reference(0, &w, 1.0),
            &one_d_paco(0, &w, 1.0, &pool, 8),
            "n=0",
        );
        assert_close(
            &one_d_reference(1, &w, 0.0),
            &one_d_paco(1, &w, 0.0, &pool, 8),
            "n=1",
        );
        assert_close(
            &one_d_reference(7, &w, 0.0),
            &one_d_paco(7, &w, 0.0, &pool, 8),
            "n=7",
        );
    }

    #[test]
    fn irregular_weight_function() {
        let w = FnWeight(|i: usize, j: usize| ((i * 31 + j * 17) % 23) as f64 * 0.5);
        let n = 333;
        let expect = one_d_reference(n, &w, 0.0);
        let pool = WorkerPool::new(6);
        let got = one_d_paco(n, &w, 0.0, &pool, 8);
        assert_close(&expect, &got, "irregular");
    }

    #[test]
    fn tiny_base_forces_deep_recursion() {
        let w = ParagraphWeight { ideal: 5.0 };
        let n = 200;
        let expect = one_d_reference(n, &w, 0.0);
        let pool = WorkerPool::new(5);
        let got = one_d_paco(n, &w, 0.0, &pool, 2);
        assert_close(&expect, &got, "base=2");
    }
}
