//! PACO 1D algorithm (Sect. III-C, Fig. 6, Theorem 6).
//!
//! The self-updating triangles are traversed exactly as in the sequential
//! algorithm; only the external-updating squares are partitioned and
//! parallelised:
//!
//! * the square's processor list is split `⌊p/2⌋ : ⌈p/2⌉`;
//! * a cut along the *output* dimension (x) splits the output range in the same
//!   ratio — the two halves share the inputs and write disjoint outputs;
//! * a cut along the *input* dimension (y) splits the input range, allocates a
//!   temporary copy of the output for one half so both halves can run
//!   independently, and merges with a parallel element-wise `min` afterwards
//!   (lines 11–19 of Fig. 6);
//! * the recursion stops when a single processor is left, which then runs the
//!   sequential cache-oblivious square kernel.
//!
//! Since PR 3 the recursion is compiled by [`plan_one_d`] into the runtime's
//! wave-based [`Plan`] IR instead of driving the pool directly: the recursion
//! is replayed symbolically, every leaf becomes a [`OneDJob`] (plain data:
//! ranges plus buffer ids into a temporary arena sized at plan time), and
//! execution issues exactly one pool barrier per wave.  Sequential
//! compositions that stay on one processor (the triangle spine) share waves
//! through the pool's per-worker FIFO, and the processor-list semantics of
//! the pseudo-code are preserved without any work stealing.

use super::kernel::{square_update, triangle_co, Weight};
use crate::shared::SharedSlice;
use paco_core::arena::ScratchArena;
use paco_core::proc_list::ProcList;
use paco_runtime::schedule::{Front, Plan, PlanBuilder};
use std::ops::Range;
use std::sync::Arc;

/// Which array a [`OneDJob`] reads or writes: the main `D` array or one of the
/// temporaries allocated for y-cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buf {
    /// The shared `D[0..=n]` array.
    D,
    /// Temporary `i` of the plan's arena (covers one y-cut's output range).
    Tmp(usize),
}

/// One leaf of the compiled 1D schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OneDJob {
    /// Self-updating triangle over `range` (the sequential CO spine).
    Triangle {
        /// The index range (half-open) the triangle finalises.
        range: Range<usize>,
    },
    /// External update of `out` from the final range `inp`.
    Square {
        /// Source buffer (holds the final inputs).
        src: Buf,
        /// Destination buffer.
        dst: Buf,
        /// Offset translating output indices into `dst`.
        dst_off: usize,
        /// Input range (already final).
        inp: Range<usize>,
        /// Output range.
        out: Range<usize>,
    },
    /// Element-wise `dst[j] = min(dst[j], tmp[j])` over `chunk ⊆ out`
    /// (lines 17–18 of Fig. 6, one chunk per processor).
    MergeMin {
        /// Destination buffer being merged into.
        dst: Buf,
        /// Offset translating output indices into `dst`.
        dst_off: usize,
        /// The temporary holding the other half's contributions.
        tmp: usize,
        /// The full output range the temporary covers.
        out: Range<usize>,
        /// This step's slice of `out`.
        chunk: Range<usize>,
    },
}

/// The compiled PACO 1D schedule: the wave plan plus the lengths of the
/// temporaries its y-cuts need (allocated fresh by the executor).
#[derive(Debug, Clone)]
pub struct OneDPlan {
    /// The executable schedule.
    pub plan: Plan<OneDJob>,
    /// `tmp_len[i]` is the length of temporary `i`.
    pub tmp_len: Vec<usize>,
}

/// Compile the PACO 1D recursion for `D[0..=n]` on `p` processors.
pub fn plan_one_d(n: usize, p: usize, base: usize) -> OneDPlan {
    let base = base.max(2);
    let mut planner = OneDPlanner {
        b: PlanBuilder::new(p),
        tmp_len: Vec::new(),
        base,
    };
    let front = planner.b.root();
    planner.triangle(&front, ProcList::all(p), 0..n + 1);
    OneDPlan {
        plan: planner.b.finish(),
        tmp_len: planner.tmp_len,
    }
}

struct OneDPlanner {
    b: PlanBuilder<OneDJob>,
    tmp_len: Vec<usize>,
    base: usize,
}

impl OneDPlanner {
    /// `COP-1D△`: sequential spine (left triangle, parallel square, right
    /// triangle).  The spine leaves run on the list's first processor.
    fn triangle(&mut self, front: &Front, procs: ProcList, range: Range<usize>) -> Front {
        let len = range.len();
        if len <= 1 {
            return front.clone();
        }
        if len <= self.base || procs.len() == 1 {
            return self
                .b
                .step(front, procs.first(), OneDJob::Triangle { range });
        }
        let mid = range.start + len / 2;
        let f = self.triangle(front, procs, range.start..mid);
        let f = self.square(
            &f,
            procs,
            Buf::D,
            Buf::D,
            0,
            range.start..mid,
            mid..range.end,
        );
        self.triangle(&f, procs, mid..range.end)
    }

    /// `COP-1D□`: the parallel external-updating function of Fig. 6.
    #[allow(clippy::too_many_arguments)] // mirrors the pseudo-code signature
    fn square(
        &mut self,
        front: &Front,
        procs: ProcList,
        src: Buf,
        dst: Buf,
        dst_off: usize,
        inp: Range<usize>,
        out: Range<usize>,
    ) -> Front {
        if inp.is_empty() || out.is_empty() {
            return front.clone();
        }
        if procs.len() == 1 {
            return self.b.step(
                front,
                procs.only(),
                OneDJob::Square {
                    src,
                    dst,
                    dst_off,
                    inp,
                    out,
                },
            );
        }

        let (p1, p2) = procs.split_even();
        if out.len() >= inp.len() {
            // Cut on x: split the output range in the ratio |P1| : |P2|.
            let split = out.start + out.len() * p1.len() / procs.len();
            let left = self.square(front, p1, src, dst, dst_off, inp.clone(), out.start..split);
            let right = self.square(front, p2, src, dst, dst_off, inp, split..out.end);
            left.join(&right)
        } else {
            // Cut on y: split the input range; the second half accumulates
            // into a temporary covering the output, merged by a parallel min.
            let split = inp.start + inp.len() * p1.len() / procs.len();
            let tmp = self.tmp_len.len();
            self.tmp_len.push(out.len());
            let left = self.square(front, p1, src, dst, dst_off, inp.start..split, out.clone());
            let right = self.square(
                front,
                p2,
                src,
                Buf::Tmp(tmp),
                out.start,
                split..inp.end,
                out.clone(),
            );
            let f = left.join(&right);
            self.merge_min(&f, procs, dst, dst_off, tmp, out)
        }
    }

    /// Parallel element-wise merge, one chunk of `out` per processor.
    fn merge_min(
        &mut self,
        front: &Front,
        procs: ProcList,
        dst: Buf,
        dst_off: usize,
        tmp: usize,
        out: Range<usize>,
    ) -> Front {
        let p = procs.len();
        let mut fronts = Vec::with_capacity(p);
        for (k, proc) in procs.ids().enumerate() {
            let lo = out.start + k * out.len() / p;
            let hi = out.start + (k + 1) * out.len() / p;
            if lo >= hi {
                continue;
            }
            fronts.push(self.b.step(
                front,
                proc,
                OneDJob::MergeMin {
                    dst,
                    dst_off,
                    tmp,
                    out: out.clone(),
                    chunk: lo..hi,
                },
            ));
        }
        if fronts.is_empty() {
            front.clone()
        } else {
            Front::join_all(&fronts)
        }
    }
}

/// A prepared PACO 1D instance: the compiled wave plan plus the shared `D`
/// array and temporary arena its jobs interpret.  This is the unit the
/// service layer's `Session` schedules — alone, in batches, or mixed with
/// other workloads.  The schedule depends only on `(n, p, base)`, so
/// [`OneDRun::from_plan`] can bind fresh weights to a shared, possibly
/// cached [`OneDPlan`].
pub struct OneDRun<W> {
    w: W,
    d: SharedSlice<f64>,
    tmps: Vec<SharedSlice<f64>>,
    compiled: Arc<OneDPlan>,
    base: usize,
    /// Pool the temp arenas return to at finish (`from_plan_in` runs only).
    arena: Option<Arc<ScratchArena>>,
}

impl<W: Weight> OneDRun<W> {
    /// Compile an instance for `p` processors with base-case length `base`.
    pub fn prepare(n: usize, w: W, d0: f64, p: usize, base: usize) -> Self {
        let base = base.max(2);
        Self::from_plan(n, w, d0, Arc::new(plan_one_d(n, p, base)), base)
    }

    /// Bind an instance to an already-compiled (typically cached) plan.  The
    /// plan must have been produced by [`plan_one_d`] for exactly this `n`
    /// and the same `base`.
    pub fn from_plan(n: usize, w: W, d0: f64, compiled: Arc<OneDPlan>, base: usize) -> Self {
        let d = SharedSlice::new(n + 1, f64::INFINITY);
        d.set(0, d0);
        let tmps = compiled
            .tmp_len
            .iter()
            .map(|&len| SharedSlice::new(len, f64::INFINITY))
            .collect();
        Self {
            w,
            d,
            tmps,
            compiled,
            base: base.max(2),
            arena: None,
        }
    }

    /// As [`OneDRun::from_plan`], but checking the `D` array and every
    /// square-phase temp arena out of `arena` instead of allocating; the
    /// temps go back into the pool at [`OneDRun::finish`] (the `D` array is
    /// the output and leaves with the caller).
    pub fn from_plan_in(
        n: usize,
        w: W,
        d0: f64,
        compiled: Arc<OneDPlan>,
        base: usize,
        arena: Arc<ScratchArena>,
    ) -> Self {
        let d = SharedSlice::from_vec(arena.take_vec(n + 1, f64::INFINITY));
        d.set(0, d0);
        let tmps = compiled
            .tmp_len
            .iter()
            .map(|&len| SharedSlice::from_vec(arena.take_vec(len, f64::INFINITY)))
            .collect();
        Self {
            w,
            d,
            tmps,
            compiled,
            base: base.max(2),
            arena: Some(arena),
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<OneDJob> {
        &self.compiled.plan
    }

    fn buf(&self, b: &Buf) -> &SharedSlice<f64> {
        match b {
            Buf::D => &self.d,
            Buf::Tmp(i) => &self.tmps[*i],
        }
    }

    /// Interpret one job against the shared buffers.
    pub fn step(&self, _proc: paco_core::proc_list::ProcId, job: &OneDJob) {
        match job {
            OneDJob::Triangle { range } => triangle_co(&self.d, range.clone(), &self.w, self.base),
            OneDJob::Square {
                src,
                dst,
                dst_off,
                inp,
                out,
            } => square_update(
                self.buf(src),
                self.buf(dst),
                *dst_off,
                inp.clone(),
                out.clone(),
                &self.w,
                self.base,
            ),
            OneDJob::MergeMin {
                dst,
                dst_off,
                tmp,
                out,
                chunk,
            } => {
                let dst = self.buf(dst);
                let t = &self.tmps[*tmp];
                for j in chunk.clone() {
                    let merged = dst.get(j - dst_off).min(t.get(j - out.start));
                    dst.set(j - dst_off, merged);
                }
            }
        }
    }

    /// Read the full `D[0..=n]` array off the completed run.  The array's
    /// storage is handed out directly (no copy); pure temporaries return to
    /// the arena when the run was built with [`OneDRun::from_plan_in`].
    pub fn finish(self) -> Vec<f64> {
        if let Some(arena) = &self.arena {
            for t in self.tmps {
                arena.put_vec(t.into_vec());
            }
        }
        self.d.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_d::kernel::{one_d_reference, FnWeight};
    use paco_core::workload::ParagraphWeight;
    use paco_runtime::WorkerPool;

    /// Prepare-and-run helper standing in for the removed pool-threading
    /// wrapper; real callers go through `paco_service::Session`.
    fn one_d_paco<W: Weight + Clone>(
        n: usize,
        w: &W,
        d0: f64,
        pool: &WorkerPool,
        base: usize,
    ) -> Vec<f64> {
        let run = OneDRun::prepare(n, w.clone(), d0, pool.p(), base);
        run.plan().execute(pool, |proc, job| run.step(proc, job));
        run.finish()
    }

    fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{ctx}: mismatch at {j}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_for_various_p() {
        let w = ParagraphWeight { ideal: 11.0 };
        let n = 400;
        let expect = one_d_reference(n, &w, 0.0);
        for p in [1usize, 2, 3, 5, 7, 8] {
            let pool = WorkerPool::new(p);
            let got = one_d_paco(n, &w, 0.0, &pool, 16);
            assert_close(&expect, &got, &format!("p={p}"));
        }
    }

    #[test]
    fn small_inputs_and_degenerate_cases() {
        let w = ParagraphWeight { ideal: 2.0 };
        let pool = WorkerPool::new(4);
        assert_close(
            &one_d_reference(0, &w, 1.0),
            &one_d_paco(0, &w, 1.0, &pool, 8),
            "n=0",
        );
        assert_close(
            &one_d_reference(1, &w, 0.0),
            &one_d_paco(1, &w, 0.0, &pool, 8),
            "n=1",
        );
        assert_close(
            &one_d_reference(7, &w, 0.0),
            &one_d_paco(7, &w, 0.0, &pool, 8),
            "n=7",
        );
    }

    #[test]
    fn irregular_weight_function() {
        let w = FnWeight(|i: usize, j: usize| ((i * 31 + j * 17) % 23) as f64 * 0.5);
        let n = 333;
        let expect = one_d_reference(n, &w, 0.0);
        let pool = WorkerPool::new(6);
        let got = one_d_paco(n, &w, 0.0, &pool, 8);
        assert_close(&expect, &got, "irregular");
    }

    #[test]
    fn tiny_base_forces_deep_recursion() {
        let w = ParagraphWeight { ideal: 5.0 };
        let n = 200;
        let expect = one_d_reference(n, &w, 0.0);
        let pool = WorkerPool::new(5);
        let got = one_d_paco(n, &w, 0.0, &pool, 2);
        assert_close(&expect, &got, "base=2");
    }

    #[test]
    fn plan_is_reusable_and_counts_barriers() {
        // A plan is pure data: building it twice gives the same schedule, and
        // its barrier count equals its wave count.
        let a = plan_one_d(300, 4, 8);
        let b = plan_one_d(300, 4, 8);
        assert_eq!(a.plan.barriers(), b.plan.barriers());
        assert_eq!(a.plan.steps(), b.plan.steps());
        assert_eq!(a.tmp_len, b.tmp_len);
        assert!(a.plan.barriers() >= 1);
    }
}
