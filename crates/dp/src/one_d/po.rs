//! Processor-oblivious 1D baseline.
//!
//! Identical recursive structure to the sequential algorithm, but the
//! external-updating squares are parallelised by recursively halving the
//! *output* range with `rayon::join` (two halves read the same inputs and write
//! disjoint outputs, so no temporary is needed).  The triangle spine remains
//! sequential, giving the `O(n²/p + n)` running time of the PO row in Table I.
//! Scheduling is left entirely to rayon's randomized work stealing, i.e. the
//! algorithm uses no knowledge of `p` — that is what makes it the PO
//! competitor.

use super::kernel::{square_update, Weight};
use crate::shared::SharedSlice;
use std::ops::Range;

/// Processor-oblivious parallel 1D: returns the full `D[0..=n]` array.
pub fn one_d_po<W: Weight>(n: usize, w: &W, d0: f64, base: usize) -> Vec<f64> {
    let base = base.max(2);
    let d = SharedSlice::new(n + 1, f64::INFINITY);
    d.set(0, d0);
    triangle_po(&d, 0..n + 1, w, base);
    d.snapshot()
}

fn triangle_po<W: Weight>(d: &SharedSlice<f64>, range: Range<usize>, w: &W, base: usize) {
    let len = range.len();
    if len <= 1 {
        return;
    }
    if len <= base {
        for j in range.start + 1..range.end {
            let mut best = d.get(j);
            for i in range.start..j {
                let cand = d.get(i) + w.w(i, j);
                if cand < best {
                    best = cand;
                }
            }
            d.set(j, best);
        }
        return;
    }
    let mid = range.start + len / 2;
    triangle_po(d, range.start..mid, w, base);
    square_po(d, range.start..mid, mid..range.end, w, base);
    triangle_po(d, mid..range.end, w, base);
}

/// Parallel external update: split the output range until it reaches the base
/// size; the two output halves are independent because they only *read* the
/// input range.
fn square_po<W: Weight>(
    d: &SharedSlice<f64>,
    inp: Range<usize>,
    out: Range<usize>,
    w: &W,
    base: usize,
) {
    if out.len() <= base {
        square_update(d, d, 0, inp, out, w, base);
        return;
    }
    let mid = out.start + out.len() / 2;
    rayon::join(
        || square_po(d, inp.clone(), out.start..mid, w, base),
        || square_po(d, inp.clone(), mid..out.end, w, base),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_d::kernel::one_d_reference;
    use paco_core::workload::ParagraphWeight;

    #[test]
    fn matches_reference() {
        let w = ParagraphWeight { ideal: 9.0 };
        for &n in &[1usize, 10, 63, 128, 300, 511] {
            let expect = one_d_reference(n, &w, 0.0);
            let got = one_d_po(n, &w, 0.0, 16);
            for j in 0..=n {
                assert!((expect[j] - got[j]).abs() < 1e-9, "n={n} j={j}");
            }
        }
    }

    #[test]
    fn nonzero_initial_value_propagates() {
        let w = ParagraphWeight { ideal: 4.0 };
        let expect = one_d_reference(100, &w, 2.5);
        let got = one_d_po(100, &w, 2.5, 8);
        assert!((expect[100] - got[100]).abs() < 1e-9);
    }
}
