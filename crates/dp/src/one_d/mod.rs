//! The 1D problem / least-weight subsequence (Sect. III-C of the paper).
//!
//! Given a weight function `w(i, j)` computable in O(1) time with no memory
//! accesses and an initial value `D[0]`, compute
//!
//! ```text
//! D[j] = min_{0 <= i < j} ( D[i] + w(i, j) )     for 1 <= j <= n
//! ```
//!
//! Hirschberg & Larmore's least-weight-subsequence problem; applications
//! include optimal paragraph formation and minimum-height B-trees.  Unlike LCS
//! the dependency of a cell is a full prefix, so the recursive decomposition
//! distinguishes *self-updating* triangles (a sub-range updated from within
//! itself) from *external-updating* squares (a range updated from a disjoint,
//! already-final range) — Fig. 4 and Fig. 6 of the paper.
//!
//! Provided variants (all share the same sequential kernels):
//!
//! | function | class | description |
//! |---|---|---|
//! | [`one_d_reference`] | — | doubly nested loop, ground truth |
//! | [`one_d_sequential_co`] | CO | recursive triangle/square decomposition (Lemma 5) |
//! | [`one_d_po`] | PO | same recursion with rayon-parallel external updates (output-dimension splits only), the Chowdhury–Ramachandran / Blelloch–Gu style baseline |
//! | [`OneDRun`] | PACO | Fig. 6: processor lists split ⌊p/2⌋:⌈p/2⌉, x-cuts split the output, y-cuts split the input and merge through a temporary, sequential kernel at single-processor leaves (Theorem 6); run it through `paco_service::Session` with the `OneD` request |

pub mod kernel;
pub mod paco;
pub mod po;

pub use kernel::{
    one_d_reference, one_d_sequential_co, square_update, triangle_co, Weight, DEFAULT_BASE_1D,
};
pub use paco::{plan_one_d, Buf, OneDJob, OneDPlan, OneDRun};
pub use po::one_d_po;

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::ParagraphWeight;
    use paco_runtime::WorkerPool;

    #[test]
    fn all_variants_agree() {
        let w = ParagraphWeight { ideal: 12.0 };
        let n = 300;
        let expect = one_d_reference(n, &w, 0.0);
        let co = one_d_sequential_co(n, &w, 0.0, 16);
        let po = one_d_po(n, &w, 0.0, 16);
        let pool = WorkerPool::new(3);
        let run = OneDRun::prepare(n, w, 0.0, pool.p(), 16);
        run.plan().execute(&pool, |proc, job| run.step(proc, job));
        let paco = run.finish();
        for j in 0..=n {
            assert!((expect[j] - co[j]).abs() < 1e-9, "co mismatch at {j}");
            assert!((expect[j] - po[j]).abs() < 1e-9, "po mismatch at {j}");
            assert!((expect[j] - paco[j]).abs() < 1e-9, "paco mismatch at {j}");
        }
    }
}
