//! Sequential 1D kernels: the self-updating triangle and the external-updating
//! square (Lemma 5 of the paper).

use crate::shared::SharedSlice;
use std::ops::Range;

/// Default base-case length of the recursive decomposition (an alias of the
/// hoisted workspace default in [`paco_core::tuning`]).
pub const DEFAULT_BASE_1D: usize = paco_core::tuning::ONE_D_BASE;

/// The 1D weight function: `w(i, j)` must be computable in O(1) time with no
/// memory accesses (the problem statement's requirement).
pub trait Weight: Sync {
    /// Weight of the transition from breakpoint `i` to breakpoint `j` (`i < j`).
    fn w(&self, i: usize, j: usize) -> f64;
}

impl Weight for paco_core::workload::ParagraphWeight {
    #[inline]
    fn w(&self, i: usize, j: usize) -> f64 {
        paco_core::workload::ParagraphWeight::w(self, i, j)
    }
}

/// Any `Fn(i, j) -> f64` closure usable as a weight function.
#[derive(Clone, Copy, Debug)]
pub struct FnWeight<F>(pub F);

impl<F: Fn(usize, usize) -> f64 + Sync> Weight for FnWeight<F> {
    #[inline]
    fn w(&self, i: usize, j: usize) -> f64 {
        (self.0)(i, j)
    }
}

/// Reference implementation: the plain double loop.  `O(n²)` time.
pub fn one_d_reference<W: Weight>(n: usize, w: &W, d0: f64) -> Vec<f64> {
    let mut d = vec![f64::INFINITY; n + 1];
    d[0] = d0;
    for j in 1..=n {
        for i in 0..j {
            let cand = d[i] + w.w(i, j);
            if cand < d[j] {
                d[j] = cand;
            }
        }
    }
    d
}

/// External update of the output range `out` from the *disjoint, already final*
/// input range `inp` (`inp` entirely precedes `out`): for every `j ∈ out`,
/// `dst[j] = min(dst[j], src[i] + w(i, j))` over all `i ∈ inp`.
///
/// `src` and `dst` may alias (the usual in-place case) or differ (the PACO
/// y-cut accumulates into a temporary).  The recursion halves the longer
/// dimension of the `inp × out` rectangle until the base case, giving the
/// cache-oblivious `O(|inp|·|out|/(LZ) + (|inp|+|out|)/L)` miss bound of
/// Lemma 5; `dst_off` translates output indices into `dst` (used when `dst` is
/// a temporary that only covers `out`).
pub fn square_update<W: Weight>(
    src: &SharedSlice<f64>,
    dst: &SharedSlice<f64>,
    dst_off: usize,
    inp: Range<usize>,
    out: Range<usize>,
    w: &W,
    base: usize,
) {
    let ni = inp.len();
    let no = out.len();
    if ni == 0 || no == 0 {
        return;
    }
    if ni <= base && no <= base {
        for j in out {
            let mut best = dst.get(j - dst_off);
            for i in inp.clone() {
                let cand = src.get(i) + w.w(i, j);
                if cand < best {
                    best = cand;
                }
            }
            dst.set(j - dst_off, best);
        }
        return;
    }
    if ni >= no {
        let mid = inp.start + ni / 2;
        square_update(src, dst, dst_off, inp.start..mid, out.clone(), w, base);
        square_update(src, dst, dst_off, mid..inp.end, out, w, base);
    } else {
        let mid = out.start + no / 2;
        square_update(src, dst, dst_off, inp.clone(), out.start..mid, w, base);
        square_update(src, dst, dst_off, inp, mid..out.end, w, base);
    }
}

/// Self-updating triangle over the index range `range`: on entry, `d[range.start]`
/// is final and every other `d[j]`, `j ∈ range`, already reflects all
/// contributions from indices `< range.start`; on exit all of them are final.
///
/// The recursion is the paper's `CO-1D△`: solve the left half, apply the
/// external update of the right half from the left half, solve the right half.
pub fn triangle_co<W: Weight>(d: &SharedSlice<f64>, range: Range<usize>, w: &W, base: usize) {
    let len = range.len();
    if len <= 1 {
        return;
    }
    if len <= base {
        for j in range.start + 1..range.end {
            let mut best = d.get(j);
            for i in range.start..j {
                let cand = d.get(i) + w.w(i, j);
                if cand < best {
                    best = cand;
                }
            }
            d.set(j, best);
        }
        return;
    }
    let mid = range.start + len / 2;
    triangle_co(d, range.start..mid, w, base);
    square_update(d, d, 0, range.start..mid, mid..range.end, w, base);
    triangle_co(d, mid..range.end, w, base);
}

/// Sequential cache-oblivious 1D algorithm (the paper's `CO-1D`): returns the
/// full `D[0..=n]` array.
pub fn one_d_sequential_co<W: Weight>(n: usize, w: &W, d0: f64, base: usize) -> Vec<f64> {
    let d = SharedSlice::new(n + 1, f64::INFINITY);
    d.set(0, d0);
    triangle_co(&d, 0..n + 1, w, base.max(2));
    d.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::ParagraphWeight;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn reference_tiny_cases() {
        let w = FnWeight(|i: usize, j: usize| (j - i) as f64);
        // D[j] = min over i of D[i] + (j - i) = D[0] + j (any path has equal cost).
        let d = one_d_reference(5, &w, 1.0);
        assert!(close(&d, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        // n = 0: only the initial value.
        let d = one_d_reference(0, &w, 3.5);
        assert!(close(&d, &[3.5]));
    }

    #[test]
    fn convex_weight_prefers_ideal_gap() {
        let w = ParagraphWeight { ideal: 3.0 };
        let d = one_d_reference(9, &w, 0.0);
        // Breaking every 3 positions costs 0.
        assert!(d[9].abs() < 1e-9);
        assert!(d[8] > 0.0);
    }

    #[test]
    fn co_matches_reference_across_sizes_and_bases() {
        let w = ParagraphWeight { ideal: 7.0 };
        for &n in &[1usize, 2, 5, 17, 64, 100, 257] {
            let expect = one_d_reference(n, &w, 0.0);
            for &base in &[2usize, 8, 32, 1024] {
                let got = one_d_sequential_co(n, &w, 0.0, base);
                assert!(close(&expect, &got), "n={n} base={base}");
            }
        }
    }

    #[test]
    fn square_update_with_offset_temporary() {
        // Accumulate the contribution of inputs 0..4 to outputs 4..8 into a
        // temporary that only covers the output range, then compare with the
        // in-place result.
        let w = ParagraphWeight { ideal: 2.0 };
        let n = 8;
        let d = SharedSlice::new(n, 0.0f64);
        for i in 0..n {
            d.set(i, i as f64);
        }
        let tmp = SharedSlice::new(4, f64::INFINITY);
        square_update(&d, &tmp, 4, 0..4, 4..8, &w, 2);
        for j in 4..8 {
            let mut best = f64::INFINITY;
            for i in 0..4 {
                best = f64::min(best, i as f64 + w.w(i, j));
            }
            assert!((tmp.get(j - 4) - best).abs() < 1e-9, "j={j}");
        }
    }

    #[test]
    fn closure_weights_work() {
        let w = FnWeight(|i: usize, j: usize| ((j * 7 + i * 3) % 13) as f64);
        let expect = one_d_reference(120, &w, 0.0);
        let got = one_d_sequential_co(120, &w, 0.0, 8);
        assert!(close(&expect, &got));
    }
}
