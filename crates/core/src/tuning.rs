//! The single home of every tuning knob in the workspace.
//!
//! Before the service API each workload crate carried its own magic constant
//! (`paco_dp::lcs::kernel::DEFAULT_BASE`, `paco_graph::kernel::DEFAULT_BASE`,
//! the 1D `base` parameter, GAP's tile-grid size, sort's oversampling ratio
//! `k`) and every caller had to thread the right knob through the right
//! entry point by hand.  [`Tuning`] gathers them into one value that the
//! service layer's `Session` consumes: construct it once (defaults, builder
//! overrides, or the `PACO_BASE` environment variable for bench sweeps) and
//! every workload picks up its grain size from the same place.
//!
//! The constants below are the workspace-wide defaults; the per-crate
//! `DEFAULT_BASE`-style constants still exist for backwards compatibility but
//! are aliases of these.

use crate::util::next_power_of_two;

/// Default base-case side of the LCS cache-oblivious recursion.
pub const LCS_BASE: usize = 64;

/// Default base-case side of the Floyd–Warshall A/B/C/D recursion.
pub const FW_BASE: usize = 32;

/// Default base-case length of the 1D triangle/square recursion.
pub const ONE_D_BASE: usize = 32;

/// Default base-case threshold of the matrix-multiplication recursions.
pub const MM_BASE: usize = 64;

/// Default side length below which Strassen falls back to the classical
/// cache-oblivious kernel.
pub const STRASSEN_CUTOFF: usize = 64;

/// Default side of the dirty-block accounting grid used by the incremental
/// closure (`paco_incr`): frontier bookkeeping and the `incr/*` counters are
/// tracked per `INCR_BLOCK × INCR_BLOCK` tile.
pub const INCR_BLOCK: usize = 32;

/// Default dirty-frontier threshold of the incremental closure, in percent
/// of the total block grid: when one update's dirty rectangle probes more
/// than this fraction of all blocks, `paco_incr` re-closes the adjacency
/// from scratch instead of re-propagating.
pub const INCR_FALLBACK_PERCENT: usize = 60;

/// Environment variable overriding every base/grain size at once
/// (`PACO_BASE=<n>`), used by the ablation bench sweeps.
pub const BASE_ENV_VAR: &str = "PACO_BASE";

/// Environment variable controlling the SIMD microkernel dispatch
/// (`PACO_SIMD=off` forces the portable path); read once per process by
/// [`crate::simd`].
pub const SIMD_ENV_VAR: &str = "PACO_SIMD";

/// Every tuning knob of the PACO workloads, in one struct.
///
/// `None` for the optional knobs means "derive the paper's default from the
/// problem/processor count at run time" — see the accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuning {
    /// Base-case side of the LCS partitioning and kernel.
    pub lcs_base: usize,
    /// Base-case side of the Floyd–Warshall recursion and kernels.
    pub fw_base: usize,
    /// Base-case length of the 1D triangle/square recursion.
    pub one_d_base: usize,
    /// Base-case threshold of the classic-MM recursions (cuboid splitting and
    /// the sequential cache-oblivious kernel).
    pub mm_cutoff: usize,
    /// Side length below which Strassen falls back to the classical kernel.
    pub strassen_cutoff: usize,
    /// Side length below which the Strassen 7-ary tree stops expanding in
    /// parallel (nodes at most this size are assigned as-is).
    pub strassen_parallel_base: usize,
    /// `γ` for STRASSEN-CONST-PIECES: maximum number of assignment
    /// super-rounds; `None` is the plain PACO STRASSEN (unlimited).
    pub strassen_gamma: Option<usize>,
    /// GAP tile-grid side; `None` derives `2·2^⌈log₂ p⌉` from the processor
    /// count ([`Tuning::gap_grid`]).
    pub gap_blocks: Option<usize>,
    /// Sort oversampling ratio `k`; `None` derives `max(16, ⌈2·ln n⌉)` from
    /// the input length ([`Tuning::sort_k`]).
    pub sort_oversampling: Option<usize>,
    /// Side of the dirty-block accounting grid of the incremental closure
    /// (`paco_incr`): re-propagation work and the `incr/*` counters are
    /// tracked per `incr_block × incr_block` tile.
    pub incr_block: usize,
    /// Dirty-frontier fallback threshold of the incremental closure, in
    /// percent of the total block grid (0 = always re-close from scratch,
    /// 100 = re-propagate whatever the frontier; both paths produce
    /// bit-identical closures, this knob only trades bookkeeping for bulk
    /// recompute).  Kept as an integer percentage so [`Tuning`] stays `Eq`.
    pub incr_fallback_percent: usize,
    /// Record scheduling counters (`paco_core::metrics::sched`) around every
    /// service run so callers can inspect wave/barrier costs.
    pub trace: bool,
    /// Monotonic invalidation counter for plan-skeleton caches.
    ///
    /// Compiled plan skeletons depend only on (shape, `p`, tuning) — the
    /// paper's workload-independence claim — so the service layer caches them
    /// keyed on the request shape *plus this epoch*.  Any holder that mutates
    /// a knob after skeletons may have been cached must call
    /// [`Tuning::bump_epoch`] so stale schedules can never be replayed
    /// (`paco_service::Session::update_tuning` does this automatically).
    /// Comparing two `Tuning`s for knob equality should ignore the epoch;
    /// use [`Tuning::same_knobs`].
    pub epoch: u64,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            lcs_base: LCS_BASE,
            fw_base: FW_BASE,
            one_d_base: ONE_D_BASE,
            mm_cutoff: MM_BASE,
            strassen_cutoff: STRASSEN_CUTOFF,
            strassen_parallel_base: 2 * STRASSEN_CUTOFF,
            strassen_gamma: None,
            gap_blocks: None,
            sort_oversampling: None,
            incr_block: INCR_BLOCK,
            incr_fallback_percent: INCR_FALLBACK_PERCENT,
            trace: true,
            epoch: 0,
        }
    }
}

impl Tuning {
    /// Defaults, then the `PACO_BASE` environment override applied to every
    /// base/grain knob via [`Tuning::with_base`].  A set-but-invalid value
    /// (unparseable, or zero) is ignored with a warning on stderr — the
    /// override exists for bench sweeps, where silently running every point
    /// at the defaults would be much harder to notice than a warning.
    pub fn from_env() -> Self {
        match std::env::var(BASE_ENV_VAR) {
            Err(_) => Self::default(),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(base) if base >= 1 => Self::default().with_base(base),
                _ => {
                    eprintln!(
                        "warning: ignoring invalid {BASE_ENV_VAR}={raw:?} (expected an integer >= 1)"
                    );
                    Self::default()
                }
            },
        }
    }

    /// Set every base/grain-size knob (LCS, FW, 1D, MM, Strassen cutoff) to
    /// `base` — the bench sweeps' one-dial override.  The Strassen parallel
    /// base follows at `2·base`; the derived knobs (GAP grid, oversampling)
    /// are left alone.
    pub fn with_base(mut self, base: usize) -> Self {
        assert!(base >= 1, "base sizes must be at least 1");
        self.lcs_base = base;
        self.fw_base = base;
        self.one_d_base = base;
        self.mm_cutoff = base;
        self.strassen_cutoff = base;
        self.strassen_parallel_base = 2 * base;
        self
    }

    /// The sort oversampling ratio for an input of `n` keys: the explicit
    /// override, or the paper's `k = Θ(ln n)` rule (`max(16, ⌈2·ln n⌉)`).
    pub fn sort_k(&self, n: usize) -> usize {
        self.sort_oversampling
            .unwrap_or_else(|| ((2.0 * (n.max(2) as f64).ln()).ceil() as usize).max(16))
    }

    /// The GAP tile-grid side for `p` processors: the explicit override, or
    /// `2·2^⌈log₂ p⌉` so most anti-diagonals offer at least `p` independent
    /// output slabs.
    pub fn gap_grid(&self, p: usize) -> usize {
        self.gap_blocks.unwrap_or(2 * next_power_of_two(p))
    }

    /// Advance the plan-cache invalidation [`epoch`](Tuning::epoch).  Call
    /// after mutating any knob once skeletons may have been cached against
    /// this tuning; every cached schedule keyed to the old epoch becomes
    /// unreachable.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Whether every *knob* matches `other`, ignoring the cache-invalidation
    /// [`epoch`](Tuning::epoch) (plain `==` compares the epoch too).
    pub fn same_knobs(&self, other: &Tuning) -> bool {
        let a = Tuning {
            epoch: 0,
            ..self.clone()
        };
        let b = Tuning {
            epoch: 0,
            ..other.clone()
        };
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_per_crate_constants() {
        let t = Tuning::default();
        assert_eq!(t.lcs_base, 64);
        assert_eq!(t.fw_base, 32);
        assert_eq!(t.one_d_base, 32);
        assert_eq!(t.mm_cutoff, 64);
        assert_eq!(t.strassen_cutoff, 64);
        assert_eq!(t.strassen_parallel_base, 128);
        assert_eq!(t.incr_block, 32);
        assert_eq!(t.incr_fallback_percent, 60);
    }

    #[test]
    fn with_base_sets_every_grain_knob() {
        let t = Tuning::default().with_base(16);
        assert_eq!(t.lcs_base, 16);
        assert_eq!(t.fw_base, 16);
        assert_eq!(t.one_d_base, 16);
        assert_eq!(t.mm_cutoff, 16);
        assert_eq!(t.strassen_cutoff, 16);
        assert_eq!(t.strassen_parallel_base, 32);
    }

    #[test]
    fn derived_knobs_follow_the_paper_rules() {
        let t = Tuning::default();
        // k = max(16, ceil(2 ln n)).
        assert_eq!(t.sort_k(10), 16);
        let big = t.sort_k(1 << 20);
        assert!((27..=29).contains(&big), "2 ln 2^20 ≈ 27.7, got {big}");
        // Explicit override wins.
        let t2 = Tuning {
            sort_oversampling: Some(4),
            gap_blocks: Some(7),
            ..Tuning::default()
        };
        assert_eq!(t2.sort_k(1 << 20), 4);
        assert_eq!(t2.gap_grid(13), 7);
        // Derived GAP grid: 2 * next_pow2(p).
        assert_eq!(t.gap_grid(1), 2);
        assert_eq!(t.gap_grid(3), 8);
        assert_eq!(t.gap_grid(4), 8);
    }

    #[test]
    fn epoch_bumps_and_knob_comparison_ignores_it() {
        let mut t = Tuning::default();
        assert_eq!(t.epoch, 0);
        t.bump_epoch();
        t.bump_epoch();
        assert_eq!(t.epoch, 2);
        // Same knobs, different epochs: != but same_knobs.
        let fresh = Tuning::default();
        assert_ne!(t, fresh);
        assert!(t.same_knobs(&fresh));
        // Different knobs are caught regardless of epoch.
        let coarser = Tuning::default().with_base(128);
        assert!(!t.same_knobs(&coarser));
    }
}
