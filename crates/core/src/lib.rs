//! # paco-core
//!
//! Shared vocabulary for the PACO ("Processor-Aware but Cache-Oblivious")
//! reproduction of *Balanced Partitioning of Several Cache-Oblivious Algorithms*
//! (Tang & Gao, SPAA 2020, arXiv:2011.01441).
//!
//! The crates higher in the stack (`paco-runtime`, `paco-dp`, `paco-matmul`,
//! `paco-sort`, `paco-cache-sim`, `paco-bench`) all speak in terms of the types
//! defined here:
//!
//! * [`ProcList`] — a contiguous list of processor identifiers that can be split
//!   by the `⌊p/2⌋ : ⌈p/2⌉` rule, by an arbitrary ratio, or by per-processor
//!   throughput fractions.  Processor lists are the central object of the paper's
//!   "1-PIECE" style algorithms (PACO 1D, PACO MM-1-PIECE, PACO HETERO-MM).
//! * [`machine::MachineConfig`] — the two-level ideal distributed cache model
//!   parameters (p, Z, L) plus the experimental machine presets of Table III.
//! * [`semiring::Semiring`] — the closed semiring abstraction the paper's
//!   rectangular matrix multiplication is stated over, with the usual
//!   `(+, ×)` ring, the tropical `(min, +)` semiring and a wrapping integer ring
//!   for exact testing.
//! * [`matrix::Matrix`] / [`matrix::MatMut`] — dense row-major matrices and the
//!   disjoint mutable sub-views needed to hand independent output quadrants to
//!   different processors without locking.
//! * [`metrics`] — work/critical-path counters, wall-clock stopwatches and
//!   throughput helpers used by the benchmark harness.
//! * [`table`] — tiny CSV / aligned-table emitters so every benchmark binary can
//!   print the rows the paper's tables and figures report.
//! * [`shared`] — `SharedGrid`/`SharedSlice`, the documented-unsafe shared
//!   table wrappers the wavefront (`paco-dp`) and phase-recursive
//!   (`paco-graph`) algorithms write from many processors at once.
//! * [`kernel`] / [`simd`] — the sealed `SpecializedKernel` fast-path hook on
//!   [`Semiring`] and the runtime-dispatched `f64` microkernel behind it
//!   (AVX2+FMA when detected, portable otherwise, `PACO_SIMD=off` override).
//! * [`arena`] — [`ScratchArena`], the typed cross-pass pool the service layer
//!   uses to recycle workload scratch allocations between requests.
//! * [`tuning`] — every base/grain-size knob of the workloads (LCS/FW/1D/MM
//!   bases, Strassen cutoffs, GAP tile grid, sort oversampling) hoisted into
//!   one [`Tuning`] struct with a `PACO_BASE` environment override.
//! * [`workload`] — deterministic workload generators (random sequences,
//!   matrices, digraphs, weight functions) shared by tests, examples and
//!   benches.
//! * [`util`] — integer helpers (ceiling division, power-of-two rounding,
//!   primality) used throughout the partitioning code.
//!
//! Everything in this crate is purely sequential and dependency-light; the
//! parallel machinery lives in `paco-runtime`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod kernel;
pub mod machine;
pub mod matrix;
pub mod metrics;
pub mod proc_list;
pub mod semiring;
pub mod shared;
pub mod simd;
pub mod table;
pub mod tuning;
pub mod util;
pub mod workload;

pub use arena::{ArenaStats, ScratchArena};
pub use kernel::SpecializedKernel;
pub use machine::{CacheParams, HeteroSpec, MachineConfig, Placement};
pub use matrix::{MatMut, MatRef, Matrix};
pub use metrics::{Counters, Stopwatch};
pub use proc_list::{ProcId, ProcList};
pub use semiring::{
    BoolSemiring, IdempotentSemiring, MaxPlus, MinPlus, Numeric, Semiring, WrappingRing,
};
pub use tuning::Tuning;
