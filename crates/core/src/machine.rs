//! Machine models.
//!
//! The paper analyses every algorithm under the *ideal distributed cache model*
//! of Frigo and Strumpen (Fig. 1 of the paper): `p` identical processors, each
//! with a private ideal cache of `Z` words, exchanging cache lines of `L` words
//! with an arbitrarily large shared memory.  [`CacheParams`] captures `(Z, L)`,
//! [`MachineConfig`] adds the processor count and human-readable metadata, and
//! [`HeteroSpec`] describes the heterogeneous extension of Sect. III-E-2 where
//! each processor has its own fixed throughput.
//!
//! Table III of the paper describes the two machines used in its evaluation; the
//! presets [`MachineConfig::xeon_72core`] and [`MachineConfig::xeon_24core`]
//! reproduce those parameters so that the cache-model simulation and the
//! analytic bound evaluation can be run against the same configurations the
//! paper reports.

use std::fmt;

/// Parameters of one private ideal cache: capacity `Z` and line size `L`,
/// both measured in *words* (elements), following the paper's convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Cache size `Z` in words.
    pub z_words: usize,
    /// Cache line size `L` in words.
    pub l_words: usize,
}

impl CacheParams {
    /// Create cache parameters; panics unless `0 < L <= Z` and `L` divides `Z`.
    pub fn new(z_words: usize, l_words: usize) -> Self {
        assert!(l_words > 0, "cache line size must be positive");
        assert!(z_words >= l_words, "cache must hold at least one line");
        assert_eq!(
            z_words % l_words,
            0,
            "cache size {z_words} must be a multiple of line size {l_words}"
        );
        Self { z_words, l_words }
    }

    /// Number of lines the cache can hold (`Z / L`).
    pub fn lines(&self) -> usize {
        self.z_words / self.l_words
    }

    /// A small cache convenient for unit tests (64 lines of 8 words).
    pub fn tiny() -> Self {
        Self::new(512, 8)
    }
}

impl fmt::Display for CacheParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z={} words, L={} words", self.z_words, self.l_words)
    }
}

/// Throughput description of a heterogeneous machine (Sect. III-E-2).
///
/// `ratios[i]` is the fixed relative throughput `t_i` of processor `i`; the paper
/// normalises so that `t_1 = 1` and `t_i >= 1`.  We only require every ratio to
/// be positive; [`HeteroSpec::fractions`] produces the normalised load fractions
/// `f_i = t_i / Σ t_j` the PACO-HETERO algorithms split by.
#[derive(Clone, Debug, PartialEq)]
pub struct HeteroSpec {
    ratios: Vec<f64>,
}

impl HeteroSpec {
    /// Create a heterogeneous throughput specification.
    ///
    /// Panics if `ratios` is empty or any ratio is not strictly positive and
    /// finite.
    pub fn new(ratios: Vec<f64>) -> Self {
        assert!(
            !ratios.is_empty(),
            "HeteroSpec needs at least one processor"
        );
        for (i, &r) in ratios.iter().enumerate() {
            assert!(
                r.is_finite() && r > 0.0,
                "throughput ratio t_{i} = {r} must be positive and finite"
            );
        }
        Self { ratios }
    }

    /// A homogeneous machine of `p` processors (all ratios equal to 1).
    pub fn homogeneous(p: usize) -> Self {
        Self::new(vec![1.0; p])
    }

    /// The machine heterogeneity observed in the paper's Sect. IV-A: the first
    /// socket's cores run `fast_factor`× faster than the remaining cores.
    pub fn one_fast_socket(p: usize, fast_cores: usize, fast_factor: f64) -> Self {
        assert!(fast_cores <= p);
        let mut ratios = vec![1.0; p];
        for r in ratios.iter_mut().take(fast_cores) {
            *r = fast_factor;
        }
        Self::new(ratios)
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.ratios.len()
    }

    /// The raw throughput ratios `t_i`.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// The normalised load fractions `f_i = t_i / Σ_j t_j` (they sum to 1).
    pub fn fractions(&self) -> Vec<f64> {
        let total: f64 = self.ratios.iter().sum();
        self.ratios.iter().map(|&t| t / total).collect()
    }

    /// Total throughput `Σ t_i`, i.e. the ideal speedup over processor 0 running
    /// alone at throughput `t_0` normalised to 1 (Corollary 12).
    pub fn total_throughput(&self) -> f64 {
        self.ratios.iter().sum()
    }

    /// True if every processor has the same throughput.
    pub fn is_homogeneous(&self) -> bool {
        self.ratios
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < f64::EPSILON)
    }
}

/// A complete machine description for the ideal distributed cache model:
/// processor count, private cache parameters and optional heterogeneity.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name (e.g. `"72-core machine"`).
    pub name: String,
    /// Number of processors `p`.
    pub p: usize,
    /// Private cache parameters (the model has one cache level per processor;
    /// for the real machines of Table III we use the per-core L2 as `Z`).
    pub cache: CacheParams,
    /// Optional second cache level used only for reporting (per-core L1).
    pub l1: Option<CacheParams>,
    /// Clock frequency in GHz (for Rpeak-style reporting only).
    pub clock_ghz: f64,
    /// Double-precision FLOPs per cycle per core (for Rpeak-style reporting).
    pub flops_per_cycle: f64,
    /// Throughput heterogeneity; `None` means homogeneous.
    pub hetero: Option<HeteroSpec>,
}

impl MachineConfig {
    /// A homogeneous machine with `p` processors and the given private cache.
    pub fn homogeneous(name: impl Into<String>, p: usize, cache: CacheParams) -> Self {
        Self {
            name: name.into(),
            p,
            cache,
            l1: None,
            clock_ghz: 0.0,
            flops_per_cycle: 0.0,
            hetero: None,
        }
    }

    /// The 72-core machine of Table III: 4 sockets × 18 cores, Xeon E7-8890 v3,
    /// 2.5 GHz, 32 KB L1d / 256 KB L2 per core, 16 DP FLOPs/cycle.
    ///
    /// Cache parameters are expressed in `f64` words (8 bytes):
    /// Z = 256 KB / 8 = 32768 words, L = 64 B / 8 = 8 words.
    pub fn xeon_72core() -> Self {
        Self {
            name: "72-core machine (Xeon E7-8890 v3)".to_string(),
            p: 72,
            cache: CacheParams::new(32 * 1024, 8),
            l1: Some(CacheParams::new(4 * 1024, 8)),
            clock_ghz: 2.5,
            flops_per_cycle: 16.0,
            // Sect. IV-A: the 18 cores of socket 0 were measured ~3x faster than
            // the other 54 cores.
            hetero: Some(HeteroSpec::one_fast_socket(72, 18, 3.0)),
        }
    }

    /// The 24-core machine of Table III: 2 sockets × 12 cores, Xeon E5-2670 v3,
    /// 2.3 GHz, 32 KB L1d / 256 KB L2 per core, 16 DP FLOPs/cycle.
    pub fn xeon_24core() -> Self {
        Self {
            name: "24-core machine (Xeon E5-2670 v3)".to_string(),
            p: 24,
            cache: CacheParams::new(32 * 1024, 8),
            l1: Some(CacheParams::new(4 * 1024, 8)),
            clock_ghz: 2.3,
            flops_per_cycle: 16.0,
            hetero: None,
        }
    }

    /// A machine sized for this container / CI: `p` = available hardware
    /// parallelism, small simulated caches so the cache-model experiments finish
    /// quickly.
    pub fn local(p: usize) -> Self {
        Self::homogeneous(
            format!("local machine (p={p})"),
            p,
            CacheParams::new(4096, 8),
        )
    }

    /// Theoretical peak double-precision FLOP/s of the whole machine
    /// (`p × clock × flops_per_cycle`), the paper's `Rpeak`.
    pub fn rpeak_flops(&self) -> f64 {
        self.p as f64 * self.clock_ghz * 1e9 * self.flops_per_cycle
    }

    /// The heterogeneity specification, defaulting to homogeneous.
    pub fn hetero_spec(&self) -> HeteroSpec {
        self.hetero
            .clone()
            .unwrap_or_else(|| HeteroSpec::homogeneous(self.p))
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: p={}, {}", self.name, self.p, self.cache)?;
        if let Some(h) = &self.hetero {
            write!(f, ", heterogeneous (Σt={:.1})", h.total_throughput())?;
        }
        Ok(())
    }
}

/// A 2D block-cyclic ownership map for the shared-nothing (Sect. III-E-1 /
/// Sect. V) emulation: which of `p` ranks *owns* each element of a matrix.
///
/// Ranks form a `pr × pc` process grid (`pr·pc = p`, with `pr` the largest
/// divisor of `p` not exceeding `√p`, so prime rank counts degrade to a
/// 1 × p column-cyclic layout instead of being rejected).  Elements are
/// grouped into `block × block` tiles and tiles are dealt out cyclically:
///
/// ```text
/// owner(r, c) = ((r / block) mod pr) · pc  +  ((c / block) mod pc)
/// ```
///
/// Ownership is what makes the superstep emulation *shared-nothing*: every
/// word lives on exactly one rank, a wave's exchange phase ships only words
/// a rank reads but does not own, and its writeback phase returns words a
/// rank wrote but does not own — so the owner's copy is authoritative at
/// every wave boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    pr: usize,
    pc: usize,
    block: usize,
}

impl Placement {
    /// The default tile side used by the distributed backend.
    pub const DEFAULT_BLOCK: usize = 16;

    /// A block-cyclic placement of `ranks` ranks with `block × block` tiles.
    ///
    /// Panics if `ranks` or `block` is zero.
    pub fn new(ranks: usize, block: usize) -> Self {
        assert!(ranks > 0, "placement needs at least one rank");
        assert!(block > 0, "placement tile side must be positive");
        let mut pr = 1;
        for d in 1..=ranks {
            if d * d > ranks {
                break;
            }
            if ranks.is_multiple_of(d) {
                pr = d;
            }
        }
        Self {
            pr,
            pc: ranks / pr,
            block,
        }
    }

    /// The rank owning element `(row, col)` of any matrix under this map.
    #[inline]
    pub fn owner(&self, row: usize, col: usize) -> usize {
        ((row / self.block) % self.pr) * self.pc + (col / self.block) % self.pc
    }

    /// Total number of ranks (`pr · pc`).
    pub fn ranks(&self) -> usize {
        self.pr * self.pc
    }

    /// The tile side in elements.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The process-grid shape `(pr, pc)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_processors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_params_lines() {
        let c = CacheParams::new(512, 8);
        assert_eq!(c.lines(), 64);
        assert_eq!(format!("{c}"), "Z=512 words, L=8 words");
    }

    #[test]
    #[should_panic]
    fn cache_params_rejects_non_multiple() {
        CacheParams::new(100, 8);
    }

    #[test]
    #[should_panic]
    fn cache_params_rejects_line_larger_than_cache() {
        CacheParams::new(4, 8);
    }

    #[test]
    fn hetero_fractions_sum_to_one() {
        let h = HeteroSpec::new(vec![1.0, 2.0, 3.0, 2.0]);
        let f = h.fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((f[2] - 3.0 / 8.0).abs() < 1e-12);
        assert!(!h.is_homogeneous());
        assert!((h.total_throughput() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hetero_homogeneous() {
        let h = HeteroSpec::homogeneous(6);
        assert!(h.is_homogeneous());
        assert_eq!(h.p(), 6);
        assert!((h.total_throughput() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn one_fast_socket_matches_paper() {
        let h = HeteroSpec::one_fast_socket(72, 18, 3.0);
        assert_eq!(h.ratios().iter().filter(|&&r| r == 3.0).count(), 18);
        assert_eq!(h.ratios().iter().filter(|&&r| r == 1.0).count(), 54);
    }

    #[test]
    fn machine_presets() {
        let m72 = MachineConfig::xeon_72core();
        assert_eq!(m72.p, 72);
        assert!(m72.hetero.is_some());
        let m24 = MachineConfig::xeon_24core();
        assert_eq!(m24.p, 24);
        // Rpeak of the 24-core machine: 24 * 2.3e9 * 16 ≈ 883 GFLOP/s.
        let rpeak = m24.rpeak_flops();
        assert!((rpeak - 24.0 * 2.3e9 * 16.0).abs() < 1.0);
        assert!(m24.hetero_spec().is_homogeneous());
    }

    #[test]
    fn available_processors_positive() {
        assert!(available_processors() >= 1);
    }

    #[test]
    fn placement_grid_covers_all_ranks_and_respects_blocks() {
        for ranks in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16] {
            let pl = Placement::new(ranks, 4);
            let (pr, pc) = pl.grid();
            assert_eq!(pr * pc, ranks);
            assert!(pr <= pc, "pr is the divisor at or below sqrt");
            // Every rank owns at least one tile of a big-enough matrix, and
            // every owner is in range.
            let n = 4 * ranks.max(4);
            let mut seen = vec![false; ranks];
            for r in 0..n {
                for c in 0..n {
                    let o = pl.owner(r, c);
                    assert!(o < ranks);
                    seen[o] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "ranks={ranks}: {seen:?}");
        }
    }

    #[test]
    fn placement_is_constant_within_a_tile() {
        let pl = Placement::new(6, 8);
        let o = pl.owner(8, 16);
        for dr in 0..8 {
            for dc in 0..8 {
                assert_eq!(pl.owner(8 + dr, 16 + dc), o);
            }
        }
    }

    #[test]
    fn placement_prime_ranks_fall_back_to_column_cyclic() {
        let pl = Placement::new(7, 2);
        assert_eq!(pl.grid(), (1, 7));
        assert_eq!(pl.owner(100, 0), pl.owner(0, 0));
        assert_ne!(pl.owner(0, 0), pl.owner(0, 2));
    }
}
