//! Closed semirings and rings.
//!
//! Sect. III-E of the paper states the rectangular matrix-multiplication
//! algorithms over a closed semiring `SR = (S, ⊕, ⊗, 0, 1)`; Strassen's
//! algorithm (Sect. III-F) additionally requires an inverse of addition, i.e. a
//! ring.  The traits here capture exactly that split:
//!
//! * [`Semiring`] — the element supports `⊕` (associative, commutative, with
//!   identity [`Semiring::zero`]) and `⊗` (associative, with identity
//!   [`Semiring::one`], distributing over `⊕`).  Classic matrix multiplication
//!   ([`crate::matrix`], `paco-matmul`) only needs this.
//! * [`Ring`] — a semiring whose addition has inverses, enabling Strassen.
//!
//! Provided instances:
//!
//! * `f64` / `f32` — the usual arithmetic ring (the paper's `dgemm` experiments).
//! * [`WrappingRing`] — `u64` with wrapping add/mul: an exact ring used by the
//!   test-suite to check Strassen and the PACO partitionings bit-for-bit against
//!   the reference algorithm without floating-point tolerance.
//! * [`MinPlus`] / [`MaxPlus`] — tropical semirings (shortest/longest paths,
//!   dynamic programming on a semiring).
//! * [`BoolSemiring`] — the boolean (∨, ∧) semiring (transitive closure).
//! * [`Viterbi`] — the (max, ×) semiring over non-negative likelihoods
//!   (most-probable paths).
//! * [`Bottleneck`] — the (max, min) semiring (widest-path / capacity
//!   closure).
//! * [`CountMod`] — path counting (+, ×) over ℤ/Mℤ; *not* idempotent, but an
//!   exact [`Ring`], so it runs through the classic-MM and Strassen paths.

use std::fmt::Debug;

/// A closed semiring element.
///
/// Laws (checked by property tests in `tests/` and `paco-matmul`):
/// `add` is associative and commutative with identity `zero`;
/// `mul` is associative with identity `one` and annihilator `zero`;
/// `mul` distributes over `add`.
///
/// The [`SpecializedKernel`](crate::kernel::SpecializedKernel) supertrait is
/// the (sealed) leaf fast-path hook: the matmul/graph leaf kernels consult it
/// before falling back to the generic `mul_add` loops.
pub trait Semiring:
    crate::kernel::SpecializedKernel + Copy + Send + Sync + PartialEq + Debug + 'static
{
    /// Additive identity (`0`).
    fn zero() -> Self;
    /// Multiplicative identity (`1`).
    fn one() -> Self;
    /// Semiring addition `⊕`.
    fn add(self, rhs: Self) -> Self;
    /// Semiring multiplication `⊗`.
    fn mul(self, rhs: Self) -> Self;

    /// Fused multiply-accumulate `self ⊕ (a ⊗ b)`; the inner-loop operation of
    /// every matrix-multiplication kernel.  Override when a faster fused form
    /// exists.
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }
}

/// Marker trait for semirings whose addition is idempotent: `a ⊕ a = a`.
///
/// The tropical semirings (`min`/`max` absorb duplicates) and the boolean
/// semiring (`∨` absorbs duplicates) qualify; ordinary arithmetic rings do
/// not.  In-place path-closure algorithms — Floyd–Warshall in `paco-graph` —
/// relax the same entries repeatedly and are only correct when duplicate
/// contributions are absorbing, so they bound their element type on this
/// trait and a non-idempotent instantiation fails to compile instead of
/// silently computing garbage.
pub trait IdempotentSemiring: Semiring {}

impl IdempotentSemiring for MinPlus {}
impl IdempotentSemiring for MaxPlus {}
impl IdempotentSemiring for BoolSemiring {}
impl IdempotentSemiring for Viterbi {}
impl IdempotentSemiring for Bottleneck {}
// `CountMod` is deliberately *not* idempotent: `a + a = 2a mod M ≠ a` in
// general, so the in-place closure algorithms reject it at compile time.

/// A semiring with additive inverses (a ring), as required by Strassen.
pub trait Ring: Semiring {
    /// Ring subtraction `⊖`.
    fn sub(self, rhs: Self) -> Self;
    /// Additive inverse.
    #[inline]
    fn neg(self) -> Self {
        Self::zero().sub(self)
    }
}

/// Marker trait for ordinary numeric types where `Semiring` coincides with the
/// usual arithmetic operations; lets generic code ask for "a real number-like
/// ring" (e.g. the vendor-baseline MM which uses explicit `f64` FMA loops).
pub trait Numeric: Ring + PartialOrd {
    /// Conversion from a small integer, used by workload generators.
    fn from_i32(v: i32) -> Self;
    /// Conversion to `f64` for error measurement in tests.
    fn to_f64(self) -> f64;
}

impl Semiring for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

impl Ring for f64 {
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
}

impl Numeric for f64 {
    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f64
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Semiring for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

impl Ring for f32 {
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
}

impl Numeric for f32 {
    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// `u64` with wrapping arithmetic: an exact commutative ring (ℤ / 2⁶⁴ℤ).
///
/// Used heavily in tests because every algorithm variant — including Strassen,
/// which subtracts — must agree *exactly* with the reference triple loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct WrappingRing(pub u64);

impl Semiring for WrappingRing {
    #[inline]
    fn zero() -> Self {
        WrappingRing(0)
    }
    #[inline]
    fn one() -> Self {
        WrappingRing(1)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        WrappingRing(self.0.wrapping_add(rhs.0))
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        WrappingRing(self.0.wrapping_mul(rhs.0))
    }
}

impl Ring for WrappingRing {
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        WrappingRing(self.0.wrapping_sub(rhs.0))
    }
}

/// Tropical (min, +) semiring over `f64`: `⊕ = min`, `⊗ = +`, `0 = +∞`, `1 = 0`.
///
/// Matrix "multiplication" over [`MinPlus`] computes all-pairs shortest-path
/// relaxation steps; it exercises the semiring-generic code paths of
/// `paco-matmul` with a non-invertible addition.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MinPlus(pub f64);

impl Semiring for MinPlus {
    #[inline]
    fn zero() -> Self {
        MinPlus(f64::INFINITY)
    }
    #[inline]
    fn one() -> Self {
        MinPlus(0.0)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        MinPlus(self.0.min(rhs.0))
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        MinPlus(self.0 + rhs.0)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Fused min-of-sum: one branch-free `min` instead of a constructed
        // intermediate — the form the FW leaf loops compile down to.
        MinPlus(self.0.min(a.0 + b.0))
    }
}

/// Tropical (max, +) semiring over `f64`: `⊕ = max`, `⊗ = +`, `0 = −∞`, `1 = 0`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MaxPlus(pub f64);

impl Semiring for MaxPlus {
    #[inline]
    fn zero() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }
    #[inline]
    fn one() -> Self {
        MaxPlus(0.0)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        MaxPlus(self.0.max(rhs.0))
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        MaxPlus(self.0 + rhs.0)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        MaxPlus(self.0.max(a.0 + b.0))
    }
}

/// The boolean semiring (∨, ∧): matrix multiplication computes reachability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct BoolSemiring(pub bool);

impl Semiring for BoolSemiring {
    #[inline]
    fn zero() -> Self {
        BoolSemiring(false)
    }
    #[inline]
    fn one() -> Self {
        BoolSemiring(true)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        BoolSemiring(self.0 | rhs.0)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        BoolSemiring(self.0 & rhs.0)
    }
}

/// The Viterbi (max, ×) semiring over **non-negative** likelihoods:
/// `⊕ = max`, `⊗ = ×`, `0 = 0.0`, `1 = 1.0`.
///
/// Matrix closure over [`Viterbi`] computes most-probable paths (each edge
/// carries a transition likelihood, a path's likelihood is the product of
/// its edges).  Distributivity `a ⊗ max(b, c) = max(a⊗b, a⊗c)` needs `⊗` to
/// be monotone, which multiplication only is on non-negative operands — the
/// laws (and the kernels) therefore assume elements in `[0, ∞)`; keeping
/// likelihoods in `[0, 1]` additionally makes every cycle non-improving, so
/// closures converge.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Viterbi(pub f64);

impl Semiring for Viterbi {
    #[inline]
    fn zero() -> Self {
        Viterbi(0.0)
    }
    #[inline]
    fn one() -> Self {
        Viterbi(1.0)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Viterbi(self.0.max(rhs.0))
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Viterbi(self.0 * rhs.0)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Viterbi(self.0.max(a.0 * b.0))
    }
}

/// The bottleneck (max, min) semiring: `⊕ = max`, `⊗ = min`, `0 = −∞`,
/// `1 = +∞`.
///
/// Matrix closure over [`Bottleneck`] computes widest paths: a path's value
/// is its narrowest edge (the capacity bottleneck) and `⊕` keeps the widest
/// alternative.  Both operations are selections over a total order, so every
/// algorithm variant is bit-exact — no floating-point slack anywhere.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Bottleneck(pub f64);

impl Semiring for Bottleneck {
    #[inline]
    fn zero() -> Self {
        Bottleneck(f64::NEG_INFINITY)
    }
    #[inline]
    fn one() -> Self {
        Bottleneck(f64::INFINITY)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Bottleneck(self.0.max(rhs.0))
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Bottleneck(self.0.min(rhs.0))
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Bottleneck(self.0.max(a.0.min(b.0)))
    }
}

/// Path counting over ℤ/Mℤ: `⊕ = + mod M`, `⊗ = × mod M`, for a compile-time
/// modulus `M ≥ 1`.
///
/// Matrix powers over [`CountMod`] count walks by length modulo `M` — the
/// classic "number of paths" scenario kept exact by reducing eagerly.  It is
/// a full (commutative) [`Ring`], so it also runs through Strassen, and it is
/// **not** idempotent (`a ⊕ a = 2a`), so the closure entry points reject it
/// at compile time via the missing [`IdempotentSemiring`] marker.
///
/// The stored value is kept reduced (`< M`) by every constructor and
/// operation; build values with [`CountMod::new`] rather than the raw tuple
/// constructor to preserve that invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct CountMod<const M: u64>(pub u64);

impl<const M: u64> CountMod<M> {
    /// A reduced element of ℤ/Mℤ.
    #[inline]
    pub fn new(v: u64) -> Self {
        CountMod(v % M)
    }
}

impl<const M: u64> Semiring for CountMod<M> {
    #[inline]
    fn zero() -> Self {
        CountMod(0)
    }
    #[inline]
    fn one() -> Self {
        CountMod(1 % M)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // Operands are reduced, so the widened sum cannot overflow.
        CountMod(((self.0 as u128 + rhs.0 as u128) % M as u128) as u64)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        CountMod(((self.0 as u128 * rhs.0 as u128) % M as u128) as u64)
    }
}

impl<const M: u64> Ring for CountMod<M> {
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        CountMod(((M as u128 + self.0 as u128 - rhs.0 as u128) % M as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semiring_axioms<S: Semiring>(vals: &[S]) {
        for &a in vals {
            for &b in vals {
                // commutativity of ⊕
                assert_eq!(a.add(b), b.add(a));
                for &c in vals {
                    // associativity
                    assert_eq!(a.add(b).add(c), a.add(b.add(c)));
                    assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
                    // distributivity
                    assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
                    assert_eq!(b.add(c).mul(a), b.mul(a).add(c.mul(a)));
                }
            }
            // identities
            assert_eq!(a.add(S::zero()), a);
            assert_eq!(a.mul(S::one()), a);
            assert_eq!(S::one().mul(a), a);
            // annihilation
            assert_eq!(a.mul(S::zero()), S::zero());
            assert_eq!(S::zero().mul(a), S::zero());
        }
    }

    #[test]
    fn wrapping_ring_axioms() {
        let vals: Vec<WrappingRing> = [0u64, 1, 2, 7, u64::MAX, u64::MAX - 3, 12345]
            .iter()
            .map(|&v| WrappingRing(v))
            .collect();
        semiring_axioms(&vals);
        // ring: a - a == 0
        for &a in &vals {
            assert_eq!(a.sub(a), WrappingRing::zero());
            assert_eq!(a.add(a.neg()), WrappingRing::zero());
        }
    }

    #[test]
    fn bool_semiring_axioms() {
        semiring_axioms(&[BoolSemiring(false), BoolSemiring(true)]);
    }

    #[test]
    fn idempotent_markers_are_actually_idempotent() {
        fn check<S: IdempotentSemiring>(vals: &[S]) {
            for &a in vals {
                assert_eq!(a.add(a), a);
            }
        }
        check(&[MinPlus(0.0), MinPlus(3.5), MinPlus(-1.0), MinPlus::zero()]);
        check(&[MaxPlus(-2.0), MaxPlus(7.0), MaxPlus::zero()]);
        check(&[BoolSemiring(false), BoolSemiring(true)]);
        check(&[Viterbi(0.25), Viterbi(1.0), Viterbi::zero(), Viterbi::one()]);
        check(&[
            Bottleneck(3.0),
            Bottleneck(-1.0),
            Bottleneck::zero(),
            Bottleneck::one(),
        ]);
    }

    #[test]
    fn viterbi_axioms_on_nonnegative_values() {
        let vals: Vec<Viterbi> = [0.0, 0.125, 0.5, 1.0, 2.0]
            .iter()
            .map(|&v| Viterbi(v))
            .collect();
        // Power-of-two likelihoods: products are exact, so the full axiom
        // battery (incl. distributivity) holds bit-for-bit.
        semiring_axioms(&vals);
    }

    #[test]
    fn bottleneck_axioms() {
        let vals: Vec<Bottleneck> = [f64::NEG_INFINITY, -2.0, 0.0, 5.5, f64::INFINITY]
            .iter()
            .map(|&v| Bottleneck(v))
            .collect();
        semiring_axioms(&vals);
    }

    #[test]
    fn count_mod_axioms_and_ring_laws() {
        let vals: Vec<CountMod<7>> = (0..7).map(CountMod::<7>::new).collect();
        semiring_axioms(&vals);
        for &a in &vals {
            assert_eq!(a.sub(a), CountMod::zero());
            assert_eq!(a.add(a.neg()), CountMod::zero());
            assert!(a.0 < 7, "values stay reduced");
        }
        // Degenerate modulus: ℤ/1ℤ collapses to the zero ring.
        assert_eq!(CountMod::<1>::one(), CountMod::<1>::zero());
        assert_eq!(CountMod::<1>::new(42), CountMod::<1>::zero());
    }

    #[test]
    fn min_plus_axioms_on_finite_values() {
        let vals: Vec<MinPlus> = [0.0, 1.0, 2.5, 10.0, -3.0]
            .iter()
            .map(|&v| MinPlus(v))
            .collect();
        // identities involving ±∞ need care with equality; check only finite ones
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a.add(b), b.add(a));
                assert_eq!(a.mul(b).0, a.0 + b.0);
            }
            assert_eq!(a.add(MinPlus::zero()), a);
            assert_eq!(a.mul(MinPlus::one()), a);
        }
    }

    #[test]
    fn max_plus_behaviour() {
        let a = MaxPlus(3.0);
        let b = MaxPlus(5.0);
        assert_eq!(a.add(b), MaxPlus(5.0));
        assert_eq!(a.mul(b), MaxPlus(8.0));
        assert_eq!(a.add(MaxPlus::zero()), a);
    }

    #[test]
    fn float_mul_add_matches() {
        let acc = 2.0f64;
        assert!((Semiring::mul_add(acc, 3.0, 4.0) - 14.0).abs() < 1e-12);
        let acc = 2.0f32;
        assert!((Semiring::mul_add(acc, 3.0, 4.0) - 14.0).abs() < 1e-6);
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(<f64 as Numeric>::from_i32(-7), -7.0);
        assert_eq!(Numeric::to_f64(3.5f32), 3.5);
    }
}
