//! Processor lists.
//!
//! The PACO algorithms of the paper are *processor-aware*: every recursive call
//! carries an explicit list of the processors that will execute it.  The list is
//! repeatedly split — most importantly by the `⌊p/2⌋ : ⌈p/2⌉` rule (Sect. III-C,
//! Fig. 6 and the MM-1-PIECE algorithm of Fig. 8) — until it contains a single
//! processor, at which point the associated sub-problem is executed sequentially
//! on that processor with the best cache-oblivious kernel.
//!
//! A [`ProcList`] is a half-open range `[start, end)` of [`ProcId`]s.  Splits are
//! O(1) and never allocate; they simply produce two sub-ranges.  This mirrors the
//! paper's `split({P})` pseudo-code operation.

use std::fmt;

/// Identifier of a (logical) processor, `0..p`.
pub type ProcId = usize;

/// A contiguous, non-empty-or-empty list of processors `[start, end)`.
///
/// ```
/// use paco_core::ProcList;
/// let all = ProcList::new(0, 5);
/// let (left, right) = all.split_even();
/// assert_eq!(left.len(), 2);
/// assert_eq!(right.len(), 3);
/// assert_eq!(left.ids().collect::<Vec<_>>(), vec![0, 1]);
/// assert_eq!(right.ids().collect::<Vec<_>>(), vec![2, 3, 4]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcList {
    start: ProcId,
    end: ProcId,
}

impl fmt::Debug for ProcList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcList[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for ProcList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{p{}..p{}}}", self.start, self.end)
    }
}

impl ProcList {
    /// Create the list `[start, end)`. Panics if `start > end`.
    pub fn new(start: ProcId, end: ProcId) -> Self {
        assert!(start <= end, "ProcList start {start} > end {end}");
        Self { start, end }
    }

    /// The canonical full list `{0, 1, ..., p-1}`.
    pub fn all(p: usize) -> Self {
        Self::new(0, p)
    }

    /// A list containing a single processor.
    pub fn single(id: ProcId) -> Self {
        Self::new(id, id + 1)
    }

    /// Number of processors in the list.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the list contains no processors.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// First processor id of the list (the paper's `P.start`).
    ///
    /// Panics if the list is empty.
    pub fn first(&self) -> ProcId {
        assert!(!self.is_empty(), "first() on empty ProcList");
        self.start
    }

    /// Last processor id of the list.
    ///
    /// Panics if the list is empty.
    pub fn last(&self) -> ProcId {
        assert!(!self.is_empty(), "last() on empty ProcList");
        self.end - 1
    }

    /// The only processor of a singleton list.
    ///
    /// Panics if the list does not contain exactly one processor.
    pub fn only(&self) -> ProcId {
        assert_eq!(self.len(), 1, "only() on ProcList of length {}", self.len());
        self.start
    }

    /// True if `id` is a member of the list.
    pub fn contains(&self, id: ProcId) -> bool {
        id >= self.start && id < self.end
    }

    /// Iterate over the processor ids of the list.
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = ProcId> + ExactSizeIterator {
        self.start..self.end
    }

    /// The raw `[start, end)` bounds.
    pub fn bounds(&self) -> (ProcId, ProcId) {
        (self.start, self.end)
    }

    /// Split into `(⌊p/2⌋, ⌈p/2⌉)`, the rule used by the paper's 1-PIECE
    /// algorithms (Fig. 6 line 5, Fig. 8 line 5).
    ///
    /// The left half may be empty when the list holds a single processor; the
    /// 1-PIECE recursions never split a singleton, so callers should check
    /// `len() == 1` first exactly as the pseudo-code does.
    pub fn split_even(&self) -> (Self, Self) {
        let left = self.len() / 2;
        self.split_at(left)
    }

    /// Split into a prefix of `left_len` processors and the remaining suffix.
    pub fn split_at(&self, left_len: usize) -> (Self, Self) {
        assert!(
            left_len <= self.len(),
            "split_at({left_len}) out of bounds for {self:?}"
        );
        let mid = self.start + left_len;
        (Self::new(self.start, mid), Self::new(mid, self.end))
    }

    /// Split by the ratio `a : b`, i.e. the left part receives
    /// `round(p * a / (a + b))` processors, clamped so that neither side is empty
    /// whenever both `a > 0`, `b > 0` and `p >= 2`.
    pub fn split_ratio(&self, a: usize, b: usize) -> (Self, Self) {
        assert!(a + b > 0, "split_ratio(0, 0)");
        let p = self.len();
        if p == 0 {
            return (*self, *self);
        }
        let mut left = (p * a + (a + b) / 2) / (a + b);
        if a > 0 && b > 0 && p >= 2 {
            left = left.clamp(1, p - 1);
        } else {
            left = left.min(p);
        }
        self.split_at(left)
    }

    /// Split by real-valued throughput fractions: the left part receives a number
    /// of processors proportional to `frac_left / (frac_left + frac_right)`,
    /// clamped so both sides stay non-empty when `p >= 2`.
    ///
    /// Used by the heterogeneous algorithms (Sect. III-E-2): the processor list is
    /// split in the same proportion as the computational load.
    pub fn split_fraction(&self, frac_left: f64, frac_right: f64) -> (Self, Self) {
        assert!(
            frac_left >= 0.0 && frac_right >= 0.0 && frac_left + frac_right > 0.0,
            "invalid fractions {frac_left}, {frac_right}"
        );
        let p = self.len();
        if p == 0 {
            return (*self, *self);
        }
        let share = frac_left / (frac_left + frac_right);
        let mut left = (p as f64 * share).round() as usize;
        if frac_left > 0.0 && frac_right > 0.0 && p >= 2 {
            left = left.clamp(1, p - 1);
        } else {
            left = left.min(p);
        }
        self.split_at(left)
    }

    /// Round-robin owner of the `i`-th item assigned over this list.
    ///
    /// The paper assigns pruned nodes "to p processors in a round-robin fashion";
    /// this helper makes that assignment deterministic and uniform.
    pub fn round_robin(&self, i: usize) -> ProcId {
        assert!(!self.is_empty(), "round_robin on empty ProcList");
        self.start + (i % self.len())
    }

    /// Partition `n_items` items round-robin over the list, returning for each
    /// processor (in list order) the item indices it owns.
    pub fn round_robin_partition(&self, n_items: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.len()];
        for i in 0..n_items {
            out[i % self.len()].push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let l = ProcList::all(8);
        assert_eq!(l.len(), 8);
        assert_eq!(l.first(), 0);
        assert_eq!(l.last(), 7);
        assert!(!l.is_empty());
        assert!(l.contains(0));
        assert!(l.contains(7));
        assert!(!l.contains(8));
    }

    #[test]
    fn single_and_only() {
        let l = ProcList::single(5);
        assert_eq!(l.len(), 1);
        assert_eq!(l.only(), 5);
        assert_eq!(l.first(), 5);
        assert_eq!(l.last(), 5);
    }

    #[test]
    #[should_panic]
    fn only_panics_on_longer_list() {
        ProcList::all(3).only();
    }

    #[test]
    fn split_even_floor_ceil() {
        // Odd p: ⌊p/2⌋ left, ⌈p/2⌉ right.
        let (a, b) = ProcList::all(7).split_even();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        // Even p.
        let (a, b) = ProcList::all(8).split_even();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        // p = 1: left is empty.
        let (a, b) = ProcList::all(1).split_even();
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn split_even_partitions_ids() {
        for p in 1..40 {
            let l = ProcList::all(p);
            let (a, b) = l.split_even();
            let mut ids: Vec<_> = a.ids().chain(b.ids()).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn split_ratio_respects_proportion() {
        let l = ProcList::all(10);
        let (a, b) = l.split_ratio(3, 7);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 7);
        let (a, b) = l.split_ratio(1, 1);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_ratio_never_empties_a_side_for_p_ge_2() {
        for p in 2..32 {
            for a in 1..10usize {
                for b in 1..10usize {
                    let (l, r) = ProcList::all(p).split_ratio(a, b);
                    assert!(!l.is_empty(), "p={p} a={a} b={b}");
                    assert!(!r.is_empty(), "p={p} a={a} b={b}");
                    assert_eq!(l.len() + r.len(), p);
                }
            }
        }
    }

    #[test]
    fn split_fraction_matches_ratio() {
        let l = ProcList::all(12);
        let (a, b) = l.split_fraction(1.0, 2.0);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 8);
        let (a, b) = l.split_fraction(0.0, 1.0);
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn round_robin_cycles() {
        let l = ProcList::new(2, 5); // ids 2,3,4
        assert_eq!(l.round_robin(0), 2);
        assert_eq!(l.round_robin(1), 3);
        assert_eq!(l.round_robin(2), 4);
        assert_eq!(l.round_robin(3), 2);
    }

    #[test]
    fn round_robin_partition_is_balanced() {
        let l = ProcList::all(4);
        let parts = l.round_robin_partition(10);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<_> = parts.iter().map(|v| v.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let mut all: Vec<_> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", ProcList::new(1, 4)), "{p1..p4}");
        assert_eq!(format!("{:?}", ProcList::new(1, 4)), "ProcList[1, 4)");
    }
}
