//! [`ScratchArena`]: cross-pass reuse of workload scratch allocations.
//!
//! Every service request used to allocate its run state fresh at bind time —
//! the 1D temp arenas, the GAP table, the sort scratch, Strassen's operand
//! matrices — and drop it when the pass finished.  Under the
//! millions-of-requests workload the north star assumes, that is a steady
//! allocator churn on the hot path.  A `ScratchArena` is a typed pool of
//! returned `Vec<T>` buffers, owned one per `Session` and one per engine
//! shard: bind-time construction *takes* buffers from the pool (falling back
//! to a fresh allocation on a miss) and the post-pass `finish` *puts* pure
//! temporaries back.
//!
//! Pools are keyed by `TypeId` of the element vector, so a buffer is only
//! ever reused at the exact type it was allocated at — no byte-level
//! transmutes.  The hit/miss counters feed the `service/arena-reuse-ratio`
//! gauge; outputs are never pooled, so results are unaffected by reuse (the
//! arena-reuse test in `tests/kernel_agreement.rs` asserts exactly that).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time copy of one arena's checkout counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Checkouts served from a pooled buffer (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate fresh.
    pub misses: u64,
}

impl ArenaStats {
    /// `hits / (hits + misses)`, or 0.0 before any checkout — the
    /// `service/arena-reuse-ratio` gauge.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum — how an engine aggregates its shard arenas.
    pub fn merge(self, other: ArenaStats) -> ArenaStats {
        ArenaStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A typed pool of reusable `Vec<T>` scratch buffers (see module docs).
///
/// Thread-safe: checkouts happen on producer threads at bind time while
/// returns happen on executor threads after a pass, so the pool map sits
/// behind a mutex (held only for the pop/push, never while filling).
#[derive(Default)]
pub struct ScratchArena {
    pools: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ScratchArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "ScratchArena(hits={}, misses={})",
            stats.hits, stats.misses
        )
    }
}

impl ScratchArena {
    /// Returned buffers kept per element type; beyond this, returns are
    /// dropped (bounds retained memory under bursty mixed workloads).
    const MAX_POOLED: usize = 16;

    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a `Vec<T>` of exactly `len` elements, every element `fill`.
    ///
    /// Reuses a pooled buffer of the same element type when one is
    /// available (counted as a hit; the buffer is cleared and refilled, so
    /// contents never leak between requests) and allocates fresh otherwise
    /// (a miss).
    pub fn take_vec<T: Clone + Send + 'static>(&self, len: usize, fill: T) -> Vec<T> {
        let pooled = {
            let mut pools = self.pools.lock().expect("arena mutex poisoned");
            pools
                .get_mut(&TypeId::of::<Vec<T>>())
                .and_then(|stack| stack.pop())
        };
        match pooled {
            Some(boxed) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut v = *boxed.downcast::<Vec<T>>().expect("pool is keyed by TypeId");
                v.clear();
                v.resize(len, fill);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![fill; len]
            }
        }
    }

    /// Return a buffer to the pool for a later [`ScratchArena::take_vec`] of
    /// the same element type.  Contents are cleared immediately; capacity is
    /// what gets reused.  Zero-capacity and over-quota returns are dropped.
    pub fn put_vec<T: Send + 'static>(&self, mut v: Vec<T>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        let mut pools = self.pools.lock().expect("arena mutex poisoned");
        let stack = pools.entry(TypeId::of::<Vec<T>>()).or_default();
        if stack.len() < Self::MAX_POOLED {
            stack.push(Box::new(v));
        }
    }

    /// The arena's checkout counters so far.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_take_misses_then_warm_take_hits() {
        let arena = ScratchArena::new();
        let v = arena.take_vec(100, 0u64);
        assert_eq!(v, vec![0u64; 100]);
        assert_eq!(arena.stats(), ArenaStats { hits: 0, misses: 1 });
        arena.put_vec(v);
        // Reuse at a different length: capacity is recycled, contents reset.
        let w = arena.take_vec(60, 7u64);
        assert_eq!(w, vec![7u64; 60]);
        assert_eq!(arena.stats(), ArenaStats { hits: 1, misses: 1 });
        assert!((arena.stats().reuse_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pools_are_typed_and_never_cross() {
        let arena = ScratchArena::new();
        arena.put_vec(vec![1.5f64; 8]);
        // A u32 take must not see the f64 buffer.
        let v = arena.take_vec(4, 9u32);
        assert_eq!(v, vec![9u32; 4]);
        assert_eq!(arena.stats().hits, 0);
        // The f64 take does.
        let f = arena.take_vec(2, 0.0f64);
        assert_eq!(f, vec![0.0; 2]);
        assert_eq!(arena.stats().hits, 1);
    }

    #[test]
    fn pool_is_bounded_and_empty_returns_dropped() {
        let arena = ScratchArena::new();
        arena.put_vec(Vec::<u8>::new()); // capacity 0: dropped
        for _ in 0..40 {
            arena.put_vec(vec![0u8; 16]);
        }
        let pooled = arena.pools.lock().unwrap()[&TypeId::of::<Vec<u8>>()].len();
        assert_eq!(pooled, ScratchArena::MAX_POOLED);
    }

    #[test]
    fn eviction_cap_is_observable_through_takes() {
        // Return more buffers than the quota, then drain with takes: the
        // pool serves exactly `MAX_POOLED` hits before it runs dry — the
        // 17th (and every later) return was evicted, not stashed.
        let arena = ScratchArena::new();
        for _ in 0..ScratchArena::MAX_POOLED + 9 {
            arena.put_vec(vec![0u64; 32]);
        }
        for _ in 0..ScratchArena::MAX_POOLED {
            arena.take_vec(32, 1u64);
        }
        assert_eq!(
            arena.stats(),
            ArenaStats {
                hits: ScratchArena::MAX_POOLED as u64,
                misses: 0
            }
        );
        arena.take_vec(32, 1u64);
        assert_eq!(
            arena.stats(),
            ArenaStats {
                hits: ScratchArena::MAX_POOLED as u64,
                misses: 1
            }
        );
    }

    #[test]
    fn eviction_cap_is_per_type() {
        // Over-filling one type's pool must not consume another type's
        // quota: both pools independently hold `MAX_POOLED` buffers.
        let arena = ScratchArena::new();
        for _ in 0..ScratchArena::MAX_POOLED + 5 {
            arena.put_vec(vec![0u32; 8]);
            arena.put_vec(vec![0.0f32; 8]);
        }
        for _ in 0..ScratchArena::MAX_POOLED {
            arena.take_vec(8, 1u32);
            arena.take_vec(8, 1.0f32);
        }
        assert_eq!(arena.stats().hits, 2 * ScratchArena::MAX_POOLED as u64);
        assert_eq!(arena.stats().misses, 0);
    }

    #[test]
    fn stats_merge_sums_fieldwise() {
        let a = ArenaStats { hits: 3, misses: 1 };
        let b = ArenaStats { hits: 1, misses: 5 };
        assert_eq!(a.merge(b), ArenaStats { hits: 4, misses: 6 });
        assert_eq!(ArenaStats::default().reuse_ratio(), 0.0);
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena = std::sync::Arc::new(ScratchArena::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let arena = std::sync::Arc::clone(&arena);
                s.spawn(move || {
                    for i in 0..50 {
                        let v = arena.take_vec(64, t * 1000 + i);
                        assert!(v.iter().all(|&x| x == t * 1000 + i));
                        arena.put_vec(v);
                    }
                });
            }
        });
        let stats = arena.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.hits > 0, "warm reuse must occur: {stats:?}");
    }

    #[test]
    fn concurrent_mixed_type_checkout_keeps_stats_exact() {
        // 4 threads × 2 element types × 25 take/put rounds: every checkout
        // is either a hit or a miss (never both, never dropped), pools never
        // cross types, and no pool exceeds its quota afterwards.
        const THREADS: usize = 4;
        const ROUNDS: usize = 25;
        let arena = std::sync::Arc::new(ScratchArena::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let arena = std::sync::Arc::clone(&arena);
                s.spawn(move || {
                    for i in 0..ROUNDS {
                        let v = arena.take_vec(48, (t * ROUNDS + i) as u64);
                        let f = arena.take_vec(48, (t * ROUNDS + i) as f64);
                        assert!(v.iter().all(|&x| x == (t * ROUNDS + i) as u64));
                        assert!(f.iter().all(|&x| x == (t * ROUNDS + i) as f64));
                        arena.put_vec(v);
                        arena.put_vec(f);
                    }
                });
            }
        });
        let stats = arena.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (2 * THREADS * ROUNDS) as u64,
            "every checkout accounted exactly once: {stats:?}"
        );
        // At most `THREADS` concurrent buffers circulated per type, so cold
        // misses are bounded by one per thread per type.
        assert!(stats.misses <= (2 * THREADS) as u64, "{stats:?}");
        let pools = arena.pools.lock().unwrap();
        for stack in pools.values() {
            assert!(stack.len() <= ScratchArena::MAX_POOLED);
        }
    }
}
