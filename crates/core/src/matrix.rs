//! Dense row-major matrices and disjoint sub-matrix views.
//!
//! The divide-and-conquer matrix algorithms of the paper (`CO-MM`, `PACO-MM`,
//! `PACO-MM-1-PIECE`, Strassen, …) recursively split the output matrix `C` and
//! the inputs `A`, `B` into quadrants/halves and hand *disjoint* pieces to
//! different processors.  Rust's borrow checker cannot express "these two
//! mutable windows into the same allocation do not overlap" through plain
//! slices, so this module provides:
//!
//! * [`Matrix<T>`] — an owning, row-major dense matrix.
//! * [`MatRef<'_, T>`] — a read-only window (pointer + dims + row stride).
//! * [`MatMut<'_, T>`] — a mutable window that can be split into two
//!   non-overlapping windows along either dimension ([`MatMut::split_rows`],
//!   [`MatMut::split_cols`]).  The splits are the only way to duplicate mutable
//!   access, and they always produce disjoint windows, so data-race freedom is
//!   preserved even though the windows may be sent to different worker threads.
//!
//! All index arithmetic is `debug_assert!`-checked; release builds pay no
//! bounds-check cost in the hot kernels.

use crate::semiring::Semiring;
use std::fmt;
use std::marker::PhantomData;

/// An owning dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:?}, ", self.data[i * self.cols + j])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Copy> Matrix<T> {
    /// Create a `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            data: vec![fill; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a matrix from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { data, rows, cols }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Consume the matrix, returning its row-major data vector — the
    /// reclamation half of arena reuse (`Matrix::from_vec` is the other).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Raw mutable row-major data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Read-only view of the whole matrix.
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _marker: PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _marker: PhantomData,
        }
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.iter_mut().for_each(|x| *x = v);
    }
}

impl<T: Semiring> Matrix<T> {
    /// A `rows × cols` matrix of semiring zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, T::zero())
    }

    /// The `n × n` semiring identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::one());
        }
        m
    }
}

impl Matrix<f64> {
    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if every element differs by at most `tol` (absolute) or `tol`
    /// relative to the magnitude of the larger element.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let diff = (a - b).abs();
            diff <= tol || diff <= tol * a.abs().max(b.abs())
        })
    }
}

impl<T: Copy> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// A read-only window into a row-major matrix.
#[derive(Clone, Copy)]
pub struct MatRef<'a, T> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a T>,
}

// SAFETY: a MatRef only permits shared reads of the underlying cells, exactly
// like &[T]; it is Send/Sync whenever shared references to T are.
unsafe impl<T: Sync> Send for MatRef<'_, T> {}
unsafe impl<T: Sync> Sync for MatRef<'_, T> {}

impl<'a, T: Copy> MatRef<'a, T> {
    /// Build a read-only window from raw parts.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live allocation laid out row-major with row
    /// stride `stride`, valid for reads of `rows × cols` cells for the
    /// lifetime `'a`, and no cell of the window may be written concurrently.
    /// Used by schedule interpreters that rebuild typed views over
    /// `UnsafeCell`-backed shared tables (`SharedGrid`), whose wave discipline
    /// provides exactly that guarantee.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *const T, rows: usize, cols: usize, stride: usize) -> Self {
        debug_assert!(cols <= stride || rows <= 1);
        MatRef {
            ptr,
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows in the window.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance (in elements) between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element at `(i, j)` within the window.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols, "MatRef index out of bounds");
        // SAFETY: the window invariant guarantees (i, j) maps inside the parent
        // allocation for i < rows, j < cols.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` of the window as a plain slice — what the row-sliced leaf
    /// kernels iterate instead of per-element [`MatRef::at`] calls.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        debug_assert!(i < self.rows, "MatRef row out of bounds");
        // SAFETY: rows are contiguous runs of `cols` cells (the
        // `cols <= stride || rows <= 1` construction invariant), all inside
        // the parent allocation, and the window permits shared reads.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Sub-window of `nrows × ncols` starting at `(r0, c0)`.
    #[inline]
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> MatRef<'a, T> {
        debug_assert!(r0 + nrows <= self.rows && c0 + ncols <= self.cols);
        MatRef {
            // SAFETY: stays within the parent window by the assert above.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: nrows,
            cols: ncols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Split into a top window of `at` rows and a bottom window with the rest.
    #[inline]
    pub fn split_rows(&self, at: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        (
            self.submatrix(0, 0, at, self.cols),
            self.submatrix(at, 0, self.rows - at, self.cols),
        )
    }

    /// Split into a left window of `at` columns and a right window with the rest.
    #[inline]
    pub fn split_cols(&self, at: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        (
            self.submatrix(0, 0, self.rows, at),
            self.submatrix(0, at, self.rows, self.cols - at),
        )
    }

    /// Copy the window into an owning [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

/// A mutable window into a row-major matrix.
///
/// # Disjointness invariant
///
/// A `MatMut` has exclusive access to every cell inside its window.  The only
/// operations producing two `MatMut`s from one are [`MatMut::split_rows`] and
/// [`MatMut::split_cols`], which partition the window, so two live `MatMut`s
/// obtained from the same parent never overlap.  This is what lets the PACO
/// algorithms hand output halves to different processors without locks while
/// remaining free of data races (the paper's algorithms have no races either;
/// Sect. II).
pub struct MatMut<'a, T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: a MatMut is an exclusive window (see invariant above); moving it to
// another thread is as safe as moving &mut [T].
unsafe impl<T: Send> Send for MatMut<'_, T> {}

impl<'a, T: Copy> MatMut<'a, T> {
    /// Build a mutable window from raw parts.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live allocation laid out row-major with row
    /// stride `stride`, valid for reads and writes of `rows × cols` cells for
    /// the lifetime `'a`, and the window must have *exclusive* access to every
    /// cell while it is live (no other read or write may race with it).  Used
    /// by schedule interpreters that rebuild typed views over
    /// `UnsafeCell`-backed shared tables (`SharedGrid`), whose wave discipline
    /// provides exactly that guarantee.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *mut T, rows: usize, cols: usize, stride: usize) -> Self {
        debug_assert!(cols <= stride || rows <= 1);
        MatMut {
            ptr,
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows in the window.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance (in elements) between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: window invariant.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Overwrite element `(i, j)` with `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: window invariant, exclusive access.
        unsafe { *self.ptr.add(i * self.stride + j) = v }
    }

    /// Mutable reference to element `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: window invariant, exclusive access.
        unsafe { &mut *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` of the window as a shared slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows, "MatMut row out of bounds");
        // SAFETY: rows are contiguous runs of `cols` cells inside the
        // window (construction invariant), and `&self` forbids concurrent
        // writes through this window while the slice is live.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Row `i` of the window as a mutable slice — the write half of the
    /// row-sliced leaf kernels.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows, "MatMut row out of bounds");
        // SAFETY: as [`MatMut::row`], with exclusivity inherited from
        // `&mut self` (one row slice at a time per window).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Reborrow: a shorter-lived mutable window over the same cells.
    #[inline]
    pub fn rb(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Read-only view of the same window.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-window of `nrows × ncols` starting at `(r0, c0)`, consuming
    /// this window (use [`MatMut::rb`] first to keep the parent).
    #[inline]
    pub fn submatrix_mut(self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> MatMut<'a, T> {
        debug_assert!(r0 + nrows <= self.rows && c0 + ncols <= self.cols);
        MatMut {
            // SAFETY: stays within the parent window.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: nrows,
            cols: ncols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Split into a top window of `at` rows and a bottom window with the rest.
    ///
    /// The two windows are disjoint, so both may be mutated concurrently.
    #[inline]
    pub fn split_rows(self, at: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        debug_assert!(at <= self.rows);
        let top = MatMut {
            ptr: self.ptr,
            rows: at,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        };
        let bottom = MatMut {
            // SAFETY: rows at..self.rows of the same window.
            ptr: unsafe { self.ptr.add(at * self.stride) },
            rows: self.rows - at,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Split into a left window of `at` columns and a right window with the rest.
    ///
    /// The two windows are disjoint, so both may be mutated concurrently.
    #[inline]
    pub fn split_cols(self, at: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        debug_assert!(at <= self.cols);
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: at,
            stride: self.stride,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: columns at..self.cols of the same window.
            ptr: unsafe { self.ptr.add(at) },
            rows: self.rows,
            cols: self.cols - at,
            stride: self.stride,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Fill the window with `v`.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.set(i, j, v);
            }
        }
    }

    /// Copy the contents of `src` (same shape) into this window.
    pub fn copy_from(&mut self, src: &MatRef<'_, T>) {
        assert_eq!(self.rows, src.rows());
        assert_eq!(self.cols, src.cols());
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.set(i, j, src.at(i, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::WrappingRing;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 23);
        assert_eq!(m[(1, 2)], 12);
    }

    #[test]
    fn zeros_and_identity() {
        let z: Matrix<f64> = Matrix::zeros(2, 3);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i: Matrix<f64> = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(m.get(1, 0), 3);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn view_reads_match_matrix() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 100 + j) as i32);
        let v = m.as_ref();
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(v.at(i, j), m.get(i, j));
            }
        }
        let sub = v.submatrix(1, 2, 3, 4);
        assert_eq!(sub.at(0, 0), m.get(1, 2));
        assert_eq!(sub.at(2, 3), m.get(3, 5));
    }

    #[test]
    fn split_rows_and_cols_cover_disjointly() {
        let mut m = Matrix::filled(6, 6, 0i32);
        {
            let (mut top, mut bottom) = m.as_mut().split_rows(2);
            assert_eq!(top.rows(), 2);
            assert_eq!(bottom.rows(), 4);
            top.fill(1);
            bottom.fill(2);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(m.get(i, j), if i < 2 { 1 } else { 2 });
            }
        }
        {
            let (mut left, mut right) = m.as_mut().split_cols(4);
            left.fill(3);
            right.fill(4);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(m.get(i, j), if j < 4 { 3 } else { 4 });
            }
        }
    }

    #[test]
    fn nested_splits_write_through() {
        let mut m = Matrix::filled(4, 4, 0u64);
        {
            let (top, bottom) = m.as_mut().split_rows(2);
            let (mut tl, mut tr) = top.split_cols(2);
            let (mut bl, mut br) = bottom.split_cols(2);
            tl.set(0, 0, 11);
            tr.set(0, 0, 12);
            bl.set(0, 0, 21);
            br.set(1, 1, 22);
        }
        assert_eq!(m.get(0, 0), 11);
        assert_eq!(m.get(0, 2), 12);
        assert_eq!(m.get(2, 0), 21);
        assert_eq!(m.get(3, 3), 22);
    }

    #[test]
    fn matmut_windows_are_send() {
        // Write the two halves from two scoped threads; this is the pattern the
        // runtime uses to execute disjoint output pieces on different processors.
        let mut m = Matrix::filled(64, 64, 0i64);
        {
            let (mut top, mut bottom) = m.as_mut().split_rows(32);
            std::thread::scope(|s| {
                s.spawn(move || top.fill(7));
                s.spawn(move || bottom.fill(9));
            });
        }
        assert!(m.data().iter().take(32 * 64).all(|&x| x == 7));
        assert!(m.data().iter().skip(32 * 64).all(|&x| x == 9));
    }

    #[test]
    fn copy_from_and_to_matrix() {
        let src = Matrix::from_fn(3, 3, |i, j| WrappingRing((i * 3 + j) as u64));
        let mut dst = Matrix::filled(3, 3, WrappingRing(0));
        dst.as_mut().copy_from(&src.as_ref());
        assert_eq!(src, dst);
        let round = src.as_ref().to_matrix();
        assert_eq!(round, src);
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut b = a.clone();
        b.set(1, 1, b.get(1, 1) + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(a.max_abs_diff(&b) < 1e-9);
        b.set(0, 0, 5.0);
        assert!(!a.approx_eq(&b, 1e-9));
        assert!((a.max_abs_diff(&b) - 5.0).abs() < 1e-12);
    }
}
