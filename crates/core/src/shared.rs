//! Shared-memory wrappers for wavefront and in-place table algorithms.
//!
//! Several algorithm families write a single large table from many processors
//! at once: every task owns a *disjoint* region of the table, but it also reads
//! cells outside its region that were produced by tasks in earlier waves or
//! phases (the LCS/1D/GAP wavefronts in `paco-dp`, the Floyd–Warshall phase
//! recursion in `paco-graph`).  Rust's `&mut` slices cannot express "disjoint
//! writes plus reads of already-finished neighbours", so this module provides
//! two small pointer wrappers with explicitly documented safety contracts:
//!
//! * [`SharedGrid`] — a 2D table of `Copy` cells.
//! * [`SharedSlice`] — a 1D array of `Copy` cells.
//!
//! # Safety contract
//!
//! A `get` may race with nothing; a `set` may race with nothing.  The callers
//! (the wavefront/phase schedulers in the algorithm crates) guarantee it
//! structurally:
//!
//! 1. every task writes only cells inside the region assigned to it, and
//!    regions of concurrently running tasks are disjoint;
//! 2. every cell a task reads outside its own region was written by a task in
//!    an earlier wave or phase, and waves are separated by a barrier (the pool
//!    scope or rayon join), which also provides the necessary happens-before
//!    edge;
//! 3. no cell is read and written concurrently.
//!
//! This mirrors the paper's observation (Sect. II) that all algorithms
//! considered are free of data races, so no cache-coherence modelling is
//! needed.

use std::cell::UnsafeCell;
use std::mem::ManuallyDrop;
use std::ops::Range;

/// Reinterpret a `Vec<T>` as `Vec<UnsafeCell<T>>` without copying.
///
/// Sound because `UnsafeCell<T>` is `repr(transparent)` over `T`, so the two
/// vectors have identical layout, alignment and allocation metadata.
fn wrap_cells<T>(v: Vec<T>) -> Vec<UnsafeCell<T>> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: same allocation, identical layout (`repr(transparent)`), and the
    // original vector is not dropped.
    unsafe { Vec::from_raw_parts(ptr.cast::<UnsafeCell<T>>(), len, cap) }
}

/// Inverse of [`wrap_cells`]: recover the plain `Vec<T>`.
fn unwrap_cells<T>(v: Vec<UnsafeCell<T>>) -> Vec<T> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: as [`wrap_cells`], in reverse.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

/// A 2D grid of `Copy` cells that can be shared across worker threads under the
/// wavefront discipline documented at the module level.
pub struct SharedGrid<T> {
    cells: Vec<UnsafeCell<T>>,
    rows: usize,
    cols: usize,
}

// SAFETY: see the module-level safety contract; the grid itself adds no
// synchronisation, it only makes the sharing explicit.
unsafe impl<T: Send> Send for SharedGrid<T> {}
unsafe impl<T: Send> Sync for SharedGrid<T> {}

impl<T: Copy> SharedGrid<T> {
    /// A `rows × cols` grid with every cell initialised to `fill`.
    pub fn new(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            cells: (0..rows * cols).map(|_| UnsafeCell::new(fill)).collect(),
            rows,
            cols,
        }
    }

    /// A `rows × cols` grid over an existing row-major vector (e.g. one
    /// checked out of a [`crate::arena::ScratchArena`]); no copy is made.
    ///
    /// # Panics
    ///
    /// If `v.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, v: Vec<T>) -> Self {
        assert_eq!(v.len(), rows * cols, "SharedGrid::from_vec shape mismatch");
        Self {
            cells: wrap_cells(v),
            rows,
            cols,
        }
    }

    /// Consume the grid, returning its row-major storage without copying —
    /// how run state returns grid buffers to the arena after a pass.
    pub fn into_vec(self) -> Vec<T> {
        unwrap_cells(self.cells)
    }

    /// A `rows × cols` grid initialised from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut cells = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                cells.push(UnsafeCell::new(f(i, j)));
            }
        }
        Self { cells, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read cell `(i, j)`.
    ///
    /// Caller must uphold the wavefront discipline (no concurrent writer).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols, "SharedGrid read OOB");
        // SAFETY: module-level contract.
        unsafe { *self.cells[i * self.cols + j].get() }
    }

    /// Write cell `(i, j)`.
    ///
    /// Caller must uphold the wavefront discipline (this task owns the cell).
    #[inline]
    pub fn set(&self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols, "SharedGrid write OOB");
        // SAFETY: module-level contract.
        unsafe { *self.cells[i * self.cols + j].get() = v }
    }

    /// Copy the grid into a plain vector (row-major); only call when no task is
    /// running.
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.rows * self.cols)
            .map(|idx| unsafe { *self.cells[idx].get() })
            .collect()
    }

    /// Raw pointer to cell `(i, j)` of the row-major storage (row stride =
    /// [`SharedGrid::cols`]).
    ///
    /// This exists so schedule interpreters can rebuild typed window views
    /// (`MatRef`/`MatMut` via their `from_raw_parts`) over a block of the
    /// grid; all accesses through such views remain subject to the
    /// module-level wavefront contract.  The pointer is derived from the
    /// whole backing buffer, so it carries provenance for the *entire* grid —
    /// a window built from it may stride across rows.
    #[inline]
    pub fn cell_ptr(&self, i: usize, j: usize) -> *mut T {
        debug_assert!(i < self.rows && j < self.cols, "SharedGrid ptr OOB");
        // Derive from the buffer base (not from one element's `UnsafeCell`)
        // so the provenance spans the full allocation; `UnsafeCell<T>` is
        // `repr(transparent)`, and writes through the shared reference are
        // permitted because every cell is inside an `UnsafeCell`.
        let base = self.cells.as_ptr() as *mut T;
        // SAFETY: the index is in bounds by the debug_assert / construction.
        unsafe { base.add(i * self.cols + j) }
    }
}

/// A 1D array of `Copy` cells shareable across worker threads under the same
/// discipline as [`SharedGrid`].
pub struct SharedSlice<T> {
    cells: Vec<UnsafeCell<T>>,
}

// SAFETY: see the module-level safety contract.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// An array of `len` cells initialised to `fill`.
    pub fn new(len: usize, fill: T) -> Self {
        Self {
            cells: (0..len).map(|_| UnsafeCell::new(fill)).collect(),
        }
    }

    /// Build from an existing vector; no copy is made.
    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            cells: wrap_cells(v),
        }
    }

    /// Consume the array, returning its storage without copying — how run
    /// state returns scratch buffers to a [`crate::arena::ScratchArena`]
    /// (and how the sort run hands its scratch out as the output).
    pub fn into_vec(self) -> Vec<T> {
        unwrap_cells(self.cells)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len(), "SharedSlice read OOB");
        // SAFETY: module-level contract.
        unsafe { *self.cells[i].get() }
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len(), "SharedSlice write OOB");
        // SAFETY: module-level contract.
        unsafe { *self.cells[i].get() = v }
    }

    /// A mutable slice over `range` of the underlying cells.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that, for as long as the returned slice is
    /// live, no other access (read or write, through this wrapper or another
    /// slice) touches any cell of `range` — i.e. the scheduling discipline of
    /// the module-level contract, strengthened to exclusive access.  Used by
    /// schedule interpreters whose steps own disjoint ranges (e.g. the sort
    /// redistribution and per-destination local sorts).
    #[allow(clippy::mut_from_ref)] // the UnsafeCell storage is the point
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.end <= self.len(), "SharedSlice slice_mut OOB");
        if range.is_empty() {
            return &mut [];
        }
        // Derive the pointer from the buffer base (not from one element's
        // `UnsafeCell::get`) so it carries provenance for the whole
        // allocation, then offset into the range.
        let base = self.cells.as_ptr() as *mut T;
        // SAFETY: `Vec<UnsafeCell<T>>` stores cells contiguously,
        // `UnsafeCell<T>` is `repr(transparent)`, the range is in bounds, and
        // exclusivity is the caller's contract above.
        std::slice::from_raw_parts_mut(base.add(range.start), range.len())
    }

    /// Copy a range into a plain vector; only call when no task is running.
    pub fn snapshot_range(&self, range: Range<usize>) -> Vec<T> {
        range.map(|i| self.get(i)).collect()
    }

    /// Copy the whole array into a plain vector; only call when no task is
    /// running.
    pub fn snapshot(&self) -> Vec<T> {
        self.snapshot_range(0..self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_read_write_round_trip() {
        let g = SharedGrid::new(3, 4, 0i64);
        g.set(2, 3, 42);
        g.set(0, 0, -1);
        assert_eq!(g.get(2, 3), 42);
        assert_eq!(g.get(0, 0), -1);
        assert_eq!(g.get(1, 1), 0);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        let snap = g.snapshot();
        assert_eq!(snap.len(), 12);
        assert_eq!(snap[2 * 4 + 3], 42);
    }

    #[test]
    fn grid_from_fn_matches_coordinates() {
        let g = SharedGrid::from_fn(3, 5, |i, j| i * 10 + j);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(g.get(i, j), i * 10 + j);
            }
        }
    }

    #[test]
    fn slice_read_write_round_trip() {
        let s = SharedSlice::new(5, f64::INFINITY);
        s.set(3, 1.25);
        assert_eq!(s.get(3), 1.25);
        assert!(s.get(0).is_infinite());
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.snapshot_range(2..4), vec![f64::INFINITY, 1.25]);
    }

    #[test]
    fn from_vec_preserves_contents() {
        let s = SharedSlice::from_vec(vec![1u32, 2, 3]);
        assert_eq!(s.snapshot(), vec![1, 2, 3]);
    }

    #[test]
    fn vec_round_trips_preserve_contents_and_capacity() {
        let mut v = Vec::with_capacity(32);
        v.extend([1u64, 2, 3, 4, 5, 6]);
        let s = SharedSlice::from_vec(v);
        s.set(0, 9);
        let back = s.into_vec();
        assert_eq!(back, vec![9, 2, 3, 4, 5, 6]);
        assert_eq!(back.capacity(), 32);

        let g = SharedGrid::from_vec(2, 3, back);
        assert_eq!(g.get(0, 0), 9);
        g.set(1, 2, 77);
        let back = g.into_vec();
        assert_eq!(back, vec![9, 2, 3, 4, 5, 77]);
        assert_eq!(back.capacity(), 32);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn grid_from_vec_rejects_wrong_length() {
        let _ = SharedGrid::from_vec(2, 3, vec![0u8; 5]);
    }

    #[test]
    fn disjoint_parallel_writes_are_visible_after_join() {
        let g = SharedGrid::new(4, 100, 0usize);
        std::thread::scope(|scope| {
            for row in 0..4 {
                let g = &g;
                scope.spawn(move || {
                    for j in 0..100 {
                        g.set(row, j, row * 1000 + j);
                    }
                });
            }
        });
        for row in 0..4 {
            for j in 0..100 {
                assert_eq!(g.get(row, j), row * 1000 + j);
            }
        }
    }
}
