//! Plain-text table and CSV emitters.
//!
//! Every benchmark binary in `paco-bench` reports its results both as an
//! aligned, human-readable table (what you read in the terminal, mirroring the
//! paper's tables) and as CSV on demand (what you feed to a plotting script to
//! regenerate the figures).  This module keeps that formatting in one place so
//! the binaries stay tiny.

use std::fmt::Write as _;

/// A simple column-aligned table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the number of cells must match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, "| {:width$} ", cell, width = widths[i]);
            }
            line.push('|');
            line
        };
        let header_line = fmt_row(&self.header, &widths);
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(header_line.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows). Cells containing commas or quotes are
    /// quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print the text rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Format a floating-point value with 2 decimals (benchmark convention).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a value as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a FLOP/s value using engineering suffixes (K/M/G/T).
pub fn flops_human(v: f64) -> String {
    let (scaled, suffix) = if v >= 1e12 {
        (v / 1e12, "TFLOP/s")
    } else if v >= 1e9 {
        (v / 1e9, "GFLOP/s")
    } else if v >= 1e6 {
        (v / 1e6, "MFLOP/s")
    } else if v >= 1e3 {
        (v / 1e3, "KFLOP/s")
    } else {
        (v, "FLOP/s")
    };
    format!("{scaled:.2} {suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let text = t.to_text();
        assert!(text.contains("# demo"));
        assert!(text.contains("| name"));
        assert!(text.contains("| long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        t.row(&["quote\"inside".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\",plain"));
        assert!(csv.contains("\"quote\"\"inside\",2"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_helper() {
        let mut t = Table::new("", &["n", "p"]);
        t.row_display(&[128, 7]);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("128,7"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(48.61), "48.6%");
        assert_eq!(flops_human(2.5e9), "2.50 GFLOP/s");
        assert_eq!(flops_human(1.0e13), "10.00 TFLOP/s");
        assert_eq!(flops_human(5.0e3), "5.00 KFLOP/s");
        assert_eq!(flops_human(12.0), "12.00 FLOP/s");
    }
}
