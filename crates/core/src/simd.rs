//! Runtime-dispatched `f64` microkernels for the matrix-multiply leaves.
//!
//! The generic `mm_base` loop calls [`Semiring::mul_add`] per element, which
//! for `f64` is `f64::mul_add` — and *outside* an FMA-enabled function that
//! lowers to a libm call, not an instruction, because the baseline `x86_64`
//! target does not assume FMA hardware.  This module fixes that without any
//! external SIMD crate (the offline shims rule them out) and without
//! changing results:
//!
//! * [`mm_f64`] dispatches **once per process** ([`std::sync::OnceLock`])
//!   between an AVX2+FMA register-blocked kernel (4×8 accumulator tiles of
//!   `__m256d`, `vfmadd` inner loop) and a portable row-sliced loop.  The
//!   fast path is taken only when `is_x86_feature_detected!` confirms both
//!   features; setting [`PACO_SIMD=off`](crate::tuning::SIMD_ENV_VAR)
//!   forces the portable path (the bench ablation dial).
//! * Every path — vectorized, the vector kernel's scalar remainder, and the
//!   portable fallback — accumulates each output element over `l` in the
//!   same ascending order with a fused multiply-add (`vfmaddpd` is IEEE-754
//!   fused, exactly `f64::mul_add`), so all three produce **bit-identical**
//!   results, and identical to the generic `Semiring` loop they replace.
//!   `tests/kernel_agreement.rs` holds them to that.
//!
//! [`Semiring::mul_add`]: crate::semiring::Semiring::mul_add

use crate::matrix::{MatMut, MatRef};
use std::sync::OnceLock;

/// Which microkernel [`mm_f64`] resolved to for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// AVX2 + FMA register-blocked kernel (x86-64 with both features).
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2Fma,
    /// Portable row-sliced `f64::mul_add` loop.
    Portable,
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(detect)
}

fn detect() -> Mode {
    if std::env::var(crate::tuning::SIMD_ENV_VAR)
        .map(|v| v.trim().eq_ignore_ascii_case("off"))
        .unwrap_or(false)
    {
        return Mode::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        return Mode::Avx2Fma;
    }
    Mode::Portable
}

/// The microkernel this process dispatched to: `"avx2+fma"` or
/// `"portable"`.  Resolved once on first use; exposed for gauges and tests.
pub fn simd_mode() -> &'static str {
    match mode() {
        Mode::Avx2Fma => "avx2+fma",
        Mode::Portable => "portable",
    }
}

/// Leaf multiply-accumulate `C += A · B` over row-major `f64` windows
/// (`c`: `m×n`, `a`: `m×k`, `b`: `k×n`), through the per-process dispatch.
///
/// Bit-identical to the generic `Semiring::mul_add` triple loop in `i-l-j`
/// order regardless of which path is taken.
pub fn mm_f64(c: &mut MatMut<'_, f64>, a: &MatRef<'_, f64>, b: &MatRef<'_, f64>) {
    debug_assert_eq!(c.rows(), a.rows());
    debug_assert_eq!(c.cols(), b.cols());
    debug_assert_eq!(a.cols(), b.rows());
    match mode() {
        Mode::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Avx2Fma` is only ever selected by `detect` after
            // `is_x86_feature_detected!` confirmed avx2 and fma.
            unsafe {
                mm_f64_avx2(c, a, b);
            }
            #[cfg(not(target_arch = "x86_64"))]
            mm_f64_portable(c, a, b);
        }
        Mode::Portable => mm_f64_portable(c, a, b),
    }
}

/// The portable microkernel: row-sliced `i-l-j` loop with `f64::mul_add`.
///
/// Public so the agreement tests can compare it against whatever [`mm_f64`]
/// dispatched to in this process.
pub fn mm_f64_portable(c: &mut MatMut<'_, f64>, a: &MatRef<'_, f64>, b: &MatRef<'_, f64>) {
    let m = c.rows();
    let kk = a.cols();
    for i in 0..m {
        let ar = a.row(i);
        for (l, &ail) in ar.iter().enumerate().take(kk) {
            let br = b.row(l);
            let cr = c.row_mut(i);
            for (cj, &bj) in cr.iter_mut().zip(br) {
                *cj = ail.mul_add(bj, *cj);
            }
        }
    }
}

/// Register-blocked AVX2+FMA kernel: 4-row × 8-column accumulator tiles
/// (eight `__m256d` registers), one broadcast-FMA per `(row, l)` pair, with
/// scalar `f64::mul_add` edges compiled under the same target features (so
/// the remainder also lowers to `vfmadd`, not libm).
///
/// # Safety
///
/// The caller must have verified that the running CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mm_f64_avx2(c: &mut MatMut<'_, f64>, a: &MatRef<'_, f64>, b: &MatRef<'_, f64>) {
    use std::arch::x86_64::*;
    const MR: usize = 4;
    const NR: usize = 8;
    let m = c.rows();
    let n = c.cols();
    let kk = a.cols();
    let full_m = m - m % MR;
    let full_n = n - n % NR;

    let mut i = 0;
    while i < full_m {
        // The four A rows of this row band, hoisted as shared slices.
        let a0 = a.row(i);
        let a1 = a.row(i + 1);
        let a2 = a.row(i + 2);
        let a3 = a.row(i + 3);
        let mut j = 0;
        while j < full_n {
            // Load the 4×8 C tile into registers, one row at a time.
            let (mut c00, mut c01);
            let (mut c10, mut c11);
            let (mut c20, mut c21);
            let (mut c30, mut c31);
            {
                let r = c.row(i);
                c00 = _mm256_loadu_pd(r.as_ptr().add(j));
                c01 = _mm256_loadu_pd(r.as_ptr().add(j + 4));
                let r = c.row(i + 1);
                c10 = _mm256_loadu_pd(r.as_ptr().add(j));
                c11 = _mm256_loadu_pd(r.as_ptr().add(j + 4));
                let r = c.row(i + 2);
                c20 = _mm256_loadu_pd(r.as_ptr().add(j));
                c21 = _mm256_loadu_pd(r.as_ptr().add(j + 4));
                let r = c.row(i + 3);
                c30 = _mm256_loadu_pd(r.as_ptr().add(j));
                c31 = _mm256_loadu_pd(r.as_ptr().add(j + 4));
            }
            for l in 0..kk {
                let br = b.row(l);
                let b0 = _mm256_loadu_pd(br.as_ptr().add(j));
                let b1 = _mm256_loadu_pd(br.as_ptr().add(j + 4));
                let av = _mm256_set1_pd(*a0.get_unchecked(l));
                c00 = _mm256_fmadd_pd(av, b0, c00);
                c01 = _mm256_fmadd_pd(av, b1, c01);
                let av = _mm256_set1_pd(*a1.get_unchecked(l));
                c10 = _mm256_fmadd_pd(av, b0, c10);
                c11 = _mm256_fmadd_pd(av, b1, c11);
                let av = _mm256_set1_pd(*a2.get_unchecked(l));
                c20 = _mm256_fmadd_pd(av, b0, c20);
                c21 = _mm256_fmadd_pd(av, b1, c21);
                let av = _mm256_set1_pd(*a3.get_unchecked(l));
                c30 = _mm256_fmadd_pd(av, b0, c30);
                c31 = _mm256_fmadd_pd(av, b1, c31);
            }
            // Store the tile back, again one row borrow at a time.
            let r = c.row_mut(i);
            _mm256_storeu_pd(r.as_mut_ptr().add(j), c00);
            _mm256_storeu_pd(r.as_mut_ptr().add(j + 4), c01);
            let r = c.row_mut(i + 1);
            _mm256_storeu_pd(r.as_mut_ptr().add(j), c10);
            _mm256_storeu_pd(r.as_mut_ptr().add(j + 4), c11);
            let r = c.row_mut(i + 2);
            _mm256_storeu_pd(r.as_mut_ptr().add(j), c20);
            _mm256_storeu_pd(r.as_mut_ptr().add(j + 4), c21);
            let r = c.row_mut(i + 3);
            _mm256_storeu_pd(r.as_mut_ptr().add(j), c30);
            _mm256_storeu_pd(r.as_mut_ptr().add(j + 4), c31);
            j += NR;
        }
        // Column remainder of this row band (scalar, still under FMA).
        if full_n < n {
            for r in i..i + MR {
                scalar_edge(c, a, b, r, full_n, n, kk);
            }
        }
        i += MR;
    }
    // Row remainder: full-width scalar rows.
    for r in full_m..m {
        scalar_edge(c, a, b, r, 0, n, kk);
    }
}

/// Scalar edge of the AVX2 kernel: row `i`, columns `j0..j1`, compiled under
/// the same `avx2,fma` features so `f64::mul_add` stays a single `vfmadd`.
///
/// # Safety
///
/// Same contract as [`mm_f64_avx2`] (caller verified the target features).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scalar_edge(
    c: &mut MatMut<'_, f64>,
    a: &MatRef<'_, f64>,
    b: &MatRef<'_, f64>,
    i: usize,
    j0: usize,
    j1: usize,
    kk: usize,
) {
    let ar = a.row(i);
    for j in j0..j1 {
        let mut acc = c.at(i, j);
        for (l, &ail) in ar.iter().enumerate().take(kk) {
            acc = ail.mul_add(b.at(l, j), acc);
        }
        c.set(i, j, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn generic_reference(c: &mut Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>) {
        for i in 0..c.rows() {
            for l in 0..a.cols() {
                let ail = a.get(i, l);
                for j in 0..c.cols() {
                    c.set(i, j, ail.mul_add(b.get(l, j), c.get(i, j)));
                }
            }
        }
    }

    fn inputs(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) % 13) as f64 - 5.5);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 17 + j * 3) % 11) as f64 * 0.25);
        let c = Matrix::from_fn(m, n, |i, j| ((i + j) % 5) as f64 - 2.0);
        (a, b, c)
    }

    #[test]
    fn dispatched_kernel_is_bit_identical_to_portable_and_generic() {
        // Shapes exercising full tiles, column edges, row edges, and both.
        for &(m, k, n) in &[
            (8usize, 8usize, 16usize),
            (4, 3, 8),
            (5, 7, 9),
            (3, 5, 6),
            (13, 1, 17),
            (1, 4, 1),
            (6, 0, 6),
        ] {
            let (a, b, seed) = inputs(m, k, n);
            let mut dispatched = seed.clone();
            mm_f64(&mut dispatched.as_mut(), &a.as_ref(), &b.as_ref());
            let mut portable = seed.clone();
            mm_f64_portable(&mut portable.as_mut(), &a.as_ref(), &b.as_ref());
            let mut generic = seed.clone();
            generic_reference(&mut generic, &a, &b);
            assert!(
                dispatched == portable && portable == generic,
                "{m}x{k}x{n} disagreement under mode {}",
                simd_mode()
            );
        }
    }

    #[test]
    fn dispatch_mode_is_stable_and_named() {
        let mode = simd_mode();
        assert!(mode == "avx2+fma" || mode == "portable");
        assert_eq!(simd_mode(), mode, "dispatch must resolve once");
    }

    #[test]
    fn kernel_works_on_strided_windows() {
        // Multiply into a sub-window of a larger matrix: rows are strided,
        // which is exactly how the recursive splits hand leaves down.
        let (a, b, _) = inputs(4, 4, 4);
        let mut big = Matrix::filled(8, 8, 1.0f64);
        let mut expect = big.clone();
        mm_f64(
            &mut big.as_mut().submatrix_mut(2, 3, 4, 4),
            &a.as_ref(),
            &b.as_ref(),
        );
        generic_reference_window(&mut expect, 2, 3, &a, &b);
        assert_eq!(big, expect);
    }

    fn generic_reference_window(
        c: &mut Matrix<f64>,
        r0: usize,
        c0: usize,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) {
        for i in 0..a.rows() {
            for l in 0..a.cols() {
                let ail = a.get(i, l);
                for j in 0..b.cols() {
                    let cur = c.get(r0 + i, c0 + j);
                    c.set(r0 + i, c0 + j, ail.mul_add(b.get(l, j), cur));
                }
            }
        }
    }
}
