//! Deterministic workload generators.
//!
//! Tests, examples and benchmarks all need the same kinds of inputs the paper's
//! evaluation uses: random sequences over a small alphabet (LCS), random real
//! weights (1D/GAP), random dense matrices (MM/Strassen), and random keys
//! (sorting).  Everything here is seeded explicitly so experiments are
//! reproducible run-to-run.

use crate::matrix::Matrix;
use crate::semiring::{BoolSemiring, MinPlus, Semiring, WrappingRing};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator for reproducible workloads.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A random sequence of `n` symbols drawn uniformly from an alphabet of size
/// `alphabet` (the paper's LCS experiments use unsigned ints).
pub fn random_sequence(n: usize, alphabet: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..alphabet)).collect()
}

/// Two related random sequences of length `n`: the second is a mutated copy of
/// the first where each position is resampled with probability `mutation`.
/// Produces LCS instances with long common subsequences, closer to the
/// bio-sequence use case than two independent strings.
pub fn related_sequences(
    n: usize,
    alphabet: u32,
    mutation: f64,
    seed: u64,
) -> (Vec<u32>, Vec<u32>) {
    let mut r = rng(seed);
    let a: Vec<u32> = (0..n).map(|_| r.gen_range(0..alphabet)).collect();
    let b: Vec<u32> = a
        .iter()
        .map(|&c| {
            if r.gen_bool(mutation) {
                r.gen_range(0..alphabet)
            } else {
                c
            }
        })
        .collect();
    (a, b)
}

/// A random `rows × cols` matrix of `f64` drawn uniformly from `[-1, 1)`.
pub fn random_matrix_f64(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut r = rng(seed);
    Matrix::from_fn(rows, cols, |_, _| r.gen_range(-1.0..1.0))
}

/// A random `rows × cols` matrix over the exact wrapping ring; values are kept
/// small so products stay meaningful across many accumulations.
pub fn random_matrix_wrapping(rows: usize, cols: usize, seed: u64) -> Matrix<WrappingRing> {
    let mut r = rng(seed);
    Matrix::from_fn(rows, cols, |_, _| WrappingRing(r.gen_range(0..1_000u64)))
}

/// A random weighted digraph on `n` vertices as a `(min, +)` adjacency matrix:
/// each ordered pair `(i, j)`, `i ≠ j`, carries an edge with probability
/// `density`; edge weights are *integer-valued* `f64`s drawn uniformly from
/// `1..=max_weight` so that every path weight is computed exactly and all
/// Floyd–Warshall variants agree bit-for-bit.  The diagonal is
/// `MinPlus::one()` (distance 0) and non-edges are `MinPlus::zero()` (+∞).
pub fn random_digraph(n: usize, density: f64, max_weight: u32, seed: u64) -> Matrix<MinPlus> {
    assert!(max_weight >= 1, "need a positive weight range");
    let mut r = rng(seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            MinPlus::one()
        } else if r.gen_bool(density) {
            MinPlus(f64::from(r.gen_range(1..=max_weight)))
        } else {
            MinPlus::zero()
        }
    })
}

/// A random directed reachability instance on `n` vertices over the boolean
/// semiring: each ordered pair `(i, j)`, `i ≠ j`, is an edge with probability
/// `density`; the diagonal is `true` (every vertex reaches itself).
pub fn random_adjacency(n: usize, density: f64, seed: u64) -> Matrix<BoolSemiring> {
    let mut r = rng(seed);
    Matrix::from_fn(n, n, |i, j| BoolSemiring(i == j || r.gen_bool(density)))
}

/// Random `f64` keys for sorting benchmarks, uniform in `[0, 1)`.
pub fn random_keys(n: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen::<f64>()).collect()
}

/// Random `u64` keys for exact sorting tests.
pub fn random_u64_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

/// Keys that are already sorted (adversarial input for sample-sort pivots).
pub fn sorted_keys(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

/// Keys with many duplicates: only `distinct` different values.
pub fn few_distinct_keys(n: usize, distinct: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| r.gen_range(0..distinct.max(1)) as f64)
        .collect()
}

/// The 1D/LWS weight function used throughout this repository's experiments:
/// a convex "optimal paragraph formation" penalty
/// `w(i, j) = (j - i - ideal)²` scaled to stay well-conditioned.
///
/// It is computable in O(1) time with no memory accesses, as the problem
/// statement (Sect. III-C) requires.
#[derive(Clone, Copy, Debug)]
pub struct ParagraphWeight {
    /// The ideal gap between breakpoints.
    pub ideal: f64,
}

impl ParagraphWeight {
    /// Weight of covering the half-open interval `(i, j]`.
    #[inline]
    pub fn w(&self, i: usize, j: usize) -> f64 {
        let gap = (j - i) as f64 - self.ideal;
        gap * gap
    }
}

/// The GAP-problem cost functions (Sect. III-D): `w`, `w'` and the substitution
/// cost `s(i, j)`, all O(1) with no memory accesses.  The defaults model an
/// affine-gap sequence-alignment-style instance derived from two seeds.
#[derive(Clone, Copy, Debug)]
pub struct GapCosts {
    /// Gap-open penalty.
    pub open: f64,
    /// Gap-extend penalty per skipped position.
    pub extend: f64,
    /// Seed that pseudo-randomises the substitution costs.
    pub seed: u64,
}

impl Default for GapCosts {
    fn default() -> Self {
        Self {
            open: 2.0,
            extend: 0.25,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl GapCosts {
    /// Cost of a horizontal gap from column `q` to column `j` (`q < j`).
    #[inline]
    pub fn w(&self, q: usize, j: usize) -> f64 {
        self.open + self.extend * (j - q) as f64
    }

    /// Cost of a vertical gap from row `p` to row `i` (`p < i`).
    #[inline]
    pub fn w_prime(&self, p: usize, i: usize) -> f64 {
        self.open + self.extend * (i - p) as f64
    }

    /// Substitution cost of aligning position `i` with position `j`; a cheap
    /// hash of `(i, j)` mapped into `[0, 4)` so it is deterministic, O(1), and
    /// memory-free.
    #[inline]
    pub fn s(&self, i: usize, j: usize) -> f64 {
        let mut h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15)
            ^ (j as u64).wrapping_mul(0xc2b2ae3d27d4eb4f)
            ^ self.seed;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        (h % 1024) as f64 / 256.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic() {
        let a = random_sequence(100, 4, 42);
        let b = random_sequence(100, 4, 42);
        assert_eq!(a, b);
        let c = random_sequence(100, 4, 43);
        assert_ne!(a, c);
        assert!(a.iter().all(|&x| x < 4));
    }

    #[test]
    fn related_sequences_share_structure() {
        let (a, b) = related_sequences(1000, 4, 0.1, 7);
        assert_eq!(a.len(), b.len());
        let same = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
        // With 10% mutation over alphabet 4 at least ~85% of positions match.
        assert!(same > 800, "same = {same}");
    }

    #[test]
    fn matrices_are_deterministic_and_bounded() {
        let m1 = random_matrix_f64(8, 16, 3);
        let m2 = random_matrix_f64(8, 16, 3);
        assert_eq!(m1, m2);
        assert!(m1.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let w = random_matrix_wrapping(4, 4, 9);
        assert!(w.data().iter().all(|x| x.0 < 1000));
    }

    #[test]
    fn key_generators() {
        let k = random_keys(500, 11);
        assert_eq!(k.len(), 500);
        assert!(k.iter().all(|&x| (0.0..1.0).contains(&x)));
        let s = sorted_keys(10);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let d = few_distinct_keys(100, 3, 5);
        let mut uniq: Vec<_> = d.iter().map(|&x| x as i64).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 3);
    }

    #[test]
    fn digraphs_are_deterministic_and_well_formed() {
        let g1 = random_digraph(20, 0.3, 50, 7);
        let g2 = random_digraph(20, 0.3, 50, 7);
        assert_eq!(g1, g2);
        for i in 0..20 {
            assert_eq!(g1.get(i, i), MinPlus::one());
            for j in 0..20 {
                let w = g1.get(i, j).0;
                // Finite weights are integers in [1, 50]; non-edges are +∞.
                assert!(w == w.trunc() || w.is_infinite());
                assert!(w.is_infinite() || (i == j && w == 0.0) || (1.0..=50.0).contains(&w));
            }
        }
        let a = random_adjacency(16, 0.25, 9);
        assert_eq!(a, random_adjacency(16, 0.25, 9));
        for i in 0..16 {
            assert!(a.get(i, i).0, "diagonal must be reflexive");
        }
    }

    #[test]
    fn paragraph_weight_convexity() {
        let w = ParagraphWeight { ideal: 5.0 };
        assert_eq!(w.w(0, 5), 0.0);
        assert_eq!(w.w(0, 7), 4.0);
        assert_eq!(w.w(3, 4), 16.0);
    }

    #[test]
    fn gap_costs_deterministic_and_o1() {
        let g = GapCosts::default();
        assert_eq!(g.s(3, 4), g.s(3, 4));
        assert!(g.s(3, 4) >= 0.0 && g.s(3, 4) < 4.0);
        assert!((g.w(2, 6) - (2.0 + 0.25 * 4.0)).abs() < 1e-12);
        assert!((g.w_prime(1, 2) - 2.25).abs() < 1e-12);
    }
}
