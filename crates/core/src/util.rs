//! Small integer utilities used by the partitioning code.

/// Ceiling division `⌈a / b⌉`. Panics if `b == 0`.
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b > 0, "ceil_div by zero");
    a.div_ceil(b)
}

/// The smallest power of two `>= n` (and `1` for `n == 0`).
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// `⌈log2(n)⌉` for `n >= 1` (0 for `n == 1`).
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1, "ceil_log2(0)");
    usize::BITS - (n - 1).leading_zeros()
}

/// `⌊log2(n)⌋` for `n >= 1`.
#[inline]
pub fn floor_log2(n: usize) -> u32 {
    assert!(n >= 1, "floor_log2(0)");
    usize::BITS - 1 - n.leading_zeros()
}

/// `⌈log_b(n)⌉` for `n >= 1`, `b >= 2`; returns at least 1 when `n > 1`.
pub fn ceil_log(n: usize, b: usize) -> u32 {
    assert!(n >= 1 && b >= 2);
    let mut v = 1usize;
    let mut e = 0u32;
    while v < n {
        v = v.saturating_mul(b);
        e += 1;
    }
    e
}

/// Deterministic Miller–Rabin primality test valid for all `u64` values.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // Deterministic witness set for u64.
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// All primes in the inclusive range `[lo, hi]`.
pub fn primes_in_range(lo: u64, hi: u64) -> Vec<u64> {
    (lo..=hi).filter(|&n| is_prime(n)).collect()
}

/// True if `p = m · 7^k` for integers `1 <= m < 7`, `k >= 1` — the processor
/// counts accepted by the hybrid CAPS Strassen baseline of Lipshitz et al.
/// (A plain power of 7 is the `m = 1` case.)
pub fn is_caps_friendly(p: usize) -> bool {
    if p == 0 {
        return false;
    }
    let mut q = p;
    let mut k = 0u32;
    while q.is_multiple_of(7) {
        q /= 7;
        k += 1;
    }
    k >= 1 && (1..7).contains(&q)
}

/// The largest processor count `q <= p` usable by the CAPS-style baseline
/// (`q = m · 7^k`, `1 <= m < 7`, `k >= 1`), or 1 if none exists (p < 7).
pub fn caps_usable_processors(p: usize) -> usize {
    (1..=p).rev().find(|&q| is_caps_friendly(q)).unwrap_or(1)
}

fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_cases() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 1), 1);
    }

    #[test]
    fn log_helpers() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(ceil_log(1, 7), 0);
        assert_eq!(ceil_log(7, 7), 1);
        assert_eq!(ceil_log(8, 7), 2);
        assert_eq!(ceil_log(49, 7), 2);
        assert_eq!(ceil_log(50, 7), 3);
    }

    #[test]
    fn primality_small() {
        let primes: Vec<u64> = primes_in_range(0, 50);
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
        );
    }

    #[test]
    fn primality_larger() {
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(2_147_483_647)); // Mersenne prime 2^31 - 1
        assert!(!is_prime(1_000_000_007u64 * 3));
        assert!(!is_prime(561)); // Carmichael number
        assert!(!is_prime(1));
        assert!(!is_prime(0));
    }

    #[test]
    fn caps_processor_counts() {
        // Exact powers of seven and small multiples are accepted...
        assert!(is_caps_friendly(7));
        assert!(is_caps_friendly(14));
        assert!(is_caps_friendly(49));
        assert!(is_caps_friendly(6 * 49));
        // ... but anything that is not m·7^k (1<=m<7) is not.
        assert!(!is_caps_friendly(1));
        assert!(!is_caps_friendly(6));
        assert!(!is_caps_friendly(8));
        assert!(!is_caps_friendly(24));
        assert!(!is_caps_friendly(72));
        assert!(!is_caps_friendly(7 * 7 + 1));

        // Largest usable count below 72: 49 = 7^2 (70 = 10·7 and 63 = 9·7 have m >= 7).
        assert_eq!(caps_usable_processors(72), 49);
        assert_eq!(caps_usable_processors(24), 21);
        assert_eq!(caps_usable_processors(6), 1);
    }

    #[test]
    fn caps_usable_is_consistent_with_predicate() {
        for p in 1..200 {
            let q = caps_usable_processors(p);
            assert!(q <= p);
            assert!(q == 1 || is_caps_friendly(q));
            // no larger friendly count exists
            for r in (q + 1)..=p {
                assert!(!is_caps_friendly(r), "p={p} q={q} r={r}");
            }
        }
    }
}
