//! Work/communication counters and timing helpers.
//!
//! The paper's complexity accounting (Sect. III-A) distinguishes the *overall*
//! quantities summed over all processors (`T^Σ_p`, `Q^Σ_p`) from the quantities
//! along a critical path, i.e. the maximum over processors (`T^max_p`,
//! `Q^max_p`).  [`Counters`] collects per-processor tallies and derives both
//! views, plus the load-imbalance ratio used to check the paper's "optimal
//! balanced computation/communication" definition.
//!
//! [`Stopwatch`] and the throughput helpers are used by the benchmark harness to
//! report running time, speedup percentages (the paper's
//! `(time_peer / time_PACO − 1) × 100%`) and `Rmax/Rpeak` fractions.

use std::time::{Duration, Instant};

pub mod sched {
    //! Process-wide scheduling counters.
    //!
    //! The PACO runtime executes a `Plan` as one worker-pool barrier per wave,
    //! and every `WorkerPool::scope` is exactly one barrier
    //! (one full spawn/join round-trip).  These counters make the barrier
    //! behaviour *measurable* — on a 1-core container wall-clock cannot show
    //! whether a wave-flattened schedule really issues fewer barriers than the
    //! per-fork recursion it replaced, but the counters can, and the benchmark
    //! report records them next to the timings.
    //!
    //! The counters are **per-thread** (the pool and the plan executor live
    //! in `paco-runtime`, which depends on this crate): a pool barrier is
    //! recorded on the thread that opens the scope, and a plan execution on
    //! the thread that drives it — which is the same thread that later reads
    //! [`snapshot`], since `WorkerPool::scope` and `Plan::execute` both block
    //! their caller.  Thread-locality is what makes [`snapshot`] deltas
    //! *exact* even under a multi-threaded test harness: concurrent tests on
    //! other threads cannot perturb this thread's delta.  The flip side: work
    //! driven from a different thread (e.g. a scope opened inside a worker
    //! task) is invisible to this thread's snapshot.

    use std::cell::Cell;

    thread_local! {
        static POOL_BARRIERS: Cell<u64> = const { Cell::new(0) };
        static PLAN_EXECUTIONS: Cell<u64> = const { Cell::new(0) };
        static PLAN_WAVES: Cell<u64> = const { Cell::new(0) };
        static PLAN_STEPS: Cell<u64> = const { Cell::new(0) };
    }

    /// A point-in-time copy of every scheduling counter.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct SchedSnapshot {
        /// Worker-pool scopes opened (each is one full spawn/join barrier).
        pub pool_barriers: u64,
        /// Plans executed end-to-end.
        pub plan_executions: u64,
        /// Plan waves executed (each wave costs exactly one pool barrier).
        pub plan_waves: u64,
        /// Plan steps (placed tasks) executed.
        pub plan_steps: u64,
    }

    impl SchedSnapshot {
        /// Counter deltas since an earlier snapshot.
        pub fn since(&self, earlier: &SchedSnapshot) -> SchedSnapshot {
            SchedSnapshot {
                pool_barriers: self.pool_barriers - earlier.pool_barriers,
                plan_executions: self.plan_executions - earlier.plan_executions,
                plan_waves: self.plan_waves - earlier.plan_waves,
                plan_steps: self.plan_steps - earlier.plan_steps,
            }
        }
    }

    /// Record one worker-pool scope (called by `WorkerPool::scope` on the
    /// thread opening the scope).
    #[inline]
    pub fn record_pool_barrier() {
        POOL_BARRIERS.with(|c| c.set(c.get() + 1));
    }

    /// Record one executed plan with its wave and step counts (called by the
    /// plan executor in `paco-runtime` on the driving thread).
    pub fn record_plan_execution(waves: u64, steps: u64) {
        PLAN_EXECUTIONS.with(|c| c.set(c.get() + 1));
        PLAN_WAVES.with(|c| c.set(c.get() + waves));
        PLAN_STEPS.with(|c| c.set(c.get() + steps));
    }

    /// Read the current thread's counters at once.
    pub fn snapshot() -> SchedSnapshot {
        SchedSnapshot {
            pool_barriers: POOL_BARRIERS.with(Cell::get),
            plan_executions: PLAN_EXECUTIONS.with(Cell::get),
            plan_waves: PLAN_WAVES.with(Cell::get),
            plan_steps: PLAN_STEPS.with(Cell::get),
        }
    }

    /// Zero the current thread's counters.  Prefer [`snapshot`] deltas.
    pub fn reset() {
        POOL_BARRIERS.with(|c| c.set(0));
        PLAN_EXECUTIONS.with(|c| c.set(0));
        PLAN_WAVES.with(|c| c.set(0));
        PLAN_STEPS.with(|c| c.set(0));
    }

    pub mod plan_cache {
        //! Process-wide plan-skeleton cache counters.
        //!
        //! The service layer caches compiled plan skeletons keyed on request
        //! shape + tuning epoch (the paper's workload-independence claim made
        //! operational: the pruned-BFS assignment depends only on
        //! `(shape, p, tuning)`).  Caches live per `Session` and per engine
        //! shard, and engine shards are driven from executor threads, so —
        //! like [`super::ingress`] — these are global atomics: exact for the
        //! *process*, aggregated across every cache instance.  Tests that
        //! need per-cache determinism read the per-instance counters the
        //! service layer exposes instead.

        use std::sync::atomic::{AtomicU64, Ordering};

        static HITS: AtomicU64 = AtomicU64::new(0);
        static MISSES: AtomicU64 = AtomicU64::new(0);
        static EVICTIONS: AtomicU64 = AtomicU64::new(0);

        /// A point-in-time copy of the plan-cache counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct PlanCacheSnapshot {
            /// Lookups served from a cached skeleton (no plan compiled).
            pub hits: u64,
            /// Lookups that compiled a fresh skeleton and inserted it.
            pub misses: u64,
            /// Cached skeletons dropped to respect a cache's capacity bound.
            pub evictions: u64,
        }

        impl PlanCacheSnapshot {
            /// Counter deltas since an earlier snapshot.
            pub fn since(&self, earlier: &PlanCacheSnapshot) -> PlanCacheSnapshot {
                PlanCacheSnapshot {
                    hits: self.hits - earlier.hits,
                    misses: self.misses - earlier.misses,
                    evictions: self.evictions - earlier.evictions,
                }
            }

            /// `hits / (hits + misses)`, or 0.0 before any lookup.
            pub fn hit_ratio(&self) -> f64 {
                let total = self.hits + self.misses;
                if total == 0 {
                    0.0
                } else {
                    self.hits as f64 / total as f64
                }
            }
        }

        /// Record one cache hit (a lookup served without compiling).
        #[inline]
        pub fn record_hit() {
            HITS.fetch_add(1, Ordering::Relaxed);
        }

        /// Record one cache miss (a lookup that compiled a fresh skeleton).
        #[inline]
        pub fn record_miss() {
            MISSES.fetch_add(1, Ordering::Relaxed);
        }

        /// Record one capacity eviction.
        #[inline]
        pub fn record_eviction() {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }

        /// Read the current process-wide plan-cache counters at once.
        pub fn snapshot() -> PlanCacheSnapshot {
            PlanCacheSnapshot {
                hits: HITS.load(Ordering::Relaxed),
                misses: MISSES.load(Ordering::Relaxed),
                evictions: EVICTIONS.load(Ordering::Relaxed),
            }
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            #[test]
            fn plan_cache_counters_accumulate_and_diff() {
                let before = snapshot();
                record_miss();
                record_hit();
                record_hit();
                record_hit();
                record_eviction();
                let delta = snapshot().since(&before);
                assert_eq!(delta.misses, 1);
                assert_eq!(delta.hits, 3);
                assert_eq!(delta.evictions, 1);
                assert!((delta.hit_ratio() - 0.75).abs() < 1e-12);
                assert_eq!(PlanCacheSnapshot::default().hit_ratio(), 0.0);
            }
        }
    }

    pub mod kernel {
        //! Process-wide leaf-kernel dispatch counters.
        //!
        //! Wall-clock numbers are noisy on a shared 1-core container, so
        //! every leaf fast path added by the kernel layer also proves it ran:
        //! each leaf call increments exactly one counter — "specialized"
        //! (SIMD microkernel, row-sliced semiring loop, branch-free LCS
        //! block) or "generic" (the trait-dispatch fallback).  Like
        //! [`super::plan_cache`], leaves run on pool worker threads, so these
        //! are global atomics: exact per process, one tick per *leaf call*
        //! (never per element — these sit under the hot loops).

        use std::sync::atomic::{AtomicU64, Ordering};

        static MM_LEAF_SIMD: AtomicU64 = AtomicU64::new(0);
        static MM_LEAF_GENERIC: AtomicU64 = AtomicU64::new(0);
        static FW_LEAF_SPECIALIZED: AtomicU64 = AtomicU64::new(0);
        static FW_LEAF_GENERIC: AtomicU64 = AtomicU64::new(0);
        static LCS_LEAF_SPECIALIZED: AtomicU64 = AtomicU64::new(0);
        static LCS_LEAF_GENERIC: AtomicU64 = AtomicU64::new(0);

        /// A point-in-time copy of the leaf-dispatch counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct KernelSnapshot {
            /// MM leaf calls handled by the specialized (SIMD) microkernel.
            pub mm_leaf_simd: u64,
            /// MM leaf calls that ran the generic semiring loop.
            pub mm_leaf_generic: u64,
            /// FW relax calls handled by a row-sliced semiring fast path.
            pub fw_leaf_specialized: u64,
            /// FW relax calls that ran the generic per-element loop.
            pub fw_leaf_generic: u64,
            /// LCS base blocks run by the branch-free fast path.
            pub lcs_leaf_specialized: u64,
            /// LCS base blocks that ran the tracked generic loop.
            pub lcs_leaf_generic: u64,
        }

        impl KernelSnapshot {
            /// Counter deltas since an earlier snapshot.
            pub fn since(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
                KernelSnapshot {
                    mm_leaf_simd: self.mm_leaf_simd - earlier.mm_leaf_simd,
                    mm_leaf_generic: self.mm_leaf_generic - earlier.mm_leaf_generic,
                    fw_leaf_specialized: self.fw_leaf_specialized - earlier.fw_leaf_specialized,
                    fw_leaf_generic: self.fw_leaf_generic - earlier.fw_leaf_generic,
                    lcs_leaf_specialized: self.lcs_leaf_specialized - earlier.lcs_leaf_specialized,
                    lcs_leaf_generic: self.lcs_leaf_generic - earlier.lcs_leaf_generic,
                }
            }
        }

        /// Record one MM leaf call (`simd`: handled by the microkernel).
        #[inline]
        pub fn record_mm_leaf(simd: bool) {
            if simd {
                MM_LEAF_SIMD.fetch_add(1, Ordering::Relaxed);
            } else {
                MM_LEAF_GENERIC.fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Record one FW relax call (`specialized`: row-sliced fast path).
        #[inline]
        pub fn record_fw_leaf(specialized: bool) {
            if specialized {
                FW_LEAF_SPECIALIZED.fetch_add(1, Ordering::Relaxed);
            } else {
                FW_LEAF_GENERIC.fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Record one LCS base block (`specialized`: branch-free fast path).
        #[inline]
        pub fn record_lcs_leaf(specialized: bool) {
            if specialized {
                LCS_LEAF_SPECIALIZED.fetch_add(1, Ordering::Relaxed);
            } else {
                LCS_LEAF_GENERIC.fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Read the current process-wide leaf-dispatch counters at once.
        pub fn snapshot() -> KernelSnapshot {
            KernelSnapshot {
                mm_leaf_simd: MM_LEAF_SIMD.load(Ordering::Relaxed),
                mm_leaf_generic: MM_LEAF_GENERIC.load(Ordering::Relaxed),
                fw_leaf_specialized: FW_LEAF_SPECIALIZED.load(Ordering::Relaxed),
                fw_leaf_generic: FW_LEAF_GENERIC.load(Ordering::Relaxed),
                lcs_leaf_specialized: LCS_LEAF_SPECIALIZED.load(Ordering::Relaxed),
                lcs_leaf_generic: LCS_LEAF_GENERIC.load(Ordering::Relaxed),
            }
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            #[test]
            fn kernel_counters_accumulate_and_diff() {
                let before = snapshot();
                record_mm_leaf(true);
                record_mm_leaf(true);
                record_mm_leaf(false);
                record_fw_leaf(true);
                record_lcs_leaf(false);
                let delta = snapshot().since(&before);
                assert_eq!(delta.mm_leaf_simd, 2);
                assert_eq!(delta.mm_leaf_generic, 1);
                assert_eq!(delta.fw_leaf_specialized, 1);
                assert_eq!(delta.fw_leaf_generic, 0);
                assert_eq!(delta.lcs_leaf_specialized, 0);
                assert_eq!(delta.lcs_leaf_generic, 1);
            }
        }
    }

    pub mod ingress {
        //! Process-wide concurrent-ingress counters.
        //!
        //! Unlike the barrier/wave counters above, the service layer's
        //! concurrent front door (`paco_service::Engine`) spans threads by
        //! design: producers enqueue from arbitrary threads while executor
        //! threads drain and run passes.  Thread-local cells would make the
        //! two sides invisible to each other, so these counters are global
        //! atomics.  The trade-off is the mirror image of the one above:
        //! deltas are exact for the *process*, not per test — concurrent
        //! engines add to the same tally.  Every source preserves
        //! `passes <= enqueued` (a pass executes at least one enqueued
        //! request), so "passes strictly below enqueued" — the signature of
        //! coalescing — survives aggregation.

        use std::sync::atomic::{AtomicU64, Ordering};

        /// Number of shard slots tracked by the occupancy tally; shards
        /// beyond this fold onto slot `id % MAX_SHARD_SLOTS`.
        pub const MAX_SHARD_SLOTS: usize = 64;

        static ENQUEUED: AtomicU64 = AtomicU64::new(0);
        static PASSES: AtomicU64 = AtomicU64::new(0);
        static EXECUTED: AtomicU64 = AtomicU64::new(0);
        static COALESCED: AtomicU64 = AtomicU64::new(0);
        static POISONED: AtomicU64 = AtomicU64::new(0);
        static MAX_PASS: AtomicU64 = AtomicU64::new(0);
        static REJECTED: AtomicU64 = AtomicU64::new(0);
        static OVERLOADED: AtomicU64 = AtomicU64::new(0);
        static EXPIRED: AtomicU64 = AtomicU64::new(0);
        static MAX_QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        static SHARD_REQUESTS: [AtomicU64; MAX_SHARD_SLOTS] = [ZERO; MAX_SHARD_SLOTS];
        static LATENCY: LatencyHistogram = LatencyHistogram::new();

        /// A point-in-time copy of the ingress counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct IngressSnapshot {
            /// Requests accepted into an executor queue.
            pub enqueued: u64,
            /// Executor passes run (each drains one coalesced batch).
            pub passes: u64,
            /// Requests executed by passes (resolved or poisoned).
            pub executed: u64,
            /// Requests that shared their pass with at least one other
            /// request — the coalescing win, request-weighted.
            pub coalesced: u64,
            /// Requests lost to a panicking pass.
            pub poisoned: u64,
            /// Largest single pass observed (a high-watermark, not a delta:
            /// `since` keeps the later snapshot's value).
            pub max_pass: u64,
            /// Requests refused because an engine was shutting down.
            pub rejected: u64,
            /// Requests refused at admission because a bounded shard queue
            /// was full (`try_submit -> Err(Overloaded)`).
            pub overloaded: u64,
            /// Requests whose deadline had passed when an executor dequeued
            /// them; they resolved `Expired` without occupying a pass.
            pub expired: u64,
            /// Deepest shard queue observed at any admission (a
            /// high-watermark like `max_pass`: `since` keeps the later
            /// snapshot's value).
            pub max_queue_depth: u64,
        }

        impl IngressSnapshot {
            /// Counter deltas since an earlier snapshot (`max_pass` is a
            /// high-watermark and is carried over, not subtracted).
            pub fn since(&self, earlier: &IngressSnapshot) -> IngressSnapshot {
                IngressSnapshot {
                    enqueued: self.enqueued - earlier.enqueued,
                    passes: self.passes - earlier.passes,
                    executed: self.executed - earlier.executed,
                    coalesced: self.coalesced - earlier.coalesced,
                    poisoned: self.poisoned - earlier.poisoned,
                    max_pass: self.max_pass,
                    rejected: self.rejected - earlier.rejected,
                    overloaded: self.overloaded - earlier.overloaded,
                    expired: self.expired - earlier.expired,
                    max_queue_depth: self.max_queue_depth,
                }
            }
        }

        /// Record one request accepted into an executor queue.
        #[inline]
        pub fn record_enqueued() {
            ENQUEUED.fetch_add(1, Ordering::Relaxed);
        }

        /// Record one executor pass over `requests` coalesced requests on
        /// shard `shard`.  Call *before* resolving the pass's tickets, so a
        /// producer that observed its ticket resolve also observes the pass
        /// counted.
        pub fn record_pass(shard: usize, requests: u64) {
            PASSES.fetch_add(1, Ordering::Relaxed);
            EXECUTED.fetch_add(requests, Ordering::Relaxed);
            if requests > 1 {
                COALESCED.fetch_add(requests, Ordering::Relaxed);
            }
            MAX_PASS.fetch_max(requests, Ordering::Relaxed);
            SHARD_REQUESTS[shard % MAX_SHARD_SLOTS].fetch_add(requests, Ordering::Relaxed);
        }

        /// Record `requests` requests lost to a panicking pass.
        pub fn record_poisoned(requests: u64) {
            POISONED.fetch_add(requests, Ordering::Relaxed);
        }

        /// Record one request refused because an engine was shutting down.
        #[inline]
        pub fn record_rejected() {
            REJECTED.fetch_add(1, Ordering::Relaxed);
        }

        /// Record one request refused at admission because a bounded shard
        /// queue was full.
        #[inline]
        pub fn record_overloaded() {
            OVERLOADED.fetch_add(1, Ordering::Relaxed);
        }

        /// Record `requests` requests that expired in a queue (their
        /// deadlines passed before an executor could run them).
        pub fn record_expired(requests: u64) {
            EXPIRED.fetch_add(requests, Ordering::Relaxed);
        }

        /// Record the depth a shard queue reached right after an admission
        /// (a process-wide high-watermark).
        #[inline]
        pub fn record_queue_depth(depth: usize) {
            MAX_QUEUE_DEPTH.fetch_max(depth as u64, Ordering::Relaxed);
        }

        /// Record one submission-to-resolution latency into the
        /// process-wide latency histogram.
        #[inline]
        pub fn record_latency(latency: core::time::Duration) {
            LATENCY.record(latency);
        }

        /// Read the process-wide submission-to-resolution latency histogram.
        pub fn latency_snapshot() -> LatencySnapshot {
            LATENCY.snapshot()
        }

        /// Read the current process-wide ingress counters at once.
        pub fn snapshot() -> IngressSnapshot {
            IngressSnapshot {
                enqueued: ENQUEUED.load(Ordering::Relaxed),
                passes: PASSES.load(Ordering::Relaxed),
                executed: EXECUTED.load(Ordering::Relaxed),
                coalesced: COALESCED.load(Ordering::Relaxed),
                poisoned: POISONED.load(Ordering::Relaxed),
                max_pass: MAX_PASS.load(Ordering::Relaxed),
                rejected: REJECTED.load(Ordering::Relaxed),
                overloaded: OVERLOADED.load(Ordering::Relaxed),
                expired: EXPIRED.load(Ordering::Relaxed),
                max_queue_depth: MAX_QUEUE_DEPTH.load(Ordering::Relaxed),
            }
        }

        /// Number of power-of-two latency buckets tracked by
        /// [`LatencyHistogram`]; bucket `i` covers `[2^i, 2^(i+1))`
        /// nanoseconds, so 64 buckets span from 1 ns to ~584 years.
        pub const LATENCY_BUCKETS: usize = 64;

        /// A lock-free log₂-bucketed latency histogram.
        ///
        /// Wall-clock means and single observations are untrustworthy on a
        /// shared 1-core container, but *percentiles over thousands of
        /// requests* are a stable signal — and a fixed array of atomic
        /// bucket counters lets producers and executors record without a
        /// lock.  The resolution cost is a factor-of-two bucket width: a
        /// reported percentile is the upper bound of the bucket holding
        /// that observation.
        #[derive(Debug)]
        pub struct LatencyHistogram {
            buckets: [AtomicU64; LATENCY_BUCKETS],
        }

        impl Default for LatencyHistogram {
            fn default() -> Self {
                Self::new()
            }
        }

        impl LatencyHistogram {
            /// An empty histogram (usable in `static` position).
            pub const fn new() -> Self {
                #[allow(clippy::declare_interior_mutable_const)]
                const ZERO: AtomicU64 = AtomicU64::new(0);
                Self {
                    buckets: [ZERO; LATENCY_BUCKETS],
                }
            }

            /// Record one observed latency.
            #[inline]
            pub fn record(&self, latency: core::time::Duration) {
                let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
                // floor(log2(ns)) with 0 → bucket 0.
                let bucket = (63 - ns.max(1).leading_zeros()) as usize;
                self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            }

            /// A point-in-time copy of the bucket counts.
            pub fn snapshot(&self) -> LatencySnapshot {
                let mut buckets = [0u64; LATENCY_BUCKETS];
                for (out, counter) in buckets.iter_mut().zip(self.buckets.iter()) {
                    *out = counter.load(Ordering::Relaxed);
                }
                LatencySnapshot { buckets }
            }
        }

        /// A point-in-time copy of a [`LatencyHistogram`]'s bucket counts.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct LatencySnapshot {
            /// Observation counts per power-of-two bucket; bucket `i`
            /// covers `[2^i, 2^(i+1))` nanoseconds.
            pub buckets: [u64; LATENCY_BUCKETS],
        }

        impl Default for LatencySnapshot {
            fn default() -> Self {
                Self {
                    buckets: [0; LATENCY_BUCKETS],
                }
            }
        }

        impl LatencySnapshot {
            /// Total observations recorded.
            pub fn count(&self) -> u64 {
                self.buckets.iter().sum()
            }

            /// The `q`-quantile latency (`0.0 < q <= 1.0`), as the upper
            /// bound of the bucket holding that observation; `None` if the
            /// histogram is empty.
            pub fn percentile(&self, q: f64) -> Option<core::time::Duration> {
                let count = self.count();
                if count == 0 {
                    return None;
                }
                let q = q.clamp(0.0, 1.0);
                // Rank of the wanted observation, 1-based, at least 1.
                let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
                let mut seen = 0u64;
                for (i, &c) in self.buckets.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        let upper_ns = 1u128 << (i + 1);
                        return Some(core::time::Duration::from_nanos(
                            upper_ns.min(u64::MAX as u128) as u64,
                        ));
                    }
                }
                unreachable!("rank <= count, so some bucket reaches it")
            }

            /// Bucket-count deltas since an earlier snapshot.
            pub fn since(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
                let mut buckets = [0u64; LATENCY_BUCKETS];
                for (i, out) in buckets.iter_mut().enumerate() {
                    *out = self.buckets[i] - earlier.buckets[i];
                }
                LatencySnapshot { buckets }
            }
        }

        /// Requests executed per shard slot, trailing zeros trimmed — the
        /// occupancy picture across every engine this process ran.
        pub fn shard_occupancy() -> Vec<u64> {
            let mut occ: Vec<u64> = SHARD_REQUESTS
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            while occ.last() == Some(&0) {
                occ.pop();
            }
            occ
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            #[test]
            fn ingress_counters_accumulate_and_diff() {
                let before = snapshot();
                record_enqueued();
                record_enqueued();
                record_enqueued();
                record_pass(0, 2);
                record_pass(1, 1);
                record_poisoned(1);
                let delta = snapshot().since(&before);
                assert_eq!(delta.enqueued, 3);
                assert_eq!(delta.passes, 2);
                assert_eq!(delta.executed, 3);
                assert_eq!(delta.coalesced, 2);
                assert_eq!(delta.poisoned, 1);
                assert!(delta.max_pass >= 2);
                let occ = shard_occupancy();
                assert!(occ.len() >= 2);
                assert!(occ[0] >= 2 && occ[1] >= 1);
            }

            #[test]
            fn admission_counters_accumulate_and_diff() {
                let before = snapshot();
                record_rejected();
                record_overloaded();
                record_overloaded();
                record_expired(3);
                record_queue_depth(17);
                let delta = snapshot().since(&before);
                assert_eq!(delta.rejected, 1);
                assert_eq!(delta.overloaded, 2);
                assert_eq!(delta.expired, 3);
                assert!(delta.max_queue_depth >= 17);
            }

            #[test]
            fn latency_histogram_percentiles() {
                use core::time::Duration;
                let h = LatencyHistogram::new();
                assert_eq!(h.snapshot().percentile(0.5), None);
                // 99 fast observations in [1µs, 2µs), one slow in [1ms, 2ms).
                for _ in 0..99 {
                    h.record(Duration::from_nanos(1_500));
                }
                h.record(Duration::from_nanos(1_500_000));
                let snap = h.snapshot();
                assert_eq!(snap.count(), 100);
                // p50 and p99 land in the fast bucket (upper bound 2^11 ns),
                // p100 in the slow one (upper bound 2^21 ns).
                assert_eq!(snap.percentile(0.5), Some(Duration::from_nanos(1 << 11)));
                assert_eq!(snap.percentile(0.99), Some(Duration::from_nanos(1 << 11)));
                assert_eq!(snap.percentile(1.0), Some(Duration::from_nanos(1 << 21)));
                // Deltas subtract bucket-wise.
                let empty = snap.since(&snap);
                assert_eq!(empty.count(), 0);
                // Zero-duration observations land in bucket 0 and report the
                // smallest upper bound rather than panicking.
                let h = LatencyHistogram::new();
                h.record(Duration::ZERO);
                assert_eq!(h.snapshot().percentile(0.5), Some(Duration::from_nanos(2)));
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn counters_accumulate_and_diff() {
            let before = snapshot();
            record_pool_barrier();
            record_plan_execution(3, 12);
            record_plan_execution(1, 2);
            let delta = snapshot().since(&before);
            assert_eq!(delta.pool_barriers, 1);
            assert_eq!(delta.plan_executions, 2);
            assert_eq!(delta.plan_waves, 4);
            assert_eq!(delta.plan_steps, 14);
        }
    }
}

pub mod comm {
    //! Process-wide communication counters for the shared-nothing emulation.
    //!
    //! The distributed backend (`paco_dist`) executes a plan as supersteps of
    //! message-passing ranks, and — like the barrier counters of
    //! [`super::sched`] — what makes that emulation *scientific* on a 1-core
    //! container is exact counting, not wall-clock: every word and every
    //! message a run ships is tallied here, so benches can compare measured
    //! traffic against the analytic bounds in `cache-sim::distributed`
    //! (Sect. III-E-1 / Sect. V of the paper).
    //!
    //! Ranks are threads, so these are global atomics in the style of
    //! [`super::sched::ingress`]: exact for the process, aggregated over
    //! every distributed run.  The executor computes a run's totals
    //! deterministically on the host thread and mirrors them here with one
    //! [`record_run`] call, which keeps snapshot deltas exact per run even
    //! though sends happen on rank threads.

    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of rank slots tracked by the per-rank tallies; ranks beyond
    /// this fold onto slot `rank % MAX_RANK_SLOTS`.
    pub const MAX_RANK_SLOTS: usize = 64;

    static RUNS: AtomicU64 = AtomicU64::new(0);
    static SUPERSTEPS: AtomicU64 = AtomicU64::new(0);
    static DATA_MESSAGES: AtomicU64 = AtomicU64::new(0);
    static DATA_WORDS: AtomicU64 = AtomicU64::new(0);
    static SCATTER_WORDS: AtomicU64 = AtomicU64::new(0);
    static EXCHANGE_WORDS: AtomicU64 = AtomicU64::new(0);
    static WRITEBACK_WORDS: AtomicU64 = AtomicU64::new(0);
    static GATHER_WORDS: AtomicU64 = AtomicU64::new(0);
    static BARRIER_MESSAGES: AtomicU64 = AtomicU64::new(0);
    static CRITICAL_PATH_MESSAGES: AtomicU64 = AtomicU64::new(0);
    static MAX_RANK_WORDS: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static RANK_WORDS: [AtomicU64; MAX_RANK_SLOTS] = [ZERO; MAX_RANK_SLOTS];
    static RANK_MESSAGES: [AtomicU64; MAX_RANK_SLOTS] = [ZERO; MAX_RANK_SLOTS];

    /// One distributed run's communication totals, as computed by the
    /// executor on its host thread and mirrored into the process counters.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct RunComm {
        /// Supersteps (plan waves) executed.
        pub supersteps: u64,
        /// Point-to-point data messages (scatter + exchange + writeback +
        /// gather), excluding barrier traffic.
        pub data_messages: u64,
        /// Words carried by those data messages.
        pub data_words: u64,
        /// Words shipped host → ranks to install initial operands.
        pub scatter_words: u64,
        /// Words shipped rank → rank in exchange phases (operands a rank
        /// reads but does not own).
        pub exchange_words: u64,
        /// Words shipped rank → rank in writeback phases (results a rank
        /// wrote but does not own).
        pub writeback_words: u64,
        /// Words shipped ranks → host to assemble the output.
        pub gather_words: u64,
        /// Tree-barrier control messages (2·(p−1) per superstep).
        pub barrier_messages: u64,
        /// Messages on the critical path: the latency term, which the paper
        /// bounds by `O(log p)` per superstep.
        pub critical_path_messages: u64,
        /// Words sent + received per rank (scatter counted at the receiver,
        /// gather at the sender).
        pub rank_words: Vec<u64>,
        /// Data messages sent + received per rank.
        pub rank_messages: Vec<u64>,
    }

    impl RunComm {
        /// Largest per-rank word total (the bandwidth critical path).
        pub fn max_rank_words(&self) -> u64 {
            self.rank_words.iter().copied().max().unwrap_or(0)
        }

        /// Mean per-rank word total.
        pub fn mean_rank_words(&self) -> f64 {
            if self.rank_words.is_empty() {
                0.0
            } else {
                self.data_words as f64 / self.rank_words.len() as f64
            }
        }
    }

    /// A point-in-time copy of the process-wide communication counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct CommSnapshot {
        /// Distributed runs recorded.
        pub runs: u64,
        /// Supersteps executed across all runs.
        pub supersteps: u64,
        /// Point-to-point data messages across all runs.
        pub data_messages: u64,
        /// Words carried by data messages across all runs.
        pub data_words: u64,
        /// Scatter words across all runs.
        pub scatter_words: u64,
        /// Exchange words across all runs.
        pub exchange_words: u64,
        /// Writeback words across all runs.
        pub writeback_words: u64,
        /// Gather words across all runs.
        pub gather_words: u64,
        /// Barrier control messages across all runs.
        pub barrier_messages: u64,
        /// Critical-path messages summed over runs.
        pub critical_path_messages: u64,
        /// Largest per-rank word total any single run observed (a
        /// high-watermark: `since` keeps the later snapshot's value).
        pub max_rank_words: u64,
    }

    impl CommSnapshot {
        /// Counter deltas since an earlier snapshot (`max_rank_words` is a
        /// high-watermark and is carried over, not subtracted).
        pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
            CommSnapshot {
                runs: self.runs - earlier.runs,
                supersteps: self.supersteps - earlier.supersteps,
                data_messages: self.data_messages - earlier.data_messages,
                data_words: self.data_words - earlier.data_words,
                scatter_words: self.scatter_words - earlier.scatter_words,
                exchange_words: self.exchange_words - earlier.exchange_words,
                writeback_words: self.writeback_words - earlier.writeback_words,
                gather_words: self.gather_words - earlier.gather_words,
                barrier_messages: self.barrier_messages - earlier.barrier_messages,
                critical_path_messages: self.critical_path_messages
                    - earlier.critical_path_messages,
                max_rank_words: self.max_rank_words,
            }
        }
    }

    /// Mirror one distributed run's totals into the process counters.
    pub fn record_run(run: &RunComm) {
        RUNS.fetch_add(1, Ordering::Relaxed);
        SUPERSTEPS.fetch_add(run.supersteps, Ordering::Relaxed);
        DATA_MESSAGES.fetch_add(run.data_messages, Ordering::Relaxed);
        DATA_WORDS.fetch_add(run.data_words, Ordering::Relaxed);
        SCATTER_WORDS.fetch_add(run.scatter_words, Ordering::Relaxed);
        EXCHANGE_WORDS.fetch_add(run.exchange_words, Ordering::Relaxed);
        WRITEBACK_WORDS.fetch_add(run.writeback_words, Ordering::Relaxed);
        GATHER_WORDS.fetch_add(run.gather_words, Ordering::Relaxed);
        BARRIER_MESSAGES.fetch_add(run.barrier_messages, Ordering::Relaxed);
        CRITICAL_PATH_MESSAGES.fetch_add(run.critical_path_messages, Ordering::Relaxed);
        MAX_RANK_WORDS.fetch_max(run.max_rank_words(), Ordering::Relaxed);
        for (rank, &w) in run.rank_words.iter().enumerate() {
            RANK_WORDS[rank % MAX_RANK_SLOTS].fetch_add(w, Ordering::Relaxed);
        }
        for (rank, &m) in run.rank_messages.iter().enumerate() {
            RANK_MESSAGES[rank % MAX_RANK_SLOTS].fetch_add(m, Ordering::Relaxed);
        }
    }

    /// Read the current process-wide communication counters at once.
    pub fn snapshot() -> CommSnapshot {
        CommSnapshot {
            runs: RUNS.load(Ordering::Relaxed),
            supersteps: SUPERSTEPS.load(Ordering::Relaxed),
            data_messages: DATA_MESSAGES.load(Ordering::Relaxed),
            data_words: DATA_WORDS.load(Ordering::Relaxed),
            scatter_words: SCATTER_WORDS.load(Ordering::Relaxed),
            exchange_words: EXCHANGE_WORDS.load(Ordering::Relaxed),
            writeback_words: WRITEBACK_WORDS.load(Ordering::Relaxed),
            gather_words: GATHER_WORDS.load(Ordering::Relaxed),
            barrier_messages: BARRIER_MESSAGES.load(Ordering::Relaxed),
            critical_path_messages: CRITICAL_PATH_MESSAGES.load(Ordering::Relaxed),
            max_rank_words: MAX_RANK_WORDS.load(Ordering::Relaxed),
        }
    }

    /// Words sent + received per rank slot, trailing zeros trimmed.
    pub fn rank_words() -> Vec<u64> {
        let mut v: Vec<u64> = RANK_WORDS
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Data messages sent + received per rank slot, trailing zeros trimmed.
    pub fn rank_messages() -> Vec<u64> {
        let mut v: Vec<u64> = RANK_MESSAGES
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn comm_counters_accumulate_and_diff() {
            let before = snapshot();
            let run = RunComm {
                supersteps: 3,
                data_messages: 10,
                data_words: 100,
                scatter_words: 40,
                exchange_words: 30,
                writeback_words: 20,
                gather_words: 10,
                barrier_messages: 12,
                critical_path_messages: 9,
                rank_words: vec![60, 40],
                rank_messages: vec![6, 4],
            };
            assert_eq!(run.max_rank_words(), 60);
            assert!((run.mean_rank_words() - 50.0).abs() < 1e-12);
            record_run(&run);
            let delta = snapshot().since(&before);
            assert_eq!(delta.runs, 1);
            assert_eq!(delta.supersteps, 3);
            assert_eq!(delta.data_messages, 10);
            assert_eq!(delta.data_words, 100);
            assert_eq!(
                delta.scatter_words
                    + delta.exchange_words
                    + delta.writeback_words
                    + delta.gather_words,
                100
            );
            assert_eq!(delta.barrier_messages, 12);
            assert_eq!(delta.critical_path_messages, 9);
            assert!(delta.max_rank_words >= 60);
            let rw = rank_words();
            assert!(rw.len() >= 2 && rw[0] >= 60 && rw[1] >= 40);
            assert!(rank_messages().len() >= 2);
        }
    }
}

pub mod incr {
    //! Process-wide counters of the incremental subsystem (`paco_incr`).
    //!
    //! What makes incrementality *measurable* on a 1-core container is exact
    //! counting, not wall-clock (the same argument as [`super::comm`]): an
    //! edge update that re-propagates 3 of 64 dirty blocks is incremental
    //! whatever the clock says.  Every incremental closure and traceback
    //! tallies here — global atomics in the [`super::comm`] style, exact for
    //! the process, snapshot-diffed per run by the benches.

    use std::sync::atomic::{AtomicU64, Ordering};

    static CLOSES: AtomicU64 = AtomicU64::new(0);
    static UPDATE_BATCHES: AtomicU64 = AtomicU64::new(0);
    static UPDATES_INCREMENTAL: AtomicU64 = AtomicU64::new(0);
    static UPDATES_FULL: AtomicU64 = AtomicU64::new(0);
    static FULL_FALLBACKS: AtomicU64 = AtomicU64::new(0);
    static BLOCKS_PROBED: AtomicU64 = AtomicU64::new(0);
    static BLOCKS_REPROPAGATED: AtomicU64 = AtomicU64::new(0);
    static BLOCKS_TOTAL: AtomicU64 = AtomicU64::new(0);
    static FRONTIER_ROWS: AtomicU64 = AtomicU64::new(0);
    static FRONTIER_COLS: AtomicU64 = AtomicU64::new(0);
    static TRACE_RUNS: AtomicU64 = AtomicU64::new(0);
    static TRACE_CELLS: AtomicU64 = AtomicU64::new(0);
    static TRACE_BYTES: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time copy of the incremental-subsystem counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct IncrSnapshot {
        /// Closed-graph handles materialized (full initial closures).
        pub closes: u64,
        /// Edge-update batches applied.
        pub update_batches: u64,
        /// Updates served by dirty-block re-propagation.
        pub updates_incremental: u64,
        /// Updates absorbed by a full re-closure fallback.
        pub updates_full: u64,
        /// Full re-closures triggered (ineligible update or dirty frontier
        /// over the [`Tuning`](crate::tuning::Tuning) threshold).
        pub full_fallbacks: u64,
        /// Dirty blocks examined by re-propagation sweeps.
        pub blocks_probed: u64,
        /// Probed blocks in which at least one entry actually changed.
        pub blocks_repropagated: u64,
        /// Total grid blocks a full re-closure of each incremental update
        /// would have rewritten — the denominator of the
        /// `incr/blocks-repropagated-ratio` gauge.
        pub blocks_total: u64,
        /// Dirty frontier rows summed over incremental updates.
        pub frontier_rows: u64,
        /// Dirty frontier columns summed over incremental updates.
        pub frontier_cols: u64,
        /// Hirschberg traceback runs.
        pub trace_runs: u64,
        /// DP cells evaluated by tracebacks (≈ 2·n·m per run; plain LCS
        /// evaluates n·m, the linear-space recovery pays the rest).
        pub trace_cells: u64,
        /// Bytes of edit script produced by tracebacks.
        pub trace_bytes: u64,
    }

    impl IncrSnapshot {
        /// Counter deltas since an earlier snapshot.
        pub fn since(&self, earlier: &IncrSnapshot) -> IncrSnapshot {
            IncrSnapshot {
                closes: self.closes - earlier.closes,
                update_batches: self.update_batches - earlier.update_batches,
                updates_incremental: self.updates_incremental - earlier.updates_incremental,
                updates_full: self.updates_full - earlier.updates_full,
                full_fallbacks: self.full_fallbacks - earlier.full_fallbacks,
                blocks_probed: self.blocks_probed - earlier.blocks_probed,
                blocks_repropagated: self.blocks_repropagated - earlier.blocks_repropagated,
                blocks_total: self.blocks_total - earlier.blocks_total,
                frontier_rows: self.frontier_rows - earlier.frontier_rows,
                frontier_cols: self.frontier_cols - earlier.frontier_cols,
                trace_runs: self.trace_runs - earlier.trace_runs,
                trace_cells: self.trace_cells - earlier.trace_cells,
                trace_bytes: self.trace_bytes - earlier.trace_bytes,
            }
        }

        /// Blocks actually rewritten as a fraction of what full re-closures
        /// would have rewritten (0 when nothing incremental ran).
        pub fn repropagated_ratio(&self) -> f64 {
            if self.blocks_total == 0 {
                0.0
            } else {
                self.blocks_repropagated as f64 / self.blocks_total as f64
            }
        }
    }

    /// Record one full initial closure (handle materialization).
    pub fn record_close() {
        CLOSES.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one applied edge-update batch's totals.
    #[allow(clippy::too_many_arguments)]
    pub fn record_batch(
        incremental: u64,
        full: u64,
        fallbacks: u64,
        probed: u64,
        repropagated: u64,
        total: u64,
        frontier_rows: u64,
        frontier_cols: u64,
    ) {
        UPDATE_BATCHES.fetch_add(1, Ordering::Relaxed);
        UPDATES_INCREMENTAL.fetch_add(incremental, Ordering::Relaxed);
        UPDATES_FULL.fetch_add(full, Ordering::Relaxed);
        FULL_FALLBACKS.fetch_add(fallbacks, Ordering::Relaxed);
        BLOCKS_PROBED.fetch_add(probed, Ordering::Relaxed);
        BLOCKS_REPROPAGATED.fetch_add(repropagated, Ordering::Relaxed);
        BLOCKS_TOTAL.fetch_add(total, Ordering::Relaxed);
        FRONTIER_ROWS.fetch_add(frontier_rows, Ordering::Relaxed);
        FRONTIER_COLS.fetch_add(frontier_cols, Ordering::Relaxed);
    }

    /// Record one Hirschberg traceback's DP cells and script bytes.
    pub fn record_trace(cells: u64, bytes: u64) {
        TRACE_RUNS.fetch_add(1, Ordering::Relaxed);
        TRACE_CELLS.fetch_add(cells, Ordering::Relaxed);
        TRACE_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Read the current process-wide incremental counters at once.
    pub fn snapshot() -> IncrSnapshot {
        IncrSnapshot {
            closes: CLOSES.load(Ordering::Relaxed),
            update_batches: UPDATE_BATCHES.load(Ordering::Relaxed),
            updates_incremental: UPDATES_INCREMENTAL.load(Ordering::Relaxed),
            updates_full: UPDATES_FULL.load(Ordering::Relaxed),
            full_fallbacks: FULL_FALLBACKS.load(Ordering::Relaxed),
            blocks_probed: BLOCKS_PROBED.load(Ordering::Relaxed),
            blocks_repropagated: BLOCKS_REPROPAGATED.load(Ordering::Relaxed),
            blocks_total: BLOCKS_TOTAL.load(Ordering::Relaxed),
            frontier_rows: FRONTIER_ROWS.load(Ordering::Relaxed),
            frontier_cols: FRONTIER_COLS.load(Ordering::Relaxed),
            trace_runs: TRACE_RUNS.load(Ordering::Relaxed),
            trace_cells: TRACE_CELLS.load(Ordering::Relaxed),
            trace_bytes: TRACE_BYTES.load(Ordering::Relaxed),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn incr_counters_accumulate_and_diff() {
            let before = snapshot();
            record_close();
            record_batch(3, 1, 1, 12, 4, 192, 9, 7);
            record_trace(2048, 96);
            let delta = snapshot().since(&before);
            assert_eq!(delta.closes, 1);
            assert_eq!(delta.update_batches, 1);
            assert_eq!(delta.updates_incremental, 3);
            assert_eq!(delta.updates_full, 1);
            assert_eq!(delta.full_fallbacks, 1);
            assert_eq!(delta.blocks_probed, 12);
            assert_eq!(delta.blocks_repropagated, 4);
            assert_eq!(delta.blocks_total, 192);
            assert!((delta.repropagated_ratio() - 4.0 / 192.0).abs() < 1e-12);
            assert_eq!((delta.frontier_rows, delta.frontier_cols), (9, 7));
            assert_eq!(
                (delta.trace_runs, delta.trace_cells, delta.trace_bytes),
                (1, 2048, 96)
            );
        }
    }
}

/// Per-processor tallies of an arbitrary additive quantity (work, cache misses,
/// bytes moved, tasks executed, ...).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    per_proc: Vec<u64>,
}

impl Counters {
    /// Counters for `p` processors, all zero.
    pub fn new(p: usize) -> Self {
        Self {
            per_proc: vec![0; p],
        }
    }

    /// Number of processors tracked.
    pub fn p(&self) -> usize {
        self.per_proc.len()
    }

    /// Add `amount` to processor `proc`.
    pub fn add(&mut self, proc: usize, amount: u64) {
        self.per_proc[proc] += amount;
    }

    /// The tally of processor `proc`.
    pub fn get(&self, proc: usize) -> u64 {
        self.per_proc[proc]
    }

    /// Raw per-processor tallies.
    pub fn per_proc(&self) -> &[u64] {
        &self.per_proc
    }

    /// Overall quantity summed over all processors (`T^Σ_p` / `Q^Σ_p`).
    pub fn total(&self) -> u64 {
        self.per_proc.iter().sum()
    }

    /// Maximum over processors, i.e. along a critical path (`T^max_p` / `Q^max_p`).
    pub fn max(&self) -> u64 {
        self.per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Minimum over processors.
    pub fn min(&self) -> u64 {
        self.per_proc.iter().copied().min().unwrap_or(0)
    }

    /// Arithmetic mean per processor.
    pub fn mean(&self) -> f64 {
        if self.per_proc.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.per_proc.len() as f64
        }
    }

    /// Load-imbalance ratio `max / mean` (1.0 = perfectly balanced).
    ///
    /// The paper's perfect-strong-scaling definition requires the imbalance to be
    /// an asymptotically smaller term, i.e. `max/mean → 1` as the problem grows.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            1.0
        } else {
            self.max() as f64 / mean
        }
    }

    /// Merge another set of counters (same `p`) into this one element-wise.
    pub fn merge(&mut self, other: &Counters) {
        assert_eq!(self.p(), other.p(), "merging counters of different p");
        for (a, b) in self.per_proc.iter_mut().zip(other.per_proc.iter()) {
            *a += b;
        }
    }
}

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start (or restart) timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let sw = Stopwatch::start();
    let r = f();
    (r, sw.elapsed_secs())
}

/// Minimum running time over `runs` executions of `f` (the paper measures the
/// min of at least three independent runs to avoid averaging noise).
pub fn min_time_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(runs >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (_, t) = time_it(&mut f);
        best = best.min(t);
    }
    best
}

/// Speedup percentage of `ours` relative to `peer`, following the paper:
/// `(time_peer / time_ours − 1) × 100%`.
pub fn speedup_percent(peer_secs: f64, ours_secs: f64) -> f64 {
    (peer_secs / ours_secs - 1.0) * 100.0
}

/// Achieved FLOP rate for a matrix multiplication `C = C + A×B` of dimensions
/// `n × k` times `k × m`: `2·n·m·k / seconds` (the paper's `Rmax` convention:
/// nmk multiplications plus nmk additions).
pub fn mm_flops(n: usize, m: usize, k: usize, seconds: f64) -> f64 {
    2.0 * n as f64 * m as f64 * k as f64 / seconds
}

/// Summary statistics of a series of observations (used for the "Mean"/"Median"
/// annotations of the paper's figures).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of the two central elements for even lengths).
    pub median: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Compute mean/median/min/max of a non-empty slice.
pub fn series_stats(values: &[f64]) -> SeriesStats {
    assert!(!values.is_empty(), "series_stats on empty slice");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    SeriesStats {
        mean: sorted.iter().sum::<f64>() / n as f64,
        median,
        min: sorted[0],
        max: sorted[n - 1],
    }
}

/// Bucket a series of values into a histogram with `bucket_width`-sized buckets
/// aligned at multiples of the width; returns `(bucket_lower_bound, count)`
/// pairs in increasing order.  Used to reproduce Fig. 11's frequency plots.
pub fn histogram(values: &[f64], bucket_width: f64) -> Vec<(f64, usize)> {
    assert!(bucket_width > 0.0);
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<i64, usize> = BTreeMap::new();
    for &v in values {
        let idx = (v / bucket_width).floor() as i64;
        *buckets.entry(idx).or_insert(0) += 1;
    }
    buckets
        .into_iter()
        .map(|(idx, count)| (idx as f64 * bucket_width, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total_max_imbalance() {
        let mut c = Counters::new(4);
        c.add(0, 10);
        c.add(1, 10);
        c.add(2, 10);
        c.add(3, 10);
        assert_eq!(c.total(), 40);
        assert_eq!(c.max(), 10);
        assert_eq!(c.min(), 10);
        assert!((c.imbalance() - 1.0).abs() < 1e-12);

        c.add(3, 30);
        assert_eq!(c.total(), 70);
        assert_eq!(c.max(), 40);
        assert!(c.imbalance() > 2.0);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new(2);
        a.add(0, 5);
        let mut b = Counters::new(2);
        b.add(0, 1);
        b.add(1, 2);
        a.merge(&b);
        assert_eq!(a.per_proc(), &[6, 2]);
    }

    #[test]
    fn empty_counters() {
        let c = Counters::new(0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.max(), 0);
        assert!((c.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_flops() {
        assert!((speedup_percent(2.0, 1.0) - 100.0).abs() < 1e-12);
        assert!((speedup_percent(1.0, 1.0)).abs() < 1e-12);
        assert!((mm_flops(10, 10, 10, 1.0) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn stats_median_even_odd() {
        let s = series_stats(&[1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let s = series_stats(&[4.0, 1.0, 3.0, 2.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[0.1, 0.2, 5.1, 10.0, -0.5], 5.0);
        assert_eq!(h, vec![(-5.0, 1), (0.0, 2), (5.0, 1), (10.0, 1)]);
    }

    #[test]
    fn timing_helpers_run() {
        let (v, t) = time_it(|| 42);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let best = min_time_of(3, || std::hint::black_box(1 + 1));
        assert!(best >= 0.0);
    }
}
