//! Semiring-specialized leaf kernels: the sealed [`SpecializedKernel`] hook.
//!
//! The generic leaf loops (`mm_base` in `paco-matmul`, the Floyd–Warshall
//! `relax` in `paco-graph`) are written over [`Semiring`](crate::semiring)
//! trait calls.  That is the right *generic* shape, but for the handful of
//! concrete instances the service actually runs hot — `f64` classic MM,
//! `MinPlus`/`BoolSemiring` path relaxation — a branch-free, row-sliced
//! inner loop beats the per-element `at`/`set` + trait-dispatch form.  This
//! module is the hook those leaf kernels consult:
//!
//! * every hook returns a `bool` — **`true` means "handled, the generic loop
//!   must not run"**, `false` (the default every instance inherits) means
//!   "not specialized, fall back to the generic loop".  The bool-flag shape
//!   exists because `SpecializedKernel` is a *supertrait* of `Semiring`, so
//!   its defaults cannot call semiring ops without a cycle;
//! * the trait is **sealed**: `Semiring` itself is only implementable inside
//!   `paco-core`, so a specialized kernel is added next to the semiring it
//!   serves (see the README's "Leaf kernels" section for the recipe);
//! * every specialization is **bit-identical** to the generic loop it
//!   replaces — the same reduction order, the same fused operations — which
//!   `tests/kernel_agreement.rs` proves property-by-property.  The tropical
//!   fast paths additionally skip annihilator weights (`w = 0̄` contributes
//!   `0̄ ⊗ x = 0̄`, the `⊕`-identity) and run compare-select `min`/`max` —
//!   the exact x86 `minpd`/`maxpd` semantics, so the rows vectorize — which
//!   equals `f64::min`/`max` for all non-NaN inputs (`±0.0` ties may differ
//!   in sign bit but compare `==`; NaN distances are outside the kernels'
//!   contract, as they are for `f64::min`/`max` themselves).

use crate::matrix::{MatMut, MatRef};
use crate::semiring::{
    BoolSemiring, Bottleneck, CountMod, MaxPlus, MinPlus, Viterbi, WrappingRing,
};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for crate::semiring::WrappingRing {}
    impl Sealed for crate::semiring::MinPlus {}
    impl Sealed for crate::semiring::MaxPlus {}
    impl Sealed for crate::semiring::BoolSemiring {}
    impl Sealed for crate::semiring::Viterbi {}
    impl Sealed for crate::semiring::Bottleneck {}
    impl<const M: u64> Sealed for crate::semiring::CountMod<M> {}
}

/// Per-instance fast-path hooks the leaf kernels consult before running
/// their generic loops.  Sealed; see the module docs for the contract.
pub trait SpecializedKernel: sealed::Sealed + Sized {
    /// Whether this instance overrides at least one hook — what the
    /// `sched::kernel` dispatch counters report as "specialized".
    const SPECIALIZED: bool = false;

    /// Row relaxation `dst[j] = dst[j] ⊕ (w ⊗ src[j])` over disjoint rows.
    ///
    /// Return `true` if handled; the caller guarantees
    /// `dst.len() == src.len()` and that `dst` and `src` do not overlap.
    #[inline]
    fn relax_row(_dst: &mut [Self], _w: Self, _src: &[Self]) -> bool {
        false
    }

    /// Self-relaxation `dst[j] = dst[j] ⊕ (w ⊗ dst[j])` — the `i == k` row
    /// of a Floyd–Warshall phase, where source and destination alias.
    ///
    /// Return `true` if handled.
    #[inline]
    fn relax_row_aliased(_dst: &mut [Self], _w: Self) -> bool {
        false
    }

    /// Leaf matrix multiply-accumulate `C = C ⊕ (A ⊗ B)` over row-major
    /// windows (`c`: `m×n`, `a`: `m×k`, `b`: `k×n`).
    ///
    /// Return `true` if handled.
    #[inline]
    fn mm_block(_c: &mut MatMut<'_, Self>, _a: &MatRef<'_, Self>, _b: &MatRef<'_, Self>) -> bool {
        false
    }
}

impl SpecializedKernel for f64 {
    const SPECIALIZED: bool = true;

    // The FW relax hooks stay at their generic defaults: `f64` is not an
    // idempotent semiring, so no in-place closure kernel can instantiate it.
    #[inline]
    fn mm_block(c: &mut MatMut<'_, Self>, a: &MatRef<'_, Self>, b: &MatRef<'_, Self>) -> bool {
        crate::simd::mm_f64(c, a, b);
        true
    }
}

impl SpecializedKernel for f32 {}

impl SpecializedKernel for WrappingRing {}

impl SpecializedKernel for MinPlus {
    const SPECIALIZED: bool = true;

    #[inline]
    fn relax_row(dst: &mut [MinPlus], w: MinPlus, src: &[MinPlus]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        if w.0 == f64::INFINITY {
            // w is the annihilator: w ⊗ s = 0̄ and d ⊕ 0̄ = d, a no-op row.
            return true;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            // Compare-select rather than `f64::min`: this is exactly x86
            // `minpd` (second operand on NaN), so the loop vectorizes to one
            // `vaddpd` + `vminpd` per lane instead of minnum's compare/blend
            // expansion.  Equal to `min` for every non-NaN input (and `==` to
            // it even across a ±0.0 tie).
            let c = w.0 + s.0;
            d.0 = if c < d.0 { c } else { d.0 };
        }
        true
    }

    #[inline]
    fn relax_row_aliased(dst: &mut [MinPlus], w: MinPlus) -> bool {
        if w.0 == f64::INFINITY {
            return true;
        }
        for d in dst.iter_mut() {
            let c = w.0 + d.0;
            d.0 = if c < d.0 { c } else { d.0 };
        }
        true
    }
}

impl SpecializedKernel for MaxPlus {
    const SPECIALIZED: bool = true;

    #[inline]
    fn relax_row(dst: &mut [MaxPlus], w: MaxPlus, src: &[MaxPlus]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        if w.0 == f64::NEG_INFINITY {
            return true;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            // Compare-select = x86 `maxpd`; see the `MinPlus` hook.
            let c = w.0 + s.0;
            d.0 = if c > d.0 { c } else { d.0 };
        }
        true
    }

    #[inline]
    fn relax_row_aliased(dst: &mut [MaxPlus], w: MaxPlus) -> bool {
        if w.0 == f64::NEG_INFINITY {
            return true;
        }
        for d in dst.iter_mut() {
            let c = w.0 + d.0;
            d.0 = if c > d.0 { c } else { d.0 };
        }
        true
    }
}

impl SpecializedKernel for BoolSemiring {
    const SPECIALIZED: bool = true;

    #[inline]
    fn relax_row(dst: &mut [BoolSemiring], w: BoolSemiring, src: &[BoolSemiring]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        if !w.0 {
            // w = false annihilates: d ∨ (false ∧ s) = d.
            return true;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 |= s.0;
        }
        true
    }

    #[inline]
    fn relax_row_aliased(_dst: &mut [BoolSemiring], _w: BoolSemiring) -> bool {
        // d ∨ (w ∧ d) = d for every w: the aliased row is always a no-op.
        true
    }
}

impl SpecializedKernel for Viterbi {
    const SPECIALIZED: bool = true;

    #[inline]
    fn relax_row(dst: &mut [Viterbi], w: Viterbi, src: &[Viterbi]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        if w.0 == 0.0 {
            // w is the annihilator (likelihoods are non-negative, so
            // d ⊕ (0 ⊗ s) = max(d, 0) = d): a no-op row.
            return true;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            // Compare-select = x86 `maxpd`; see the `MinPlus` hook.
            let c = w.0 * s.0;
            d.0 = if c > d.0 { c } else { d.0 };
        }
        true
    }

    #[inline]
    fn relax_row_aliased(dst: &mut [Viterbi], w: Viterbi) -> bool {
        if w.0 == 0.0 {
            return true;
        }
        for d in dst.iter_mut() {
            let c = w.0 * d.0;
            d.0 = if c > d.0 { c } else { d.0 };
        }
        true
    }
}

impl SpecializedKernel for Bottleneck {
    const SPECIALIZED: bool = true;

    #[inline]
    fn relax_row(dst: &mut [Bottleneck], w: Bottleneck, src: &[Bottleneck]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        if w.0 == f64::NEG_INFINITY {
            // min(−∞, s) = −∞ and d ⊕ −∞ = d: a no-op row.
            return true;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            // min then max compare-select (`minpd` + `maxpd`).
            let c = if w.0 < s.0 { w.0 } else { s.0 };
            d.0 = if c > d.0 { c } else { d.0 };
        }
        true
    }

    #[inline]
    fn relax_row_aliased(_dst: &mut [Bottleneck], _w: Bottleneck) -> bool {
        // max(d, min(w, d)) = d for every w: the aliased row is always a
        // no-op, like the boolean semiring's.
        true
    }
}

// `CountMod` keeps the generic defaults: modular reduction in the inner loop
// has no branch-free compare-select form, and the closure paths reject it
// anyway (not idempotent).
impl<const M: u64> SpecializedKernel for CountMod<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Semiring;

    /// The generic loop each hook replaces, for direct agreement checks
    /// (the cross-crate proptests live in `tests/kernel_agreement.rs`).
    fn generic_relax<S: Semiring>(dst: &mut [S], w: S, src: &[S]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.mul_add(w, *s);
        }
    }

    #[test]
    fn min_plus_relax_matches_generic_including_annihilator() {
        let src: Vec<MinPlus> = [1.0, 0.5, f64::INFINITY, -2.0, 7.25]
            .iter()
            .map(|&v| MinPlus(v))
            .collect();
        for w in [MinPlus(0.0), MinPlus(2.5), MinPlus(f64::INFINITY)] {
            let mut spec: Vec<MinPlus> = [3.0, f64::INFINITY, 0.0, 1.0, -1.0]
                .iter()
                .map(|&v| MinPlus(v))
                .collect();
            let mut gen = spec.clone();
            assert!(MinPlus::relax_row(&mut spec, w, &src));
            generic_relax(&mut gen, w, &src);
            assert_eq!(spec, gen, "w = {w:?}");
        }
    }

    #[test]
    fn bool_aliased_relax_is_a_no_op() {
        let mut row = vec![BoolSemiring(true), BoolSemiring(false)];
        let before = row.clone();
        assert!(BoolSemiring::relax_row_aliased(
            &mut row,
            BoolSemiring(true)
        ));
        assert_eq!(row, before);
        // And the generic loop agrees that it *should* be a no-op.
        let mut gen = before.clone();
        for d in gen.iter_mut() {
            *d = d.mul_add(BoolSemiring(true), *d);
        }
        assert_eq!(gen, before);
    }

    #[test]
    fn viterbi_and_bottleneck_relax_match_generic() {
        let v_src: Vec<Viterbi> = [0.5, 1.0, 0.0, 0.25].iter().map(|&v| Viterbi(v)).collect();
        for w in [Viterbi(0.0), Viterbi(0.5), Viterbi(1.0)] {
            let mut spec: Vec<Viterbi> =
                [0.125, 0.0, 1.0, 0.5].iter().map(|&v| Viterbi(v)).collect();
            let mut gen = spec.clone();
            assert!(Viterbi::relax_row(&mut spec, w, &v_src));
            generic_relax(&mut gen, w, &v_src);
            assert_eq!(spec, gen, "w = {w:?}");
        }

        let b_src: Vec<Bottleneck> = [3.0, f64::INFINITY, -1.0, f64::NEG_INFINITY]
            .iter()
            .map(|&v| Bottleneck(v))
            .collect();
        for w in [
            Bottleneck(f64::NEG_INFINITY),
            Bottleneck(2.0),
            Bottleneck(f64::INFINITY),
        ] {
            let mut spec: Vec<Bottleneck> = [0.0, -5.0, 4.0, f64::NEG_INFINITY]
                .iter()
                .map(|&v| Bottleneck(v))
                .collect();
            let mut gen = spec.clone();
            assert!(Bottleneck::relax_row(&mut spec, w, &b_src));
            generic_relax(&mut gen, w, &b_src);
            assert_eq!(spec, gen, "w = {w:?}");
            // The aliased row must be the no-op the hook claims it is.
            let before = spec.clone();
            assert!(Bottleneck::relax_row_aliased(&mut spec, w));
            assert_eq!(spec, before);
        }
    }

    #[test]
    fn unspecialized_instances_report_defaults() {
        // Dispatch counters must report these as generic (compile-time
        // constants, checked via the runtime hooks below to keep clippy's
        // constant-assertion lint quiet).
        assert_eq!(
            [
                f32::SPECIALIZED,
                WrappingRing::SPECIALIZED,
                CountMod::<7>::SPECIALIZED
            ],
            [false; 3]
        );
        let mut dst = [WrappingRing(1), WrappingRing(2)];
        let src = [WrappingRing(3), WrappingRing(4)];
        assert!(!WrappingRing::relax_row(&mut dst, WrappingRing(5), &src));
        assert!(!WrappingRing::relax_row_aliased(&mut dst, WrappingRing(5)));
    }
}
